"""Shared fixtures for the test suite.

Expensive objects (anything that solves QSP phase factors or prepares a
circuit-level backend) are session-scoped so the cost is paid once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import PoissonProblem, random_workload
from repro.core import QSVTLinearSolver
from repro.linalg import random_matrix_with_condition_number, random_rhs


@pytest.fixture()
def rng():
    """Fresh deterministic generator for each test."""
    return np.random.default_rng(1234)


@pytest.fixture()
def small_system(rng):
    """A well-conditioned 4x4 system (matrix, rhs, exact solution)."""
    matrix = random_matrix_with_condition_number(4, 5.0, rng=rng)
    rhs = random_rhs(4, rng=rng)
    return matrix, rhs, np.linalg.solve(matrix, rhs)


@pytest.fixture()
def medium_workload():
    """The paper's Sec. IV setting: N = 16, κ = 10, seeded."""
    return random_workload(16, 10.0, rng=7)


@pytest.fixture()
def poisson_problem():
    """An 8-point 1-D Poisson problem (quantum-ready)."""
    return PoissonProblem(8)


@pytest.fixture(scope="session")
def prepared_circuit_solver():
    """A circuit-level QSVT solver prepared once for the whole session.

    Small condition number and loose ε_l keep the polynomial degree low so the
    phase-factor solve stays fast.
    """
    matrix = random_matrix_with_condition_number(8, 4.0, rng=42)
    return QSVTLinearSolver(matrix, epsilon_l=5e-2, backend="circuit")


@pytest.fixture(scope="session")
def prepared_ideal_solver():
    """An ideal-polynomial-backend solver prepared once for the whole session."""
    matrix = random_matrix_with_condition_number(16, 50.0, rng=43)
    return QSVTLinearSolver(matrix, epsilon_l=1e-3, backend="ideal")
