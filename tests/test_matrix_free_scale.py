"""PR 7 oracle tests: the total matrix-free path.

Property-style checks for the pieces that make the matrix-free route total:
the vectorised wide-batch kernels against dense ``@`` and the old loop, the
banded plan-op circuit route against the dense-circuit reference, the
Golub–Kahan / LSQR route for non-symmetric operators, Lanczos spectrum
estimates against ``eigvalsh``, the unified dense wall, operator-state
payload persistence across processes, and the convection–diffusion /
Helmholtz families end-to-end without analytic κ.
"""

import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.backends import CircuitQSVTBackend, IdealPolynomialBackend
from repro.core.cost_model import measured_kappa, predicted_kappa, resolved_kappa
from repro.core.qsvt_solver import QSVTLinearSolver
from repro.core.refinement import MixedPrecisionRefinement
from repro.linalg import BandedOperator, CSROperator
from repro.linalg.cond import (
    estimate_operator_condition,
    lanczos_eigenvalue_estimates,
    lanczos_spectrum_estimate,
)
from repro.linalg.iterative import lsqr
from repro.problems import ConvectionDiffusionFamily, HelmholtzFamily
from repro.problems.base import check_dense_assembly


def _random_sparse_dense(gen, n, density=0.08):
    dense = np.where(gen.random((n, n)) < density,
                     gen.standard_normal((n, n)), 0.0)
    dense[n // 3] = 0.0  # keep an empty row in play (reduceat's wart)
    return dense


def _diag_dominant_nonsym(gen, n):
    dense = _random_sparse_dense(gen, n, density=0.15)
    dense[np.arange(n), np.arange(n)] = n / 4.0 + gen.random(n)
    return dense


class TestBatchKernels:
    def test_csr_matmat_matches_dense_and_loop(self, monkeypatch):
        gen = np.random.default_rng(7)
        n, batch = 57, 9
        dense = _random_sparse_dense(gen, n)
        op = CSROperator.from_dense(dense)
        block = gen.standard_normal((n, batch))
        expected = dense @ block
        np.testing.assert_allclose(op.matmat(block), expected, atol=1e-12)
        np.testing.assert_allclose(op._matmat_loop(block), expected, atol=1e-12)
        np.testing.assert_allclose(op.rmatmat(block), dense.T @ block,
                                   atol=1e-12)
        # the numpy fallback (no scipy) must agree bit-for-tolerance too
        monkeypatch.setattr(CSROperator, "_scipy_matrix", lambda self: None)
        np.testing.assert_allclose(op.matmat(block), expected, atol=1e-12)
        np.testing.assert_allclose(op.rmatmat(block), dense.T @ block,
                                   atol=1e-12)
        np.testing.assert_allclose(op.matvec(block[:, 0]), expected[:, 0],
                                   atol=1e-12)
        np.testing.assert_allclose(op.rmatvec(block[:, 0]),
                                   dense.T @ block[:, 0], atol=1e-12)

    def test_banded_matmat_matches_dense(self):
        gen = np.random.default_rng(11)
        n, batch = 40, 6
        dense = np.zeros((n, n))
        for offset in (-2, 0, 3):
            idx = np.arange(n - abs(offset))
            rows = idx if offset >= 0 else idx - offset
            cols = idx + offset if offset >= 0 else idx
            dense[rows, cols] = gen.standard_normal(n - abs(offset))
        op = BandedOperator.from_dense(dense)
        block = gen.standard_normal((n, batch))
        np.testing.assert_allclose(op.matmat(block), dense @ block, atol=1e-12)
        np.testing.assert_allclose(op.rmatmat(block), dense.T @ block,
                                   atol=1e-12)

    def test_csr_matvec_float32_round_trip(self):
        # the dtype contract: any real input promotes to float64 exactly once
        gen = np.random.default_rng(3)
        dense = _random_sparse_dense(gen, 33)
        op = CSROperator.from_dense(dense)
        x64 = gen.standard_normal(33)
        x32 = x64.astype(np.float32)
        y = op.matvec(x32)
        assert y.dtype == np.float64
        np.testing.assert_allclose(y, op.matvec(x32.astype(np.float64)),
                                   atol=1e-14)
        np.testing.assert_allclose(y, op.matvec(x64), atol=1e-5)


class TestBandedPlanCircuitRoute:
    def test_plan_program_matches_dense_qsvt_circuit(self):
        # same unitary, same phases: the plan-op program must reproduce the
        # dense gate-level QSVT to coherence precision.  The dense reference
        # wraps the plan encoding's explicitly assembled unitary (small N
        # oracle hatch) as a one-gate BlockEncoding.
        from repro.blockencoding.banded import (BandedPlanBlockEncoding,
                                                compile_banded_qsvt_program)
        from repro.blockencoding.base import BlockEncoding
        from repro.qsp import solve_qsp_phases
        from repro.qsp.chebyshev import evaluate_chebyshev
        from repro.qsp.qsvt_circuit import compile_qsvt_program
        from repro.quantum import QuantumCircuit

        class DenseReference(BlockEncoding):
            def __init__(self, plan_encoding):
                self._unitary = plan_encoding.unitary()
                n = plan_encoding.dimension
                self._init_common(
                    plan_encoding.alpha * self._unitary[:n, :n].real,
                    name="banded-dense-reference")
                self.alpha = plan_encoding.alpha
                self.num_ancillas = plan_encoding.num_ancillas

            def circuit(self):
                qc = QuantumCircuit(self.num_qubits, name="wrap")
                qc.unitary(self._unitary,
                           qubits=list(range(self.num_qubits)), name="BE")
                return qc

            def unitary(self):
                return self._unitary

        coeffs = np.array([0.0, 0.4, 0.0, 0.25, 0.0, 0.2])
        wx = solve_qsp_phases(coeffs).phases
        for bits in (3, 4):
            n = 2 ** bits
            encoding = BandedPlanBlockEncoding(bits, diagonal=2.5,
                                               off_diagonal=-1.0)
            plan_program = compile_banded_qsvt_program(encoding, wx)
            reference = DenseReference(encoding)
            reference.verify(atol=1e-12)
            dense_program = compile_qsvt_program(reference, wx)
            data = np.random.default_rng(bits).standard_normal(n)
            data = data / np.linalg.norm(data)
            got = plan_program.apply(data).vector
            ref = dense_program.apply(data).vector
            assert np.max(np.abs(got - ref)) < 1e-10
            # and both match the polynomial applied through eigenvalues
            dense = BandedOperator.toeplitz(
                n, {0: 2.5, 1: -1.0, -1: -1.0}).to_dense()
            evals, evecs = np.linalg.eigh(dense / encoding.alpha)
            expected = evecs @ (evaluate_chebyshev(coeffs, evals)
                                * (evecs.T @ data))
            assert np.max(np.abs(got - expected)) < 1e-10

    def test_plan_backend_route_agrees_with_dense_route(self):
        # backend level: the auto-selected plan route and the dense LCU route
        # use different subnormalisations, so they agree to the approximation
        # accuracy epsilon_l, and each tracks the exact inverse direction
        n = 16
        op = BandedOperator.toeplitz(n, {0: 2.5, 1: -1.0, -1: -1.0})
        lo, hi = op.eigenvalue_bounds()
        kappa = hi / lo
        plan_backend = CircuitQSVTBackend()
        plan_backend.prepare(op, epsilon_l=1e-6, kappa=kappa)
        assert plan_backend.resolved_block_encoding == "banded-plan"
        dense_backend = CircuitQSVTBackend(block_encoding="tridiagonal")
        dense_backend.prepare(op, epsilon_l=1e-6, kappa=kappa)
        rhs = np.random.default_rng(4).standard_normal(n)
        got = plan_backend.apply_inverse(rhs).direction
        ref = dense_backend.apply_inverse(rhs).direction
        assert np.max(np.abs(got - ref)) < 1e-6
        exact = op.solve(rhs)
        exact = exact / np.linalg.norm(exact)
        assert np.linalg.norm(got - exact) < 1e-6

    def test_plan_route_runs_beyond_the_dense_wall(self, monkeypatch):
        # with the wall lowered below N, any to_dense() call would raise —
        # the banded plan route must synthesise and solve regardless
        monkeypatch.setenv("REPRO_DENSE_WALL", "4096")
        n = 8192
        op = BandedOperator.toeplitz(n, {0: 2.5, 1: -1.0, -1: -1.0})
        with pytest.raises(MemoryError):
            op.to_dense()
        backend = CircuitQSVTBackend()
        backend.prepare(op, epsilon_l=1e-4)
        assert backend.resolved_block_encoding == "banded-plan"
        rhs = np.random.default_rng(0).standard_normal(n)
        direction = backend.apply_inverse(rhs).direction
        exact = op.solve(rhs)
        exact = exact / np.linalg.norm(exact)
        assert np.linalg.norm(direction - exact) < 1e-3

    def test_plan_route_refuses_wrong_shape(self):
        op = BandedOperator.toeplitz(12, {0: 2.5, 1: -1.0, -1: -1.0})  # not 2^k
        backend = CircuitQSVTBackend(block_encoding="banded-plan")
        with pytest.raises(Exception, match="banded-plan"):
            backend.prepare(op, epsilon_l=1e-2)


class TestNonSymmetricRoute:
    def test_lsqr_matches_dense_solve(self):
        gen = np.random.default_rng(5)
        dense = _diag_dominant_nonsym(gen, 40)
        op = CSROperator.from_dense(dense)
        b = gen.standard_normal(40)
        expected = np.linalg.solve(dense, b)
        result = lsqr(op.matvec, op.rmatvec, b, tolerance=1e-13)
        assert result.converged
        np.testing.assert_allclose(result.x, expected, atol=1e-8)

    def test_nonsymmetric_solve_beyond_wall_uses_lsqr(self, monkeypatch):
        gen = np.random.default_rng(9)
        dense = _diag_dominant_nonsym(gen, 48)
        op = CSROperator.from_dense(dense)
        rhs = np.column_stack([gen.standard_normal(48) for _ in range(3)])
        expected = np.linalg.solve(dense, rhs)
        monkeypatch.setenv("REPRO_DENSE_WALL", "16")  # 48 > 16: no densify
        np.testing.assert_allclose(op.solve(rhs), expected, atol=1e-7)
        np.testing.assert_allclose(op.solve(rhs[:, 0]), expected[:, 0],
                                   atol=1e-7)

    def test_gk_condition_estimate_covers_true_kappa(self):
        gen = np.random.default_rng(13)
        dense = _diag_dominant_nonsym(gen, 30)
        op = CSROperator.from_dense(dense)
        true_kappa = np.linalg.cond(dense, 2)
        estimate = estimate_operator_condition(op, rng=0)
        assert estimate >= true_kappa * 0.999
        assert estimate <= true_kappa * 2.0


class TestLanczosSpectrum:
    def test_ritz_values_match_eigvalsh_at_full_steps(self):
        n = 12
        sigma = 0.15
        op = BandedOperator.toeplitz(n, {0: 2.0 - sigma, 1: -1.0, -1: -1.0})
        exact = np.linalg.eigvalsh(op.to_dense())
        ritz = lanczos_eigenvalue_estimates(op.matvec, n, steps=n, rng=0)
        np.testing.assert_allclose(ritz, exact, atol=1e-8)
        lo, hi, interior = lanczos_spectrum_estimate(op.matvec, n, rng=0)
        assert lo <= exact[0] and hi >= exact[-1]
        assert 0.0 < interior <= np.min(np.abs(exact))

    def test_measured_and_resolved_kappa(self):
        op = BandedOperator.toeplitz(16, {0: 2.5, 1: -1.0, -1: -1.0})
        lo, hi = op.eigenvalue_bounds()
        assert measured_kappa(op) == pytest.approx(hi / lo)
        # registry closed forms win; unknown parameters fall back to measure
        assert resolved_kappa("poisson-1d", num_points=16) == pytest.approx(
            predicted_kappa("poisson-1d", num_points=16))
        assert resolved_kappa("graph-laplacian", op,
                              topology="random-regular") == pytest.approx(
            measured_kappa(op))
        with pytest.raises(KeyError):
            resolved_kappa("no-such-model")


class TestUnifiedDenseWall:
    def test_one_env_var_moves_assembly_and_materialisation(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_WALL", "16")
        with pytest.raises(ValueError, match="REPRO_DENSE_WALL"):
            check_dense_assembly(17, "test-family")
        check_dense_assembly(16, "test-family")  # at the wall: allowed
        op = BandedOperator.toeplitz(32, {0: 2.0, 1: -1.0, -1: -1.0})
        with pytest.raises(MemoryError, match="REPRO_DENSE_WALL"):
            op.to_dense()
        monkeypatch.delenv("REPRO_DENSE_WALL")
        assert op.to_dense().shape == (32, 32)


class TestOperatorPayloadPersistence:
    def test_store_round_trip_across_processes(self, tmp_path):
        from repro.engine.cache import CompiledSolverCache
        from repro.engine.store import SynthesisStore

        op = BandedOperator.toeplitz(16, {0: 2.5, 1: -1.0, -1: -1.0})
        store = SynthesisStore(tmp_path)
        cache = CompiledSolverCache(store=store)
        for backend in ("ideal", "circuit"):
            solver = cache.solver(op, epsilon_l=1e-6, backend=backend)
            assert solver.backend.matrix is not None
        assert len(store) == 2

        child = textwrap.dedent("""
            import numpy as np
            from repro.core.refinement import MixedPrecisionRefinement
            from repro.engine.cache import CompiledSolverCache
            from repro.engine.store import SynthesisStore
            from repro.linalg import BandedOperator

            op = BandedOperator.toeplitz(16, {0: 2.5, 1: -1.0, -1: -1.0})
            store = SynthesisStore(%r)
            cache = CompiledSolverCache(store=store)
            rhs = np.random.default_rng(1).standard_normal(16)
            exact = op.solve(rhs)
            for backend in ("ideal", "circuit"):
                solver = cache.solver(op, epsilon_l=1e-6, backend=backend)
                result = MixedPrecisionRefinement(
                    solver, target_accuracy=1e-10).solve(rhs)
                assert result.converged
                assert np.linalg.norm(result.x - exact) < 1e-8, backend
            stats = cache.stats()
            assert stats["compiles"] == 0, stats
            print("RESTORED-WITHOUT-COMPILE")
        """) % str(tmp_path)
        proc = subprocess.run([sys.executable, "-c", child],
                              capture_output=True, text=True, timeout=240,
                              cwd="/root/repo",
                              env={"PYTHONPATH": "/root/repo/src",
                                   "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr
        assert "RESTORED-WITHOUT-COMPILE" in proc.stdout

    def test_ideal_matrix_free_payload_round_trip_in_process(self):
        gen = np.random.default_rng(2)
        dense = _diag_dominant_nonsym(gen, 24)
        op = CSROperator.from_dense(dense)
        backend = IdealPolynomialBackend()
        backend.prepare(op, epsilon_l=1e-4)
        payload = backend.export_payload()
        restored = IdealPolynomialBackend()
        restored.import_payload(payload)
        rhs = gen.standard_normal(24)
        np.testing.assert_allclose(restored.apply_inverse(rhs).direction,
                                   backend.apply_inverse(rhs).direction,
                                   atol=1e-12)


class TestFamiliesMatrixFree:
    def test_convection_diffusion_solves_matrix_free(self):
        workload = ConvectionDiffusionFamily().workloads(num_points=12,
                                                         peclet=0.8)[0]
        op = workload.matrix
        assert isinstance(op, CSROperator) and not op.is_symmetric
        true_kappa = np.linalg.cond(op.to_dense(), 2)
        assert workload.condition_number >= true_kappa * 0.999
        solver = QSVTLinearSolver(op, epsilon_l=1e-3, backend="ideal",
                                  kappa=workload.condition_number)
        assert solver.backend._dilated
        result = MixedPrecisionRefinement(
            solver, target_accuracy=1e-8).solve(workload.rhs)
        assert result.converged
        assert np.linalg.norm(result.x - workload.solution) < 1e-6

    def test_helmholtz_estimated_kappa_solves_matrix_free(self):
        family = HelmholtzFamily()
        workload = family.workloads(num_points=8,
                                    kappa_source="estimated")[0]
        assert workload.metadata["kappa_source"] == "estimated"
        assert workload.metadata["indefinite"] is True
        analytic = family.analytic_condition_number(num_points=8)
        assert workload.condition_number >= analytic * 0.999
        # no κ pinned anywhere: the solver estimates it from the operator
        solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-3,
                                  backend="ideal")
        result = MixedPrecisionRefinement(
            solver, target_accuracy=1e-8).solve(workload.rhs)
        assert result.converged
        assert np.linalg.norm(result.x - workload.solution) < 1e-6
