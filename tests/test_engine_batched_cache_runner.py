"""Engine subsystem tests: batched simulation, compiled-solver cache, runner.

The three contracts asserted here are the ones the engine's throughput story
rests on: (a) the batched statevector is *exactly* the per-state simulator
run ``B`` times (agreement to 1e-12 on random circuits); (b) cache hits skip
synthesis entirely (observable through the compile counter); (c) the parallel
scenario runner returns results identical to serial execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QSVTLinearSolver
from repro.engine import (
    BatchedStatevector,
    CompiledSolverCache,
    ScenarioRunner,
    SolveJob,
    build_scenario,
    execute_job,
    list_scenarios,
    register_scenario,
    scenario_names,
    zero_batch,
)
from repro.exceptions import DimensionError, StaleSynthesisError
from repro.linalg import random_matrix_with_condition_number, random_rhs
from repro.qsp.qsvt_circuit import apply_qsvt_to_vector, apply_qsvt_to_vectors
from repro.quantum import QuantumCircuit, Statevector
from repro.quantum.measurement import postselect
from repro.quantum.statevector import apply_circuit
from repro.utils import matrix_fingerprint


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _random_unitary(dim: int, rng) -> np.ndarray:
    raw = rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
    q, r = np.linalg.qr(raw)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def _random_circuit(num_qubits: int, rng, *, num_gates: int = 30) -> QuantumCircuit:
    """A random circuit mixing every gate shape the simulator supports."""
    qc = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        kind = rng.integers(0, 7)
        qubits = rng.permutation(num_qubits)
        if kind == 0:
            qc.h(int(qubits[0]))
        elif kind == 1:
            qc.rx(float(rng.uniform(-np.pi, np.pi)), int(qubits[0]))
        elif kind == 2:
            qc.cx(int(qubits[0]), int(qubits[1]))
        elif kind == 3:
            qc.cry(float(rng.uniform(-np.pi, np.pi)), int(qubits[0]), int(qubits[1]))
        elif kind == 4 and num_qubits >= 3:
            # multi-controlled X with a 0-control, the QSVT projector shape
            qc.mcx([int(qubits[0]), int(qubits[1])], int(qubits[2]),
                   control_states=[0, 1])
        elif kind == 5:
            qc.unitary(_random_unitary(4, rng),
                       [int(qubits[0]), int(qubits[1])], name="rand2q")
        else:
            qc.swap(int(qubits[0]), int(qubits[1]))
    return qc


def _random_batch(batch_size: int, num_qubits: int, rng) -> np.ndarray:
    data = (rng.standard_normal((batch_size, 2**num_qubits))
            + 1j * rng.standard_normal((batch_size, 2**num_qubits)))
    return data / np.linalg.norm(data, axis=1)[:, None]


# ---------------------------------------------------------------------- #
# (a) batched statevector == per-state statevector
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("num_qubits", [2, 4])
def test_batched_matches_per_state_simulation(seed, num_qubits):
    rng = np.random.default_rng(seed)
    circuit = _random_circuit(num_qubits, rng)
    data = _random_batch(5, num_qubits, rng)

    batched = BatchedStatevector(data).apply_circuit(circuit)
    for i in range(data.shape[0]):
        single = apply_circuit(circuit, Statevector(data[i]))
        np.testing.assert_allclose(batched.data[i], single.data,
                                   atol=1e-12, rtol=0)


def test_batched_postselect_matches_single(rng):
    num_qubits = 4
    circuit = _random_circuit(num_qubits, rng)
    data = _random_batch(4, num_qubits, rng)
    batched = BatchedStatevector(data).apply_circuit(circuit)
    reduced, probs = batched.postselect([0, 1], 0, renormalize=False)
    for i in range(len(batched)):
        single = apply_circuit(circuit, Statevector(data[i]))
        expected, prob = postselect(single, [0, 1], 0, renormalize=False)
        np.testing.assert_allclose(reduced.data[i], expected.data, atol=1e-12, rtol=0)
        assert probs[i] == pytest.approx(prob, abs=1e-12)


def test_batched_constructors_and_views(rng):
    states = [Statevector(_random_batch(1, 3, rng)[0]) for _ in range(3)]
    batch = BatchedStatevector.from_statevectors(states)
    assert batch.batch_size == 3 and batch.num_qubits == 3
    assert len(batch.to_statevectors()) == 3
    np.testing.assert_allclose(batch[1].data, states[1].data)
    zeros = zero_batch(4, 2)
    assert zeros.data.shape == (4, 4)
    np.testing.assert_allclose(zeros.norms(), np.ones(4))
    with pytest.raises(DimensionError):
        BatchedStatevector(np.zeros(8))  # 1-D is not a batch
    with pytest.raises(DimensionError):
        BatchedStatevector(np.zeros((2, 3)))  # not a power of two


def test_apply_qsvt_to_vectors_matches_single(prepared_circuit_solver):
    backend = prepared_circuit_solver.backend
    rng = np.random.default_rng(5)
    batch = rng.standard_normal((6, prepared_circuit_solver.dimension))
    application = apply_qsvt_to_vectors(backend.block, backend.phases, batch)
    assert application.batch_size == 6
    for i in range(6):
        single = apply_qsvt_to_vector(backend.block, backend.phases, batch[i])
        np.testing.assert_allclose(application.vectors[i], single.vector,
                                   atol=1e-12, rtol=0)
        assert application.success_probabilities[i] == pytest.approx(
            single.success_probability, abs=1e-12)
    assert application.block_encoding_calls == single.block_encoding_calls


def test_solve_batch_matches_looped_solve(prepared_circuit_solver):
    rng = np.random.default_rng(11)
    batch = np.stack([random_rhs(prepared_circuit_solver.dimension, rng=rng)
                      for _ in range(4)])
    batched = prepared_circuit_solver.solve_batch(batch)
    for i, record in enumerate(batched):
        single = prepared_circuit_solver.solve(batch[i])
        np.testing.assert_allclose(record.x, single.x, atol=1e-12, rtol=0)
        assert record.block_encoding_calls == single.block_encoding_calls


def test_solve_batch_ideal_backend_matches(prepared_ideal_solver):
    rng = np.random.default_rng(12)
    batch = np.stack([random_rhs(prepared_ideal_solver.dimension, rng=rng)
                      for _ in range(3)])
    batched = prepared_ideal_solver.solve_batch(batch)
    for i, record in enumerate(batched):
        single = prepared_ideal_solver.solve(batch[i])
        np.testing.assert_allclose(record.x, single.x, atol=1e-12, rtol=0)


# ---------------------------------------------------------------------- #
# (b) compiled-solver cache
# ---------------------------------------------------------------------- #
def test_cache_hits_skip_synthesis():
    matrix = random_matrix_with_condition_number(4, 3.0, rng=0)
    cache = CompiledSolverCache()
    first = cache.solver(matrix, epsilon_l=5e-2, backend="exact")
    assert cache.compiles == 1 and cache.misses == 1 and cache.hits == 0
    second = cache.solver(matrix, epsilon_l=5e-2, backend="exact")
    assert second is first            # the compiled object itself is reused
    assert cache.compiles == 1        # zero re-synthesis on the hit
    assert cache.hits == 1
    # an equal-bytes copy of the matrix also hits (fingerprint keying)
    third = cache.solver(matrix.copy(), epsilon_l=5e-2, backend="exact")
    assert third is first and cache.compiles == 1
    # different epsilon_l or backend kind -> distinct entries
    cache.solver(matrix, epsilon_l=1e-2, backend="exact")
    cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
    assert cache.compiles == 3


def test_cache_mutation_invalidates_by_fingerprint():
    matrix = random_matrix_with_condition_number(4, 3.0, rng=1)
    cache = CompiledSolverCache()
    first = cache.solver(matrix, epsilon_l=5e-2, backend="exact")
    matrix[0, 0] += 1.0  # in-place mutation changes the key
    second = cache.solver(matrix, epsilon_l=5e-2, backend="exact")
    assert second is not first
    assert cache.compiles == 2
    assert not second.is_stale()


def test_cache_lru_eviction_and_invalidate():
    cache = CompiledSolverCache(maxsize=2)
    matrices = [random_matrix_with_condition_number(4, 3.0, rng=seed)
                for seed in range(3)]
    for matrix in matrices:
        cache.solver(matrix, epsilon_l=5e-2, backend="exact")
    assert len(cache) == 2
    assert matrices[0] not in cache   # least recently used was evicted
    assert matrices[2] in cache
    assert cache.invalidate(matrices[2]) == 1
    assert matrices[2] not in cache
    cache.clear()
    assert len(cache) == 0
    with pytest.raises(ValueError):
        CompiledSolverCache(maxsize=0)


def test_cache_rejects_backend_instances():
    from repro.core import ExactInverseBackend

    cache = CompiledSolverCache()
    with pytest.raises(TypeError):
        cache.solver(np.eye(4), epsilon_l=5e-2, backend=ExactInverseBackend())


def test_cache_rejects_identity_keyed_option_values():
    # repr() of stateful objects embeds memory addresses; such options must be
    # refused instead of silently keying the cache on object identity.
    from repro.core import SamplingModel

    cache = CompiledSolverCache()
    with pytest.raises(TypeError):
        cache.solver(np.eye(4), epsilon_l=5e-2, backend="exact",
                     sampling=SamplingModel())
    with pytest.raises(TypeError):
        cache.solver(np.eye(4), epsilon_l=5e-2, backend="exact",
                     rng=np.random.default_rng(0))
    # primitive-valued options (in any order) key fine
    matrix = random_matrix_with_condition_number(4, 3.0, rng=6)
    a = cache.solver(matrix, epsilon_l=5e-2, backend="ideal",
                     kappa_margin=1.1, error_convention="conservative")
    b = cache.solver(matrix, epsilon_l=5e-2, backend="ideal",
                     error_convention="conservative", kappa_margin=1.1)
    assert a is b


def test_cache_entry_survives_caller_side_mutation():
    # the cached solver owns a private copy, so mutating the caller's array
    # must not poison the entry for later same-bytes requests.
    matrix = random_matrix_with_condition_number(4, 3.0, rng=7)
    original = matrix.copy()
    rhs = random_rhs(4, rng=8)
    cache = CompiledSolverCache()
    first = cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
    matrix[0, 0] += 5.0
    again = cache.solver(original, epsilon_l=5e-2, backend="ideal")
    assert again is first
    assert not again.is_stale()
    assert again.solve(rhs).scaled_residual <= 5e-1  # solves, no stale error


def test_cache_concurrent_misses_compile_once():
    from concurrent.futures import ThreadPoolExecutor

    matrix = random_matrix_with_condition_number(4, 3.0, rng=9)
    cache = CompiledSolverCache()
    with ThreadPoolExecutor(max_workers=4) as pool:
        solvers = list(pool.map(
            lambda _: cache.solver(matrix, epsilon_l=5e-2, backend="ideal"),
            range(8)))
    assert cache.compiles == 1
    assert all(solver is solvers[0] for solver in solvers)
    assert cache.hits + cache.misses == 8 and cache.misses == 1


def test_shared_backend_across_solvers_is_detected():
    from repro.core import IdealPolynomialBackend

    backend = IdealPolynomialBackend()
    matrix_a = random_matrix_with_condition_number(4, 3.0, rng=10)
    matrix_b = random_matrix_with_condition_number(4, 3.0, rng=11)
    rhs = random_rhs(4, rng=12)
    solver_a = QSVTLinearSolver(matrix_a, epsilon_l=5e-2, backend=backend)
    solver_b = QSVTLinearSolver(matrix_b, epsilon_l=5e-2, backend=backend)
    # the shared backend now holds B's synthesis: solving through A must not
    # silently return B-flavoured answers.
    with pytest.raises(StaleSynthesisError):
        solver_a.solve(rhs)
    assert solver_b.solve(rhs).scaled_residual <= 5e-1
    solver_a.recompile()  # re-synthesises the backend for A...
    assert solver_a.solve(rhs).scaled_residual <= 5e-1
    with pytest.raises(StaleSynthesisError):
        solver_b.solve(rhs)  # ...which in turn makes B's view stale


# ---------------------------------------------------------------------- #
# staleness guard (shared fingerprint machinery)
# ---------------------------------------------------------------------- #
def test_solver_detects_in_place_mutation():
    matrix = random_matrix_with_condition_number(4, 3.0, rng=2)
    rhs = random_rhs(4, rng=3)
    solver = QSVTLinearSolver(matrix, epsilon_l=5e-2, backend="ideal")
    assert not solver.is_stale()
    assert not solver.backend.is_stale(solver.matrix)
    baseline = solver.solve(rhs).scaled_residual
    solver.matrix *= 2.0  # the compiled synthesis is now for the wrong matrix
    assert solver.is_stale()
    with pytest.raises(StaleSynthesisError):
        solver.solve(rhs)
    with pytest.raises(StaleSynthesisError):
        solver.solve_batch(rhs[None, :])
    solver.recompile()
    assert not solver.is_stale()
    assert solver.solve(rhs).scaled_residual <= 10 * baseline


def test_custom_backend_without_fingerprinting_works_through_solver():
    # third-party prepare() implementations that never call _record_synthesis
    # must not trip the staleness guard: the solver records on their behalf.
    from repro.core import QSVTBackend
    from repro.core.backends import BackendApplication

    class NaiveBackend(QSVTBackend):
        name = "naive"

        def prepare(self, matrix, *, epsilon_l, kappa=None):
            self.matrix = np.asarray(matrix, dtype=float)

        def apply_inverse(self, rhs):
            x = np.linalg.solve(self.matrix, np.asarray(rhs, dtype=float))
            return BackendApplication(direction=x / np.linalg.norm(x),
                                      block_encoding_calls=0, polynomial_degree=0)

    matrix = random_matrix_with_condition_number(4, 3.0, rng=13)
    rhs = random_rhs(4, rng=14)
    solver = QSVTLinearSolver(matrix, epsilon_l=5e-2, backend=NaiveBackend())
    assert solver.solve(rhs).scaled_residual < 1e-10


def test_cache_failed_synthesis_does_not_leak_compile_locks():
    cache = CompiledSolverCache()
    bad = np.eye(3)  # not a power of two -> block-encoding synthesis raises
    for _ in range(3):
        with pytest.raises(Exception):
            cache.solver(bad, epsilon_l=5e-2, backend="circuit")
    assert len(cache._compile_locks) == 0
    assert len(cache) == 0


def test_fingerprint_is_exact_over_bytes():
    matrix = np.arange(16, dtype=float).reshape(4, 4)
    fp = matrix_fingerprint(matrix)
    assert matrix_fingerprint(matrix.copy()) == fp
    assert matrix_fingerprint(matrix + 1e-300) != fp
    assert matrix_fingerprint(matrix.reshape(2, 8)) != fp
    assert matrix_fingerprint(matrix.astype(np.float32)) != fp


# ---------------------------------------------------------------------- #
# (c) scenario runner: parallel == serial
# ---------------------------------------------------------------------- #
def _sweep_jobs():
    return build_scenario("kappa-sweep", dimension=8, kappas=(2.0, 5.0, 8.0),
                          epsilon_l=5e-2, backend="ideal", rng=4).jobs


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_runner_parallel_matches_serial(mode):
    jobs = _sweep_jobs()
    serial = ScenarioRunner(mode="serial", max_workers=1).run(jobs)
    parallel = ScenarioRunner(mode=mode, max_workers=2).run(jobs)
    assert [r.name for r in parallel] == [r.name for r in serial]
    for par, ser in zip(parallel, serial):
        assert par.ok and ser.ok
        assert par.converged == ser.converged
        assert par.iterations == ser.iterations
        np.testing.assert_allclose(par.x, ser.x, atol=1e-12, rtol=0)


def test_runner_isolates_job_failures():
    # a zero right-hand side cannot be solved (any backend); the non-power-
    # of-two size additionally exercises the auto fallback to the ideal
    # backend, which used to crash in the circuit encodings instead
    jobs = _sweep_jobs()[:1] + [
        SolveJob(name="broken", matrix=np.eye(3), rhs=np.zeros(3))]
    results = ScenarioRunner(mode="serial").run(jobs)
    assert results[0].ok
    assert not results[1].ok and "zero right-hand side" in results[1].error
    assert ScenarioRunner(mode="serial").run([]) == []
    with pytest.raises(ValueError):
        ScenarioRunner(mode="rocket")
    with pytest.raises(ValueError):
        ScenarioRunner(max_workers=0)


def test_runner_shares_cache_across_jobs():
    jobs = build_scenario("poisson-multi-rhs", num_points=8, num_rhs=4,
                          epsilon_l=5e-2, backend="ideal", rng=5).jobs
    cache = CompiledSolverCache()
    runner = ScenarioRunner(mode="serial", cache=cache)
    results = runner.run(jobs)
    assert all(result.ok for result in results)
    # four jobs, one matrix: exactly one synthesis
    assert cache.compiles == 1 and cache.hits == 3


def test_execute_job_single_vs_refined():
    job = _sweep_jobs()[0]
    refined = execute_job(job, CompiledSolverCache())
    assert refined.ok and refined.converged and refined.iterations >= 1
    single = SolveJob(name="single", matrix=job.matrix, rhs=job.rhs,
                      epsilon_l=5e-2, backend="ideal")
    record = execute_job(single, CompiledSolverCache())
    assert record.ok and record.iterations == 0
    assert record.scaled_residual <= 5e-2


# ---------------------------------------------------------------------- #
# scenario registry
# ---------------------------------------------------------------------- #
def test_registry_builtins_and_errors():
    names = scenario_names()
    for expected in ("poisson", "poisson-multi-rhs", "kappa-sweep", "epsilon-sweep"):
        assert expected in names
    descriptions = list_scenarios()
    assert all(descriptions[name] for name in names)
    with pytest.raises(KeyError):
        build_scenario("no-such-scenario")

    scenario = build_scenario("poisson-multi-rhs", num_points=8, num_rhs=3, rng=0)
    assert len(scenario) == 3
    fingerprints = {matrix_fingerprint(job.matrix) for job in scenario.jobs}
    assert len(fingerprints) == 1  # one shared matrix -> cache-friendly

    sweep = build_scenario("epsilon-sweep", dimension=8, epsilons=(1e-1, 1e-2))
    assert [job.epsilon_l for job in sweep.jobs] == [1e-1, 1e-2]


def test_registry_custom_registration():
    @register_scenario("identity-test", description="trivial identity solves")
    def _identity(dimension: int = 4) -> list[SolveJob]:
        return [SolveJob(name="identity", matrix=np.eye(dimension),
                         rhs=np.ones(dimension), epsilon_l=5e-2, backend="exact")]

    try:
        scenario = build_scenario("identity-test", dimension=4)
        assert scenario.description == "trivial identity solves"
        results = ScenarioRunner(mode="serial").run(scenario.jobs)
        assert results[0].ok
    finally:
        from repro.engine import unregister_scenario

        unregister_scenario("identity-test")
