"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.utils import (
    as_matrix,
    as_vector,
    check_power_of_two,
    check_square,
    check_system,
    is_hermitian,
    is_power_of_two,
    is_unitary,
    num_qubits_for_dimension,
)


class TestAsMatrix:
    def test_accepts_lists(self):
        out = as_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)

    def test_rejects_vector(self):
        with pytest.raises(DimensionError):
            as_matrix([1, 2, 3])

    def test_rejects_tensor(self):
        with pytest.raises(DimensionError):
            as_matrix(np.zeros((2, 2, 2)))

    def test_dtype_forwarded(self):
        out = as_matrix([[1, 2], [3, 4]], dtype=float)
        assert out.dtype == np.float64


class TestAsVector:
    def test_accepts_list(self):
        assert as_vector([1.0, 2.0]).shape == (2,)

    def test_flattens_column(self):
        assert as_vector(np.ones((3, 1))).shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(DimensionError):
            as_vector(np.ones((2, 2)))


class TestCheckSquare:
    def test_square_passes(self):
        check_square(np.eye(3))

    def test_rectangular_fails(self):
        with pytest.raises(DimensionError):
            check_square(np.ones((2, 3)))


class TestCheckSystem:
    def test_matching_system(self):
        a, b = check_system(np.eye(2), [1.0, 2.0])
        assert a.shape == (2, 2) and b.shape == (2,)

    def test_mismatched_rhs(self):
        with pytest.raises(DimensionError):
            check_system(np.eye(2), [1.0, 2.0, 3.0])


class TestPowersOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1024])
    def test_powers_accepted(self, n):
        assert is_power_of_two(n)
        assert check_power_of_two(n) == n

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 12, 1000])
    def test_non_powers_rejected(self, n):
        assert not is_power_of_two(n)
        with pytest.raises(DimensionError):
            check_power_of_two(n)

    def test_num_qubits(self):
        assert num_qubits_for_dimension(16) == 4
        assert num_qubits_for_dimension(1) == 0


class TestStructureChecks:
    def test_hermitian_detection(self, rng):
        a = rng.standard_normal((4, 4))
        assert is_hermitian(a + a.T)
        assert not is_hermitian(a + a.T + 1e-3 * rng.standard_normal((4, 4)))

    def test_hermitian_requires_square(self):
        assert not is_hermitian(np.ones((2, 3)))

    def test_unitary_detection(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        assert is_unitary(q)
        assert not is_unitary(q * 1.01)
