"""Tests for the convergence theory (Theorem III.1) and the cost models (Tables I-II)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommunicationTrace,
    block_encoding_calls_per_solve,
    contraction_factor,
    is_convergent,
    iteration_bound,
    poisson_complexity_table,
    poisson_tgate_estimate,
    predicted_scaled_residuals,
    qsvt_only_quantum_cost,
    quantum_cost_table,
    refinement_quantum_cost,
    samples_for_accuracy,
)
from repro.core.convergence import limiting_accuracy


class TestTheoremIII1:
    def test_contraction_factor(self):
        assert contraction_factor(1e-3, 100.0) == pytest.approx(0.1)

    def test_convergence_condition(self):
        assert is_convergent(1e-3, 100.0)
        assert not is_convergent(1e-1, 100.0)

    def test_iteration_bound_formula(self):
        # ε = 1e-12, ε_l κ = 1e-2  ->  ceil(12/2) = 6
        assert iteration_bound(1e-12, 1e-4, 100.0) == 6

    def test_iteration_bound_divergent_raises(self):
        with pytest.raises(ValueError):
            iteration_bound(1e-10, 0.5, 10.0)

    def test_iteration_bound_epsilon_validation(self):
        with pytest.raises(ValueError):
            iteration_bound(2.0, 1e-3, 10.0)

    def test_predicted_residuals_geometric(self):
        residuals = predicted_scaled_residuals(3, 1e-2, 10.0)
        np.testing.assert_allclose(residuals, [1e-1, 1e-2, 1e-3, 1e-4])

    def test_limiting_accuracy_scales_with_u_and_kappa(self):
        assert limiting_accuracy(1e-16, 100.0) == pytest.approx(4e-14)

    @given(st.floats(min_value=1e-8, max_value=1e-2),
           st.floats(min_value=1.0, max_value=1e3),
           st.floats(min_value=1e-14, max_value=1e-4))
    @settings(max_examples=100, deadline=None)
    def test_property_bound_is_sufficient(self, epsilon_l, kappa, epsilon):
        """Running exactly the bound's number of iterations reaches ε."""
        rho = epsilon_l * kappa
        if rho >= 0.99 or epsilon >= 1.0:
            return
        bound = iteration_bound(epsilon, epsilon_l, kappa)
        assert rho ** (bound + 1) <= epsilon * (1 + 1e-9)
        # and one fewer iteration would (in the worst case) not be enough
        if bound >= 1:
            assert rho**bound > epsilon * (1 - 1e-9) or rho ** (bound) <= epsilon


class TestTableI:
    def test_samples_quadratic_in_accuracy(self):
        assert samples_for_accuracy(1e-2) == 1e4
        assert samples_for_accuracy(1e-5) == 1e10

    def test_block_encoding_calls_monotone_in_kappa(self):
        assert (block_encoding_calls_per_solve(100.0, 1e-2)
                > block_encoding_calls_per_solve(2.0, 1e-2))

    def test_asymptotic_variant(self):
        value = block_encoding_calls_per_solve(10.0, 1e-2, concrete=False)
        assert value == pytest.approx(10.0 * np.log(10.0 / 5e-4))

    def test_refinement_beats_direct_when_epsilon_small(self):
        kappa, epsilon, epsilon_l = 10.0, 1e-10, 1e-2
        assert (refinement_quantum_cost(kappa, epsilon, epsilon_l)
                < qsvt_only_quantum_cost(kappa, epsilon))

    def test_costs_coincide_at_epsilon_equal_epsilon_l(self):
        kappa, epsilon = 5.0, 1e-3
        direct = qsvt_only_quantum_cost(kappa, epsilon)
        refined = refinement_quantum_cost(kappa, epsilon, epsilon, num_solves=1)
        assert refined == pytest.approx(direct)

    def test_quantum_cost_table_rows(self):
        direct, refined = quantum_cost_table(10.0, 1e-10, 1e-2)
        assert direct.num_solves == 1
        assert refined.num_solves >= 2
        assert direct.total > refined.total
        row = refined.as_row()
        assert set(row) == {"method", "# solves", "BE calls / solve",
                            "# samples / solve", "total"}

    def test_measured_solve_count_override(self):
        _, refined = quantum_cost_table(10.0, 1e-10, 1e-2, num_solves=3)
        assert refined.num_solves == 3


class TestTableII:
    def test_rows_structure(self):
        rows = poisson_complexity_table(4, epsilon=1e-10, epsilon_l=1e-2)
        assert len(rows) == 8        # 4 tasks x 2 phases
        tasks = {row["task"] for row in rows}
        assert any("state preparation" in t for t in tasks)
        assert any("block-encoding" in t for t in tasks)

    def test_first_phase_has_classical_phase_cost(self):
        rows = poisson_complexity_table(4, epsilon=1e-10, epsilon_l=1e-2)
        qsvt_rows = {row["phase"]: row for row in rows if row["task"].startswith("QSVT")}
        assert qsvt_rows["first"]["classical_estimate"] > 0
        assert qsvt_rows["iteration"]["classical_estimate"] == 0

    def test_quantum_estimate_grows_with_problem_size(self):
        small = poisson_complexity_table(3, epsilon=1e-8, epsilon_l=1e-2)
        large = poisson_complexity_table(6, epsilon=1e-8, epsilon_l=1e-2)
        be_small = next(r for r in small if r["task"].startswith("block"))
        be_large = next(r for r in large if r["task"].startswith("block"))
        assert be_large["quantum_estimate"] > be_small["quantum_estimate"]

    def test_tgate_estimate_fields_and_scaling(self):
        estimate = poisson_tgate_estimate(3, epsilon_l=5e-2)
        assert estimate["t_count_per_solve"] > 0
        doubled = poisson_tgate_estimate(3, epsilon_l=5e-2, num_solves=2)
        assert doubled["t_count_total"] == pytest.approx(2 * estimate["t_count_per_solve"])


class TestCommunicationTrace:
    def test_event_recording_and_totals(self):
        trace = CommunicationTrace()
        trace.add_circuit_upload(0, "BE(A†)", 100)
        trace.add_vector_upload(0, "Φ", 50)
        trace.add_solution_download(0, "x_0", 16)
        trace.add_circuit_upload(1, "SP(r_1)", 16)
        trace.add_solution_download(1, "x_1", 16)
        assert trace.total_bytes("cpu->qpu") == pytest.approx(100 * 16 + 50 * 8 + 16 * 16)
        assert trace.total_bytes("qpu->cpu") == pytest.approx(2 * 16 * 8)
        assert trace.per_step_bytes()[1] == pytest.approx(16 * 16 + 16 * 8)

    def test_setup_fraction_decreases_with_iterations(self):
        trace = CommunicationTrace()
        trace.add_circuit_upload(0, "BE", 1000)
        fraction_initial = trace.setup_fraction()
        for i in range(1, 5):
            trace.add_circuit_upload(i, f"SP(r_{i})", 10)
        assert fraction_initial == 1.0
        assert trace.setup_fraction() < 1.0

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            CommunicationTrace().add(0, "sideways", "x", 1.0)

    def test_render_contains_events_and_totals(self):
        trace = CommunicationTrace()
        trace.add_circuit_upload(0, "BE(A†)", 10)
        trace.add_solution_download(0, "x_0", 4)
        text = trace.render()
        assert "BE(A†)" in text and "x_0" in text and "setup fraction" in text

    def test_empty_trace(self):
        assert CommunicationTrace().setup_fraction() == 0.0
