"""Tests for the mixed-precision iterative refinement driver (Algorithms 1-2)."""

import numpy as np
import pytest

from repro.core import (
    ClassicalLUSolver,
    ExactInverseBackend,
    MixedPrecisionRefinement,
    QSVTLinearSolver,
    mixed_precision_lu_refinement,
    refine,
)
from repro.linalg import random_matrix_with_condition_number, random_rhs, scaled_residual
from repro.precision import PrecisionContext


@pytest.fixture()
def surrogate_solver(medium_workload):
    """Inner solver with *exactly* ε_l relative error (Theorem III.1 hypothesis)."""
    return QSVTLinearSolver(medium_workload.matrix, epsilon_l=1e-3,
                            backend=ExactInverseBackend(rng=11))


class TestRefinementWithSurrogate:
    def test_converges_to_target(self, surrogate_solver, medium_workload):
        driver = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-11)
        result = driver.solve(medium_workload.rhs, x_true=medium_workload.solution)
        assert result.converged
        assert result.scaled_residuals[-1] <= 1e-11
        assert result.iterations <= result.iteration_bound

    def test_residual_contracts_geometrically(self, surrogate_solver, medium_workload):
        driver = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-11)
        result = driver.solve(medium_workload.rhs)
        residuals = result.scaled_residuals
        ratios = residuals[1:] / residuals[:-1]
        # every iteration improves the residual, on average by roughly ε_l κ
        assert np.all(ratios < 1.0)

    def test_respects_theorem_envelope(self, surrogate_solver, medium_workload):
        driver = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-11)
        result = driver.solve(medium_workload.rhs)
        # measured residuals must lie below the (ε_l κ)^{i+1} envelope
        # (theorem hypothesis realised exactly by the surrogate backend)
        predicted = result.predicted_residuals
        measured = result.scaled_residuals
        assert np.all(measured <= predicted * 10)

    def test_forward_error_tracked(self, surrogate_solver, medium_workload):
        driver = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-10)
        result = driver.solve(medium_workload.rhs, x_true=medium_workload.solution)
        assert np.all(np.isfinite(result.forward_errors))
        assert result.forward_errors[-1] < result.forward_errors[0]

    def test_history_records_cumulative_calls(self, medium_workload):
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=1e-3, backend="ideal")
        result = MixedPrecisionRefinement(solver, target_accuracy=1e-11).solve(
            medium_workload.rhs)
        calls = [record.cumulative_block_encoding_calls for record in result.history]
        assert all(b > a for a, b in zip(calls, calls[1:]))
        assert result.total_block_encoding_calls == calls[-1]

    def test_communication_trace_built(self, medium_workload):
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=1e-3, backend="ideal")
        result = MixedPrecisionRefinement(solver, target_accuracy=1e-10).solve(
            medium_workload.rhs)
        trace = result.communication
        assert trace is not None
        assert trace.total_bytes("cpu->qpu") > 0
        assert trace.total_bytes("qpu->cpu") > 0
        assert 0 < trace.setup_fraction() <= 1.0

    def test_tracking_can_be_disabled(self, surrogate_solver, medium_workload):
        driver = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-8,
                                          track_communication=False)
        assert driver.solve(medium_workload.rhs).communication is None

    def test_summary_text(self, surrogate_solver, medium_workload):
        result = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-9).solve(
            medium_workload.rhs)
        text = result.summary()
        assert "scaled residual" in text and "converged" in text


class TestRefinementEdgeCases:
    def test_divergent_configuration_stops(self, medium_workload):
        # ε_l κ > 1: the refinement cannot converge and must stop gracefully
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=0.3,
                                  backend=ExactInverseBackend(rng=5))
        driver = MixedPrecisionRefinement(solver, target_accuracy=1e-12,
                                          max_iterations=10)
        result = driver.solve(medium_workload.rhs)
        assert not result.converged
        assert result.iterations <= 10
        assert np.isinf(result.iteration_bound) or np.isnan(result.iteration_bound)

    def test_invalid_target(self, surrogate_solver):
        with pytest.raises(ValueError):
            MixedPrecisionRefinement(surrogate_solver, target_accuracy=2.0)

    def test_zero_rhs_rejected(self, surrogate_solver):
        driver = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-8)
        with pytest.raises(ValueError):
            driver.solve(np.zeros(16))

    def test_rhs_length_mismatch(self, surrogate_solver):
        driver = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-8)
        with pytest.raises(ValueError):
            driver.solve(np.ones(4))

    def test_explicit_epsilon_l_and_kappa_override(self, surrogate_solver, medium_workload):
        driver = MixedPrecisionRefinement(surrogate_solver, target_accuracy=1e-10,
                                          epsilon_l=1e-3, kappa=10.0)
        assert driver.iteration_bound == pytest.approx(5.0)

    def test_max_iterations_respected(self, medium_workload):
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=5e-2,
                                  backend=ExactInverseBackend(rng=6))
        result = MixedPrecisionRefinement(solver, target_accuracy=1e-14,
                                          max_iterations=2).solve(medium_workload.rhs)
        assert result.iterations <= 2


class TestConvenienceAPIs:
    def test_refine_one_call(self, medium_workload):
        result = refine(medium_workload.matrix, medium_workload.rhs, epsilon_l=1e-3,
                        target_accuracy=1e-10, backend="ideal",
                        x_true=medium_workload.solution)
        assert result.converged
        assert scaled_residual(medium_workload.matrix, result.x,
                               medium_workload.rhs) <= 1e-10

    @pytest.mark.parametrize("low_precision", ["fp32", "fp16", "bf16"])
    def test_classical_lu_refinement(self, low_precision, medium_workload):
        result = mixed_precision_lu_refinement(medium_workload.matrix, medium_workload.rhs,
                                               low_precision=low_precision,
                                               target_accuracy=1e-12)
        assert result.converged
        assert result.scaled_residuals[-1] <= 1e-12

    def test_classical_lu_solver_protocol(self, medium_workload):
        solver = ClassicalLUSolver(medium_workload.matrix, low_precision="fp32")
        record = solver.solve(medium_workload.rhs)
        assert record.scaled_residual < 1e-4
        driver = MixedPrecisionRefinement(solver, target_accuracy=1e-13,
                                          precision=PrecisionContext(low="fp32"))
        assert driver.solve(medium_workload.rhs).converged

    def test_lu_refinement_beats_single_low_precision_solve(self, medium_workload):
        single = ClassicalLUSolver(medium_workload.matrix, low_precision="fp16").solve(
            medium_workload.rhs)
        refined = mixed_precision_lu_refinement(medium_workload.matrix, medium_workload.rhs,
                                                low_precision="fp16", target_accuracy=1e-12)
        assert refined.scaled_residuals[-1] < single.scaled_residual
