"""Integration tests exercising the full pipeline end to end.

These tests reproduce, at reduced scale, the behaviours reported in Sec. IV of
the paper: geometric contraction of the scaled residual (Fig. 3/4), agreement
between the circuit-level and ideal-polynomial backends, and the cost
advantage of refinement over a direct high-accuracy QSVT solve (Fig. 5 /
Table I).
"""

import numpy as np
import pytest

from repro.applications import PoissonProblem, random_workload
from repro.core import (
    IdealPolynomialBackend,
    MixedPrecisionRefinement,
    QSVTLinearSolver,
    iteration_bound,
    qsvt_only_quantum_cost,
    samples_for_accuracy,
)
from repro.linalg import scaled_residual


class TestCircuitLevelRefinement:
    """Full Algorithm 2 with the faithful circuit backend (small instance)."""

    def test_convergence_and_bound(self, prepared_circuit_solver):
        matrix = prepared_circuit_solver.matrix
        rng = np.random.default_rng(0)
        rhs = rng.standard_normal(8)
        rhs /= np.linalg.norm(rhs)
        x_true = np.linalg.solve(matrix, rhs)
        driver = MixedPrecisionRefinement(prepared_circuit_solver, target_accuracy=1e-10)
        result = driver.solve(rhs, x_true=x_true)
        assert result.converged
        assert result.iterations <= result.iteration_bound
        assert result.scaled_residuals[-1] <= 1e-10
        # Eq. (5): the forward error is within κ of the scaled residual
        assert result.forward_errors[-1] <= result.kappa * result.scaled_residuals[-1] * 10

    def test_monotone_residual_history(self, prepared_circuit_solver):
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal(8)
        result = MixedPrecisionRefinement(prepared_circuit_solver,
                                          target_accuracy=1e-9).solve(rhs)
        residuals = result.scaled_residuals
        assert np.all(np.diff(residuals) < 0)


class TestBackendAgreement:
    """Circuit-level and ideal-polynomial backends must agree (substitution check)."""

    def test_single_solve_directions_match(self, prepared_circuit_solver):
        matrix = prepared_circuit_solver.matrix
        ideal = IdealPolynomialBackend(calibrate_polynomial=False)
        ideal.prepare(matrix, epsilon_l=prepared_circuit_solver.epsilon_l,
                      kappa=prepared_circuit_solver.kappa)
        rng = np.random.default_rng(2)
        rhs = rng.standard_normal(8)
        circuit_direction = prepared_circuit_solver.backend.apply_inverse(rhs).direction
        ideal_direction = ideal.apply_inverse(rhs).direction
        # both approximate the exact direction; they agree to the solve accuracy
        assert np.linalg.norm(np.abs(circuit_direction) - np.abs(ideal_direction)) < 5e-2


class TestRefinementBeatsDirectSolve:
    """The headline claim of Table I / Fig. 5 at a concrete operating point."""

    def test_block_encoding_call_advantage(self, medium_workload):
        epsilon, epsilon_l = 1e-10, 1e-2
        kappa = medium_workload.condition_number
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=epsilon_l,
                                  backend="ideal")
        result = MixedPrecisionRefinement(solver, target_accuracy=epsilon).solve(
            medium_workload.rhs)
        assert result.converged
        # measured cost of the refined run: BE calls x samples at ε_l accuracy
        measured = result.total_block_encoding_calls * samples_for_accuracy(epsilon_l)
        direct = qsvt_only_quantum_cost(kappa, epsilon)
        assert measured < direct

    def test_iteration_count_close_to_bound_prediction(self, medium_workload):
        epsilon, epsilon_l = 1e-11, 1e-3
        bound = iteration_bound(epsilon, epsilon_l, medium_workload.condition_number)
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=epsilon_l,
                                  backend="ideal")
        result = MixedPrecisionRefinement(solver, target_accuracy=epsilon,
                                          epsilon_l=epsilon_l).solve(medium_workload.rhs)
        assert result.converged
        assert result.iterations <= bound


class TestLargeConditionNumbers:
    """Fig. 4 regime: κ of a few hundred through the ideal backend."""

    @pytest.mark.parametrize("kappa", [100.0, 300.0])
    def test_convergence(self, kappa):
        workload = random_workload(16, kappa, rng=17)
        solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-3 / (kappa / 100.0),
                                  backend="ideal")
        result = MixedPrecisionRefinement(solver, target_accuracy=1e-10).solve(
            workload.rhs, x_true=workload.solution)
        assert result.converged
        assert result.forward_errors[-1] < 1e-7


class TestPoissonEndToEnd:
    """Sec. III-C4 use case: solve the Poisson system with the hybrid solver."""

    def test_quantum_solution_matches_thomas(self):
        problem = PoissonProblem(16)
        matrix, rhs = problem.system()
        reference = problem.reference_solution()
        solver = QSVTLinearSolver(matrix, epsilon_l=1e-3, backend="ideal")
        result = MixedPrecisionRefinement(solver, target_accuracy=1e-9).solve(rhs)
        assert result.converged
        rel = np.linalg.norm(result.x - reference) / np.linalg.norm(reference)
        assert rel < 1e-6
        assert scaled_residual(matrix, result.x, rhs) <= 1e-9
