"""Replicated ownership, hedged requests and zero-downtime drain (PR 10).

Covers the robustness layer end to end:

(a) ring replica walks — ``route_replicas`` distinctness, draining
    exclusion, empty/single-ring edge guards, exact placement restoration
    after undrain;
(b) hedge policy and replica selection — explicit vs derived deadlines,
    the minimum-sample guard, breaker/draining/retired filtering;
(c) failover correctness on a live cluster — a seeded mid-solve kill must
    produce the replica's bit-identical (1e-12) answer with
    ``degraded=False``, and a hedged duplicate must settle exactly once;
(d) zero-downtime operations — drain/undrain under traffic, rolling
    restart with zero crash-path deaths, supervisor planned recycling via
    ``max_requests_per_incarnation``, ``probe_timeout`` plumbing, the
    admission draining guard and the extended ``/healthz`` payload.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import WorkerUnavailableError
from repro.linalg import random_matrix_with_condition_number, random_rhs
from repro.serving import (
    AdmissionController,
    ChaosSpec,
    CircuitBreaker,
    ClusterEngine,
    HashRing,
    HedgePolicy,
    select_replica,
)
from repro.utils import matrix_fingerprint


# ---------------------------------------------------------------------- #
# helpers (mirrors test_serving_resilience.py)
# ---------------------------------------------------------------------- #
def _spd_system(n, kappa, seed):
    matrix = random_matrix_with_condition_number(n, kappa, rng=seed)
    return matrix, random_rhs(n, rng=seed + 1000)


def _wait_until(predicate, timeout: float = 15.0, message: str = "timeout"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(message)


def _replica_order(matrix, num_workers: int = 2) -> list[str]:
    """Predict the replica walk a fresh cluster's ring will produce."""
    ring = HashRing([f"worker-{i}" for i in range(num_workers)])
    return ring.route_replicas(matrix_fingerprint(matrix), num_workers)


# ---------------------------------------------------------------------- #
# (a) ring replica walks and draining
# ---------------------------------------------------------------------- #
class TestRouteReplicas:
    def test_replicas_are_distinct_and_lead_with_the_owner(self):
        ring = HashRing([f"w{i}" for i in range(5)])
        for key in ("alpha", "beta", "gamma", "delta"):
            replicas = ring.route_replicas(key, 3)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas[0] == ring.route(key)

    def test_n_larger_than_ring_returns_every_worker_once(self):
        ring = HashRing(["a", "b", "c"])
        assert sorted(ring.route_replicas("key", 10)) == ["a", "b", "c"]

    def test_n_below_one_is_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="replica count"):
            ring.route_replicas("key", 0)

    def test_empty_ring_raises_retriable_unavailable(self):
        ring = HashRing([])
        with pytest.raises(WorkerUnavailableError):
            ring.route_replicas("key", 1)
        with pytest.raises(WorkerUnavailableError):
            ring.route("key")

    def test_single_worker_ring_serves_every_replica_request(self):
        ring = HashRing(["solo"])
        assert ring.route_replicas("key", 1) == ["solo"]
        assert ring.route_replicas("key", 4) == ["solo"]
        assert ring.arc_shares() == {"solo": 1.0}

    def test_draining_worker_is_skipped_but_keeps_its_arcs(self):
        ring = HashRing(["a", "b", "c"])
        keys = ("k1", "k2", "k3", "k4", "k5")
        before = {key: ring.route_replicas(key, 2) for key in keys}
        victim = before["k1"][0]
        assert ring.set_draining(victim) is True
        assert ring.is_draining(victim)
        assert ring.draining == [victim]
        for key in keys:
            assert victim not in ring.route_replicas(key, 2)
        # undrain restores the exact pre-drain placement: the arcs never
        # moved, the walk just stopped skipping them.
        assert ring.set_draining(victim, False) is True
        assert {key: ring.route_replicas(key, 2) for key in keys} == before

    def test_fully_draining_ring_raises_unavailable(self):
        ring = HashRing(["a", "b"])
        ring.set_draining("a")
        ring.set_draining("b")
        with pytest.raises(WorkerUnavailableError, match="draining"):
            ring.route_replicas("key", 1)

    def test_set_draining_is_idempotent_and_ignores_unknown_ids(self):
        ring = HashRing(["a"])
        assert ring.set_draining("ghost") is False
        assert ring.set_draining("a") is True
        assert ring.set_draining("a") is False       # already draining
        assert ring.stats()["draining"] == ["a"]
        ring.remove_worker("a")
        assert ring.draining == []

    def test_replica_sets_move_minimally_on_worker_loss(self):
        ring = HashRing(["a", "b", "c", "d"])
        keys = [f"key-{i}" for i in range(64)]
        before = {key: ring.route_replicas(key, 2) for key in keys}
        ring.remove_worker("d")
        for key in keys:
            after = ring.route_replicas(key, 2)
            assert "d" not in after
            # only keys that had d in their replica set may re-walk
            if "d" not in before[key]:
                assert after == before[key]


# ---------------------------------------------------------------------- #
# (b) hedge policy and replica selection
# ---------------------------------------------------------------------- #
class TestHedgePolicy:
    def test_explicit_deadline_wins_without_samples(self):
        policy = HedgePolicy(hedge_after=0.25)
        assert policy.deadline({"count": 0, "p99": 0.0}) == 0.25
        assert policy.deadline(None) == 0.25

    def test_derived_deadline_needs_a_latency_population(self):
        policy = HedgePolicy(min_samples=64)
        assert policy.deadline({"count": 63, "p99": 0.5}) is None
        assert policy.deadline({"count": 64, "p99": 0.5}) == \
            pytest.approx(1.5)                       # 3.0 * p99

    def test_derived_deadline_is_floored(self):
        policy = HedgePolicy(min_samples=1, min_hedge=0.02)
        assert policy.deadline({"count": 10, "p99": 0.001}) == 0.02
        assert policy.deadline({"count": 10, "p99": 0.0}) is None

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="hedge_after"):
            HedgePolicy(hedge_after=0.0)
        with pytest.raises(ValueError, match="p99_multiplier"):
            HedgePolicy(p99_multiplier=0.0)


class TestSelectReplica:
    def test_first_eligible_candidate_wins(self):
        assert select_replica(["a", "b", "c"]) == "a"
        assert select_replica(["a", "b", "c"], exclude=("a",)) == "b"
        assert select_replica(["a", "b"], draining={"a"}, retired={"b"}) \
            is None
        assert select_replica([]) is None

    def test_open_breaker_diverts_to_the_next_replica(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure()
        assert select_replica(["a", "b"], breakers={"a": breaker}) == "b"
        # a closed breaker (or no breaker at all) keeps the primary
        assert select_replica(["a", "b"], breakers={"b": breaker}) == "a"

    def test_half_open_probe_slot_is_claimed_lazily(self):
        class FakeClock:
            now = 100.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now += 2.0                             # half-open now
        assert select_replica(["a", "b"], breakers={"a": breaker}) == "a"
        # the probe slot is spent: the next selection fails over
        assert select_replica(["a", "b"], breakers={"a": breaker}) == "b"


# ---------------------------------------------------------------------- #
# admission draining guard
# ---------------------------------------------------------------------- #
class TestAdmissionDraining:
    def test_draining_worker_sheds_retriably(self):
        gate = AdmissionController(queue_limit=4)
        gate.admit("w", 0)
        with pytest.raises(WorkerUnavailableError, match="draining"):
            gate.admit("w", 0, draining=True)
        stats = gate.stats()
        assert stats["admitted"] == 1
        assert stats["shed_draining"] == 1
        assert stats["shed_total"] == 1


# ---------------------------------------------------------------------- #
# (c) failover correctness on a live cluster
# ---------------------------------------------------------------------- #
class TestFailoverCorrectness:
    def test_replica_failover_is_bit_identical_and_not_degraded(
            self, tmp_path):
        matrix, rhs = _spd_system(8, 4.0, 211)
        primary, replica = _replica_order(matrix)[:2]
        # incarnation 0, request 1: the primary dies mid-solve on the
        # *second* request it handles — after it has answered (and warmed
        # its replica through the shared store) once.
        chaos = ChaosSpec(crash_points=((0, 1),), workers=(primary,))
        with ClusterEngine(num_workers=2, replication_factor=2,
                           supervisor_interval=0.05, chaos=chaos,
                           hedging=False,
                           local_store_dir=str(tmp_path / "local"),
                           shared_store_dir=str(tmp_path / "shared")) \
                as cluster:
            reference = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                      backend="ideal", kappa=4.0)
            assert not reference.degraded
            _wait_until(lambda: cluster.worker_stats()[replica]
                        .get("warmed", 0) >= 1,
                        message="replica never warmed the synthesis")
            # request index 1 hits the crash point; the orphan is
            # redispatched straight to the warm replica.
            record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert not record.degraded
            np.testing.assert_allclose(record.x, reference.x,
                                       rtol=0.0, atol=1e-12)
            stats = cluster.stats(include_workers=False)
            assert stats["degraded"] == 0
            assert stats["failovers"] >= 1
            events = cluster.observability.events.events(kind="failover")
            assert events and events[-1]["worker_to"] == replica
            assert events[-1]["reason"] == "replica_redispatch"

    def test_hedged_duplicate_settles_exactly_once(self, tmp_path):
        matrix, rhs = _spd_system(8, 4.0, 223)
        primary, replica = _replica_order(matrix)[:2]
        # the primary stalls on every request for longer than the hedge
        # deadline: the hedge always fires and always wins.
        slow = ChaosSpec(slow_rate=1.0, slow_seconds=1.5, workers=(primary,))
        with ClusterEngine(num_workers=2, replication_factor=2,
                           supervisor_interval=0.2, chaos=slow,
                           hedge_after=0.1,
                           local_store_dir=str(tmp_path / "local"),
                           shared_store_dir=str(tmp_path / "shared")) \
                as cluster:
            assert cluster.hedge_deadline() == 0.1
            future = cluster.submit(matrix, rhs, epsilon_l=1e-2,
                                    backend="ideal", kappa=4.0)
            record = future.result(timeout=30.0)
            assert not record.degraded
            assert record.scaled_residual < 1e-2
            assert future.worker_id == replica       # the hedge won
            stats = cluster.stats(include_workers=False)
            assert stats["hedged"] == 1
            assert stats["hedge_wins"] == 1
            events = cluster.observability.events
            assert events.events(kind="hedge_dispatch")
            wins = events.events(kind="hedge_win")
            assert wins and wins[-1]["worker_hedge"] == replica
            # exactly-once settlement: the loser's late answer (due at
            # ~1.5 s) must not resurrect the entry, double-count the
            # completion or corrupt the depth accounting.
            time.sleep(2.0)                          # let the loser answer
            stats = cluster.stats(include_workers=False)
            assert stats["submitted"] == 1
            assert stats["completed"] == 1
            assert stats["inflight"] == 0
            assert all(depth == 0
                       for depth in stats["queue_depths"].values())


# ---------------------------------------------------------------------- #
# (d) zero-downtime operations
# ---------------------------------------------------------------------- #
class TestZeroDowntimeOps:
    def test_drain_hands_traffic_to_replicas_and_undrain_restores(self):
        systems = [_spd_system(8, 4.0, seed) for seed in (301, 303, 305)]
        with ClusterEngine(num_workers=3, supervisor_interval=0.2,
                           hedging=False) as cluster:
            victim = cluster.route(systems[0][0])
            baseline = cluster._ring.arc_shares()
            assert cluster.drain(victim, timeout=10.0) is True
            assert cluster.healthz()["draining"][victim] is True
            for matrix, rhs in systems:
                future = cluster.submit(matrix, rhs, epsilon_l=1e-2,
                                        backend="ideal", kappa=4.0)
                record = future.result(timeout=30.0)
                assert not record.degraded
                assert future.worker_id != victim
            assert cluster.undrain(victim) is True
            assert cluster._ring.arc_shares() == baseline
            assert cluster.route(systems[0][0]) == victim
            events = cluster.observability.events
            assert events.events(kind="worker_drain")
            assert events.events(kind="worker_drain_complete")
            assert events.events(kind="worker_undrain")

    def test_rolling_restart_serves_throughout_with_zero_deaths(
            self, tmp_path):
        matrix, rhs = _spd_system(8, 4.0, 311)
        with ClusterEngine(num_workers=2, replication_factor=2,
                           supervisor_interval=0.1, hedging=False,
                           local_store_dir=str(tmp_path / "local"),
                           shared_store_dir=str(tmp_path / "shared")) \
                as cluster:
            reference = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                      backend="ideal", kappa=4.0)
            results = cluster.rolling_restart(timeout=20.0)
            assert results == {"worker-0": True, "worker-1": True}
            stats = cluster.stats(include_workers=False)
            assert stats["worker_deaths"] == 0       # planned, not crashes
            assert all(count == 1 for count in stats["restarts"].values())
            assert stats["ring"]["draining"] == []
            assert cluster.healthz()["draining"] == {"worker-0": False,
                                                     "worker-1": False}
            recycles = cluster.observability.events.events(
                kind="worker_recycle")
            assert len(recycles) == 2
            assert all(event["respawned"] for event in recycles)
            # the respawned incarnations warm-restored from the store:
            # the answer is the same bits, not just the same tolerance.
            healed = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert not healed.degraded
            np.testing.assert_allclose(healed.x, reference.x,
                                       rtol=0.0, atol=1e-12)

    def test_supervisor_recycles_after_max_requests_per_incarnation(
            self, tmp_path):
        matrix, rhs = _spd_system(8, 4.0, 313)
        with ClusterEngine(num_workers=2, replication_factor=2,
                           supervisor_interval=0.05, hedging=False,
                           max_requests_per_incarnation=3,
                           local_store_dir=str(tmp_path / "local"),
                           shared_store_dir=str(tmp_path / "shared")) \
                as cluster:
            owner = cluster.route(matrix)
            for _ in range(3):
                record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                       backend="ideal", kappa=4.0)
                assert not record.degraded
            _wait_until(lambda: cluster.stats(include_workers=False)
                        ["restarts"].get(owner, 0) >= 1,
                        message="planned recycle never happened")
            stats = cluster.stats(include_workers=False)
            assert stats["worker_deaths"] == 0       # a recycle, not a crash
            assert stats["supervisor"]["recycles"] >= 1
            # the new incarnation starts with a fresh dispatch budget
            _wait_until(lambda: cluster.stats(include_workers=False)
                        ["incarnation_dispatched"][owner] == 0,
                        message="dispatch counter never reset")
            healed = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert not healed.degraded

    def test_probe_timeout_is_plumbed_to_the_supervisor(self):
        with ClusterEngine(num_workers=1, supervisor_interval=5.0,
                           hedging=False,
                           probe_timeout=0.123) as cluster:
            assert cluster.probe_timeout == 0.123
            stats = cluster.stats(include_workers=False)
            assert stats["supervisor"]["probe_timeout"] == 0.123

    def test_healthz_reports_the_replication_surface(self):
        with ClusterEngine(num_workers=2, replication_factor=2,
                           supervisor_interval=5.0,
                           hedge_after=0.5) as cluster:
            payload = cluster.healthz()
            assert payload["replication_factor"] == 2
            assert payload["draining"] == {"worker-0": False,
                                           "worker-1": False}
            assert payload["hedge_deadline_s"] == 0.5
            assert payload["hedged"] == 0
            assert payload["hedge_wins"] == 0
            assert payload["failovers"] == 0
            # derived mode on a cold cluster never hedges (sample guard)
        with ClusterEngine(num_workers=2, replication_factor=2,
                           supervisor_interval=5.0) as cold:
            assert cold.healthz()["hedge_deadline_s"] is None
