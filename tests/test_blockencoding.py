"""Tests for every block-encoding construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockencoding import (
    CirculantBlockEncoding,
    DilationBlockEncoding,
    FABLEBlockEncoding,
    LCUBlockEncoding,
    TridiagonalBlockEncoding,
    block_encoding_error,
    build_block_encoding,
    decrement_circuit,
    increment_circuit,
    verify_block_encoding,
)
from repro.exceptions import BlockEncodingError
from repro.linalg import poisson_1d_matrix, random_matrix_with_condition_number
from repro.quantum import circuit_unitary


class TestDilation:
    def test_roundtrip_random(self, rng):
        a = rng.standard_normal((8, 8))
        be = DilationBlockEncoding(a)
        verify_block_encoding(be)
        assert be.num_ancillas == 1
        assert be.alpha == pytest.approx(np.linalg.norm(a, 2))

    def test_complex_matrix(self, rng):
        a = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        verify_block_encoding(DilationBlockEncoding(a))

    def test_spectral_margin(self, rng):
        a = rng.standard_normal((4, 4))
        be = DilationBlockEncoding(a, spectral_margin=1.5)
        verify_block_encoding(be)
        assert be.alpha == pytest.approx(1.5 * np.linalg.norm(a, 2))

    def test_margin_below_one_rejected(self, rng):
        with pytest.raises(BlockEncodingError):
            DilationBlockEncoding(rng.standard_normal((4, 4)), spectral_margin=0.5)

    def test_zero_matrix_rejected(self):
        with pytest.raises(BlockEncodingError):
            DilationBlockEncoding(np.zeros((4, 4)))

    def test_circuit_matches_unitary(self, rng):
        be = DilationBlockEncoding(rng.standard_normal((4, 4)))
        np.testing.assert_allclose(circuit_unitary(be.circuit()), be.unitary(), atol=1e-12)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_property_block_is_contraction(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((4, 4))
        be = DilationBlockEncoding(a)
        block = be.encoded_block()
        assert np.linalg.norm(block, 2) <= 1.0 + 1e-10


class TestLCU:
    def test_roundtrip_random(self, rng):
        a = rng.standard_normal((4, 4))
        be = LCUBlockEncoding(a)
        verify_block_encoding(be)
        assert be.alpha == pytest.approx(sum(abs(t.coefficient) for t in be.terms))

    def test_circuit_and_fast_unitary_agree(self, rng):
        a = rng.standard_normal((4, 4))
        be = LCUBlockEncoding(a)
        np.testing.assert_allclose(circuit_unitary(be.circuit()), be.unitary(), atol=1e-10)

    def test_complex_coefficients_handled(self, rng):
        a = rng.standard_normal((4, 4))
        a[0, 1] += 0.7           # break symmetry so Y terms appear
        verify_block_encoding(LCUBlockEncoding(a))

    def test_alpha_at_least_spectral_norm(self, rng):
        a = rng.standard_normal((8, 8))
        be = LCUBlockEncoding(a)
        assert be.alpha >= np.linalg.norm(a, 2) - 1e-10

    def test_structured_matrix_few_ancillas(self):
        be = LCUBlockEncoding(poisson_1d_matrix(8, scaled=False))
        assert be.num_ancillas <= 4          # few Pauli terms -> small PREPARE register
        verify_block_encoding(be)

    def test_empty_decomposition_rejected(self):
        with pytest.raises(BlockEncodingError):
            LCUBlockEncoding(np.zeros((4, 4)))


class TestFABLE:
    def test_roundtrip_random(self, rng):
        a = rng.standard_normal((4, 4))
        be = FABLEBlockEncoding(a)
        verify_block_encoding(be)
        assert be.num_ancillas == 1 + 2     # flag + row register
        assert be.alpha == pytest.approx(4 * np.max(np.abs(a)))

    def test_decomposed_oracle(self, rng):
        a = rng.standard_normal((2, 2))
        dense = FABLEBlockEncoding(a, decompose=False)
        decomposed = FABLEBlockEncoding(a, decompose=True)
        np.testing.assert_allclose(circuit_unitary(dense.circuit()),
                                   circuit_unitary(decomposed.circuit()), atol=1e-10)

    def test_compression_introduces_bounded_error(self, rng):
        a = rng.standard_normal((8, 8))
        a[np.abs(a) < 0.3] *= 1e-4           # many negligible entries
        exact = FABLEBlockEncoding(a)
        compressed = FABLEBlockEncoding(a, compression_threshold=1e-3)
        assert block_encoding_error(exact) < 1e-10
        error = block_encoding_error(compressed)
        assert 0 < error < 1e-2 * np.max(np.abs(a)) * 8

    def test_complex_rejected(self, rng):
        with pytest.raises(BlockEncodingError):
            FABLEBlockEncoding(rng.standard_normal((4, 4)) * 1j)

    def test_invalid_threshold(self, rng):
        with pytest.raises(BlockEncodingError):
            FABLEBlockEncoding(rng.standard_normal((4, 4)), compression_threshold=1.5)


class TestShiftCircuits:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_increment_is_cyclic_shift(self, n):
        unitary = circuit_unitary(increment_circuit(n))
        dim = 2**n
        expected = np.roll(np.eye(dim), 1, axis=0)
        np.testing.assert_allclose(unitary, expected, atol=1e-12)

    def test_decrement_is_inverse(self):
        n = 3
        inc = circuit_unitary(increment_circuit(n))
        dec = circuit_unitary(decrement_circuit(n))
        np.testing.assert_allclose(inc @ dec, np.eye(2**n), atol=1e-12)


class TestBandedEncodings:
    def test_circulant_encodes_periodic_matrix(self):
        be = CirculantBlockEncoding(3)
        verify_block_encoding(be)
        assert be.alpha == pytest.approx(4.0)
        # corners are populated (periodic boundary)
        assert be.matrix_encoded[0, -1] == pytest.approx(-1.0)

    def test_circulant_positive_offdiagonal(self):
        be = CirculantBlockEncoding(2, diagonal=2.0, off_diagonal=0.5)
        verify_block_encoding(be)

    def test_tridiagonal_matches_poisson_stencil(self):
        be = TridiagonalBlockEncoding(3)
        verify_block_encoding(be)
        np.testing.assert_allclose(be.matrix_encoded, poisson_1d_matrix(8, scaled=False),
                                   atol=1e-12)

    def test_tridiagonal_scale_only_changes_alpha(self):
        plain = TridiagonalBlockEncoding(2)
        scaled = TridiagonalBlockEncoding(2, scale=81.0)
        assert scaled.alpha == pytest.approx(81.0 * plain.alpha)
        verify_block_encoding(scaled)


class TestFactory:
    def test_known_methods(self, rng):
        a = rng.standard_normal((4, 4))
        assert build_block_encoding(a, "dilation").name == "dilation"
        assert build_block_encoding(a, "lcu").name == "lcu"
        assert build_block_encoding(a, "fable").name == "fable"

    def test_tridiagonal_method(self):
        a = poisson_1d_matrix(8, scaled=False)
        be = build_block_encoding(a, "tridiagonal")
        assert be.name == "tridiagonal"
        verify_block_encoding(be)

    def test_tridiagonal_rejects_dense(self, rng):
        with pytest.raises(BlockEncodingError):
            build_block_encoding(rng.standard_normal((4, 4)), "tridiagonal")

    def test_unknown_method(self, rng):
        with pytest.raises(BlockEncodingError):
            build_block_encoding(rng.standard_normal((4, 4)), "magic")
