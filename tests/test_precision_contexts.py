"""Unit tests for repro.precision.contexts and simulate."""

import numpy as np
import pytest

from repro.precision import (
    DOUBLE,
    SINGLE,
    PrecisionContext,
    low_precision_matmul,
    low_precision_matvec,
    low_precision_residual,
    low_precision_sum,
)


class TestPrecisionContext:
    def test_defaults(self):
        ctx = PrecisionContext()
        assert ctx.working is DOUBLE and ctx.low is SINGLE
        assert ctx.residual_precision is DOUBLE

    def test_accepts_names(self):
        ctx = PrecisionContext(working="fp64", low="fp16", residual="fp64")
        assert ctx.low.name == "fp16"
        assert ctx.u == DOUBLE.unit_roundoff
        assert ctx.u_low == pytest.approx(2.0**-11)
        assert ctx.u_residual == DOUBLE.unit_roundoff

    def test_round_working_and_low(self, rng):
        ctx = PrecisionContext(working="fp64", low="fp16")
        x = rng.standard_normal(10)
        np.testing.assert_array_equal(ctx.round_working(x), x)
        assert np.max(np.abs(ctx.round_low(x) - x)) > 0

    def test_residual_of(self, rng):
        ctx = PrecisionContext()
        a = rng.standard_normal((5, 5))
        x = rng.standard_normal(5)
        b = rng.standard_normal(5)
        np.testing.assert_allclose(ctx.residual_of(a, x, b), b - a @ x)

    def test_describe_mentions_precisions(self):
        text = PrecisionContext(working="fp64", low="fp16", residual="fp64").describe()
        assert "fp64" in text and "fp16" in text


class TestLowPrecisionKernels:
    def test_matvec_error_scales_with_unit_roundoff(self, rng):
        a = rng.standard_normal((20, 20))
        x = rng.standard_normal(20)
        exact = a @ x
        err_fp32 = np.linalg.norm(low_precision_matvec(a, x, "fp32") - exact)
        err_fp16 = np.linalg.norm(low_precision_matvec(a, x, "fp16") - exact)
        assert err_fp32 < err_fp16
        assert err_fp16 < 1e-1 * np.linalg.norm(exact)

    def test_matmul_matches_exact_in_double(self, rng):
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))
        np.testing.assert_array_equal(low_precision_matmul(a, b, "fp64"), a @ b)

    def test_residual_zero_for_exact_solution(self, rng):
        a = np.eye(8)
        x = rng.standard_normal(8)
        res = low_precision_residual(a, x, x, "fp32")
        assert np.linalg.norm(res) <= 1e-6

    def test_sum_rounds_operands(self):
        out = low_precision_sum(np.array([1.0]), np.array([2.0**-20]), "fp16")
        assert out[0] == 1.0  # the small term is lost in fp16
