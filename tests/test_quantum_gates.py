"""Unit tests for repro.quantum.gates."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.quantum.gates import Gate, controlled_matrix, standard_gate_matrix


class TestStandardGateMatrices:
    @pytest.mark.parametrize("name", ["i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"])
    def test_single_qubit_gates_are_unitary(self, name):
        u = standard_gate_matrix(name)
        np.testing.assert_allclose(u @ u.conj().T, np.eye(2), atol=1e-12)

    def test_swap_is_unitary_and_involutive(self):
        u = standard_gate_matrix("swap")
        np.testing.assert_allclose(u @ u, np.eye(4), atol=1e-12)

    def test_aliases(self):
        np.testing.assert_array_equal(standard_gate_matrix("cnot"),
                                      standard_gate_matrix("x"))
        np.testing.assert_array_equal(standard_gate_matrix("hadamard"),
                                      standard_gate_matrix("h"))

    def test_pauli_algebra(self):
        x = standard_gate_matrix("x")
        y = standard_gate_matrix("y")
        z = standard_gate_matrix("z")
        np.testing.assert_allclose(x @ y, 1j * z, atol=1e-12)

    def test_rotation_gates(self):
        np.testing.assert_allclose(standard_gate_matrix("rx", (0.0,)), np.eye(2), atol=1e-12)
        np.testing.assert_allclose(standard_gate_matrix("ry", (np.pi,)),
                                   np.array([[0, -1], [1, 0]]), atol=1e-12)
        rz = standard_gate_matrix("rz", (np.pi / 2,))
        np.testing.assert_allclose(np.abs(np.diag(rz)), [1, 1], atol=1e-12)

    def test_s_equals_rz_up_to_phase(self):
        s = standard_gate_matrix("s")
        rz = standard_gate_matrix("rz", (np.pi / 2,))
        phase = s[0, 0] / rz[0, 0]
        np.testing.assert_allclose(s, phase * rz, atol=1e-12)

    def test_u_gate_general(self):
        u = standard_gate_matrix("u", (0.3, 0.5, 0.7))
        np.testing.assert_allclose(u @ u.conj().T, np.eye(2), atol=1e-12)

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError):
            standard_gate_matrix("foobar")

    def test_parameters_rejected_for_fixed_gates(self):
        with pytest.raises(ValueError):
            standard_gate_matrix("x", (0.1,))


class TestControlledMatrix:
    def test_cnot(self):
        cx = controlled_matrix(standard_gate_matrix("x"), 1)
        expected = np.eye(4, dtype=complex)
        expected[2:, 2:] = standard_gate_matrix("x")
        np.testing.assert_array_equal(cx, expected)

    def test_zero_control(self):
        cx0 = controlled_matrix(standard_gate_matrix("x"), 1, control_states=[0])
        expected = np.eye(4, dtype=complex)
        expected[:2, :2] = standard_gate_matrix("x")
        np.testing.assert_array_equal(cx0, expected)

    def test_two_controls_targets_last_block(self):
        ccz = controlled_matrix(standard_gate_matrix("z"), 2)
        assert ccz[7, 7] == -1
        assert np.all(np.diag(ccz)[:7] == 1)

    def test_control_states_length_check(self):
        with pytest.raises(DimensionError):
            controlled_matrix(np.eye(2), 2, control_states=[1])


class TestGateDataclass:
    def test_matrix_dimension_validation(self):
        with pytest.raises(DimensionError):
            Gate(name="bad", targets=(0, 1), matrix=np.eye(2))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(DimensionError):
            Gate(name="bad", targets=(0,), matrix=np.eye(2), controls=(0,))

    def test_default_control_states(self):
        g = Gate(name="x", targets=(1,), matrix=standard_gate_matrix("x"), controls=(0, 2))
        assert g.control_states == (1, 1)
        assert g.qubits == (0, 2, 1)

    def test_expanded_matrix_matches_controlled(self):
        g = Gate(name="x", targets=(1,), matrix=standard_gate_matrix("x"), controls=(0,))
        np.testing.assert_array_equal(g.expanded_matrix(),
                                      controlled_matrix(standard_gate_matrix("x"), 1))

    def test_dagger_inverts(self):
        g = Gate(name="ry", targets=(0,), matrix=standard_gate_matrix("ry", (0.7,)),
                 params=(0.7,))
        np.testing.assert_allclose(g.dagger().matrix @ g.matrix, np.eye(2), atol=1e-12)
        assert g.dagger().params == (-0.7,)

    def test_dagger_name_mapping(self):
        t = Gate(name="t", targets=(0,), matrix=standard_gate_matrix("t"))
        assert t.dagger().name == "tdg"
        x = Gate(name="x", targets=(0,), matrix=standard_gate_matrix("x"))
        assert x.dagger().name == "x"
        custom = Gate(name="block", targets=(0,), matrix=np.eye(2))
        assert custom.dagger().name == "block†"
        assert custom.dagger().dagger().name == "block"

    def test_validate_unitary(self):
        good = Gate(name="h", targets=(0,), matrix=standard_gate_matrix("h"))
        good.validate_unitary()
        bad = Gate(name="bad", targets=(0,), matrix=np.array([[1, 0], [0, 2]], dtype=complex))
        with pytest.raises(DimensionError):
            bad.validate_unitary()
