"""Serving-tier tests: routing, admission, deadlines, tiered store, cluster.

The tier's contract mirrors the single-process serving layer's — shortcuts
may change costs, never answers — plus the distribution-specific clauses:

(a) routing is deterministic across ring instances and interpreter runs,
    and removing a worker moves only the keys that worker owned;
(b) admission control sheds with explicit retriable errors (queue watermark,
    tenant quota with an exact ``retry_after``) and never silently drops;
(c) per-request deadlines surface as :class:`SolveTimeoutError` before any
    solve work is spent on the expired request;
(d) the tiered store hierarchy promotes shared-directory hits into the
    node-local level and degrades to read-only (not a crash) on
    ``PermissionError``;
(e) a 2-worker cluster returns bit-identical answers to a single-process
    solver, survives a worker death with only retriable failures, and the
    HTTP surface maps every outcome to the documented status codes.
"""

from __future__ import annotations

import asyncio
import gc
import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import QSVTLinearSolver
from repro.engine import CompiledSolverCache, SynthesisStore, TieredSynthesisStore
from repro.engine import store as store_module
from repro.engine.aio import AsyncSolveEngine
from repro.exceptions import (
    QueueFullError,
    QuotaExceededError,
    SolveTimeoutError,
    WorkerUnavailableError,
)
from repro.linalg import random_matrix_with_condition_number, random_rhs
from repro.serving import (
    AdmissionController,
    ClusterEngine,
    HashRing,
    ServingHTTPServer,
    TokenBucket,
)
from repro.utils import LatencyHistogram, matrix_fingerprint


def _fingerprints(count: int) -> list[str]:
    return [f"fingerprint-{index:04d}" for index in range(count)]


# ---------------------------------------------------------------------- #
# (a) consistent-hash routing
# ---------------------------------------------------------------------- #
class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        workers = ["worker-0", "worker-1", "worker-2"]
        first = HashRing(workers)
        second = HashRing(list(reversed(workers)))  # insertion order irrelevant
        for fingerprint in _fingerprints(200):
            assert first.route(fingerprint) == second.route(fingerprint)

    def test_same_fingerprint_always_same_worker(self):
        ring = HashRing(["worker-0", "worker-1"])
        owners = {ring.route("abc") for _ in range(50)}
        assert len(owners) == 1

    def test_removal_moves_only_the_dead_workers_keys(self):
        ring = HashRing([f"worker-{i}" for i in range(4)])
        keys = _fingerprints(1000)
        before = {key: ring.route(key) for key in keys}
        victim = "worker-2"
        assert ring.remove_worker(victim)
        after = {key: ring.route(key) for key in keys}
        moved = {key for key in keys if before[key] != after[key]}
        # every moved key belonged to the victim; nobody else's keys moved
        assert moved == {key for key in keys if before[key] == victim}
        # and the victim owned roughly 1/4 of the space, not (W-1)/W
        assert len(moved) < len(keys) / 2

    def test_arc_shares_sum_to_one_and_are_balanced(self):
        ring = HashRing([f"worker-{i}" for i in range(4)], vnodes=128)
        shares = ring.arc_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert max(shares.values()) < 2.5 * min(shares.values())

    def test_empty_ring_rejects_with_worker_unavailable(self):
        ring = HashRing()
        with pytest.raises(WorkerUnavailableError):
            ring.route("anything")

    def test_membership_bookkeeping(self):
        ring = HashRing(["worker-0"])
        with pytest.raises(ValueError):
            ring.add_worker("worker-0")
        assert not ring.remove_worker("never-added")
        assert "worker-0" in ring and len(ring) == 1
        assert ring.stats()["points"] == ring.vnodes


# ---------------------------------------------------------------------- #
# (b) admission control
# ---------------------------------------------------------------------- #
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()           # burst exhausted
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)                        # one token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestAdmissionController:
    def test_queue_watermark_sheds_with_queue_full(self):
        controller = AdmissionController(queue_limit=2)
        controller.admit("worker-0", 0)
        controller.admit("worker-0", 1)
        with pytest.raises(QueueFullError) as excinfo:
            controller.admit("worker-0", 2)
        assert excinfo.value.retriable
        stats = controller.stats()
        assert stats["admitted"] == 2 and stats["shed_queue_full"] == 1

    def test_tenant_quota_sheds_with_retry_after(self):
        clock = FakeClock()
        controller = AdmissionController(queue_limit=None, tenant_rate=1.0,
                                         tenant_burst=1.0, clock=clock)
        controller.admit("worker-0", 0, tenant="acme")
        with pytest.raises(QuotaExceededError) as excinfo:
            controller.admit("worker-0", 0, tenant="acme")
        assert excinfo.value.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        controller.admit("worker-0", 0, tenant="acme")  # budget refilled
        # tenants are isolated: a fresh tenant still has its full burst
        controller.admit("worker-0", 0, tenant="other")
        assert controller.stats()["tenants"] == 2

    def test_anonymous_traffic_bypasses_quota_not_watermark(self):
        controller = AdmissionController(queue_limit=1, tenant_rate=1.0,
                                         tenant_burst=1.0, clock=FakeClock())
        for _ in range(5):
            controller.admit("worker-0", 0)        # no tenant -> no quota
        with pytest.raises(QueueFullError):
            controller.admit("worker-0", 1)


# ---------------------------------------------------------------------- #
# (c) deadlines and the shared latency histogram
# ---------------------------------------------------------------------- #
class TestLatencyHistogram:
    def test_empty_summary_is_zeroes(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0 and summary["p99"] == 0.0

    def test_percentiles_and_lifetime_counters(self):
        histogram = LatencyHistogram(window=100)
        for value in range(1, 101):
            histogram.record(value / 1000.0)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(0.0505, abs=1e-3)
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert summary["max"] == pytest.approx(0.1)

    def test_window_bounds_memory_but_not_lifetime_stats(self):
        histogram = LatencyHistogram(window=4)
        for value in (1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 8          # lifetime
        assert summary["p99"] == pytest.approx(0.5)  # window sees only tail
        assert summary["max"] == pytest.approx(1.0)  # lifetime


class TestEngineDeadlines:
    def test_expired_deadline_raises_before_solving(self):
        matrix = random_matrix_with_condition_number(4, 3.0, rng=0)
        rhs = random_rhs(4, rng=1)

        async def run():
            async with AsyncSolveEngine() as engine:
                with pytest.raises(SolveTimeoutError) as excinfo:
                    await engine.solve(matrix, rhs, epsilon_l=1e-2,
                                       backend="ideal", kappa=3.0,
                                       deadline=0.0)
                assert excinfo.value.late_by >= 0.0
                return engine.stats()

        stats = asyncio.run(run())
        assert stats["timeouts"] == 1
        assert stats["batches"] == 0          # no sweep ran for it

    def test_expired_member_does_not_fail_its_groupmates(self):
        matrix = random_matrix_with_condition_number(4, 3.0, rng=0)
        rhs = random_rhs(4, rng=1)

        async def run():
            async with AsyncSolveEngine(coalesce_window=0.01) as engine:
                doomed = asyncio.ensure_future(
                    engine.solve(matrix, rhs, epsilon_l=1e-2,
                                 backend="ideal", kappa=3.0, deadline=0.0))
                alive = asyncio.ensure_future(
                    engine.solve(matrix, 2 * rhs, epsilon_l=1e-2,
                                 backend="ideal", kappa=3.0))
                results = await asyncio.gather(doomed, alive,
                                               return_exceptions=True)
                return results, engine.stats()

        (doomed, alive), stats = asyncio.run(run())
        assert isinstance(doomed, SolveTimeoutError)
        assert alive.scaled_residual < 1e-2
        assert stats["timeouts"] == 1 and stats["batches"] == 1

    def test_negative_deadline_is_rejected(self):
        async def run():
            async with AsyncSolveEngine() as engine:
                with pytest.raises(ValueError):
                    await engine.solve(np.eye(4), np.ones(4), deadline=-1.0)

        asyncio.run(run())

    def test_stats_expose_latency_percentiles(self):
        matrix = random_matrix_with_condition_number(4, 3.0, rng=0)
        rhs = random_rhs(4, rng=1)

        async def run():
            async with AsyncSolveEngine() as engine:
                for _ in range(3):
                    await engine.solve(matrix, rhs, epsilon_l=1e-2,
                                       backend="ideal", kappa=3.0)
                return engine.stats()

        latency = asyncio.run(run())["latency"]
        assert latency["count"] == 3
        assert 0.0 < latency["p50"] <= latency["p99"]


# ---------------------------------------------------------------------- #
# (d) tiered store hierarchy
# ---------------------------------------------------------------------- #
class TestTieredStore:
    def _populate(self, directory, matrix):
        store = SynthesisStore(directory)
        CompiledSolverCache(store=store).solver(matrix, epsilon_l=5e-2,
                                                backend="ideal")
        return store

    def test_shared_hit_is_promoted_into_local(self, tmp_path):
        matrix = random_matrix_with_condition_number(8, 4.0, rng=42)
        self._populate(tmp_path / "shared", matrix)
        tiered = TieredSynthesisStore(tmp_path / "local", tmp_path / "shared")

        cache = CompiledSolverCache(store=tiered)
        cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
        stats = tiered.stats()
        assert stats["shared_hits"] == 1 and stats["promotions"] == 1
        assert len(SynthesisStore(tmp_path / "local")) == 1

        # a fresh hierarchy over the same directories now hits locally
        rewarmed = TieredSynthesisStore(tmp_path / "local", tmp_path / "shared")
        CompiledSolverCache(store=rewarmed).solver(matrix, epsilon_l=5e-2,
                                                   backend="ideal")
        assert rewarmed.stats()["local_hits"] == 1
        assert rewarmed.stats()["shared_hits"] == 0

    def test_denied_shared_read_is_a_miss_not_a_crash(self, tmp_path,
                                                      monkeypatch):
        matrix = random_matrix_with_condition_number(8, 4.0, rng=42)
        shared = self._populate(tmp_path / "shared", matrix)
        tiered = TieredSynthesisStore(tmp_path / "local", shared)

        def deny(cache_key, **backend_options):
            raise PermissionError("shared store is unreadable")

        # tests run as root, so an actual chmod would not deny anything —
        # inject the PermissionError at the shared level instead.
        monkeypatch.setattr(shared, "load", deny)
        cache = CompiledSolverCache(store=tiered)
        solver = cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
        assert solver is not None
        assert cache.stats()["compiles"] == 1      # fell back to compiling
        assert tiered.stats()["shared_denied"] == 1

    def test_readonly_shared_save_latches_instead_of_crashing(self, tmp_path,
                                                              monkeypatch):
        matrix = random_matrix_with_condition_number(8, 4.0, rng=42)
        rhs = random_rhs(8, rng=1)
        shared = SynthesisStore(tmp_path / "shared")

        calls = {"count": 0}

        def deny(path, data):
            calls["count"] += 1
            raise PermissionError("read-only mount")

        monkeypatch.setattr(store_module, "atomic_write", deny)
        solver = QSVTLinearSolver(matrix, epsilon_l=5e-2, backend="ideal")
        solver.solve(rhs)
        key = (matrix_fingerprint(matrix), 5e-2, "ideal", None, ())
        assert shared.save(key, solver) is False
        assert shared.stats()["readonly"] is True
        # the latch skips the doomed serialisation on every later save
        assert shared.save(key, solver) is False
        assert calls["count"] == 1

    def test_tiered_save_survives_readonly_shared_level(self, tmp_path):
        matrix = random_matrix_with_condition_number(8, 4.0, rng=42)
        shared = SynthesisStore(tmp_path / "shared")
        shared._readonly = True                    # as if latched earlier
        tiered = TieredSynthesisStore(tmp_path / "local", shared)
        cache = CompiledSolverCache(store=tiered)
        cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
        assert len(SynthesisStore(tmp_path / "local")) == 1   # local write ok
        assert len(shared) == 0                                # shared skipped


# ---------------------------------------------------------------------- #
# (e) end-to-end cluster + HTTP surface
# ---------------------------------------------------------------------- #
def _spd_system(n, kappa, seed):
    matrix = random_matrix_with_condition_number(n, kappa, rng=seed)
    return matrix, random_rhs(n, rng=seed + 1000)


class TestClusterEngine:
    def test_cluster_matches_single_process_to_1e_12(self, tmp_path):
        systems = [_spd_system(8, 4.0, seed) for seed in range(3)]
        with ClusterEngine(num_workers=2,
                           local_store_dir=str(tmp_path / "local"),
                           shared_store_dir=str(tmp_path / "shared")) as cluster:
            for matrix, rhs in systems:
                record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                       backend="ideal", kappa=4.0)
                reference = QSVTLinearSolver(matrix, epsilon_l=1e-2,
                                             backend="ideal",
                                             kappa=4.0).solve(rhs)
                np.testing.assert_allclose(record.x, reference.x,
                                           rtol=0.0, atol=1e-12)
                assert record.scaled_residual == pytest.approx(
                    reference.scaled_residual, abs=1e-12)
            stats = cluster.stats(include_workers=False)
            assert stats["submitted"] == 3 and stats["completed"] == 3
            assert stats["latency"]["count"] == 3

    def test_same_matrix_routes_to_one_sticky_worker(self):
        matrix, rhs = _spd_system(8, 4.0, 7)
        with ClusterEngine(num_workers=2) as cluster:
            owner = cluster.route(matrix)
            futures = [cluster.submit(matrix, rhs, epsilon_l=1e-2,
                                      backend="ideal", kappa=4.0)
                       for _ in range(6)]
            assert {future.worker_id for future in futures} == {owner}
            for future in futures:
                assert future.result().scaled_residual < 1e-2
            per_worker = cluster.worker_stats()
            assert per_worker[owner]["served"] == 6
            # coalescing happened: fewer sweeps than requests on the owner
            assert per_worker[owner]["batches"] < 6

    def test_queue_watermark_sheds_queue_full(self):
        matrix, rhs = _spd_system(8, 4.0, 11)
        with ClusterEngine(num_workers=1, queue_limit=1) as cluster:
            admitted = cluster.submit(matrix, rhs, epsilon_l=1e-2,
                                      backend="ideal", kappa=4.0)
            with pytest.raises(QueueFullError):
                cluster.submit(matrix, rhs, epsilon_l=1e-2,
                               backend="ideal", kappa=4.0)
            assert admitted.result().scaled_residual < 1e-2
            assert cluster.stats(
                include_workers=False)["admission"]["shed_queue_full"] == 1

    def test_tenant_quota_rejects_with_retry_after(self):
        matrix, rhs = _spd_system(8, 4.0, 13)
        with ClusterEngine(num_workers=1, tenant_rate=0.001,
                           tenant_burst=1.0) as cluster:
            first = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                  backend="ideal", kappa=4.0, tenant="acme")
            assert first.scaled_residual < 1e-2
            with pytest.raises(QuotaExceededError) as excinfo:
                cluster.submit(matrix, rhs, epsilon_l=1e-2,
                               backend="ideal", kappa=4.0, tenant="acme")
            assert excinfo.value.retry_after > 0.0
            # anonymous traffic is untouched by the tenant's exhaustion
            assert cluster.solve(matrix, rhs, epsilon_l=1e-2, backend="ideal",
                                 kappa=4.0).scaled_residual < 1e-2

    def test_worker_death_is_contained_and_retriable(self):
        # respawn=False pins PR 6's shrink-only contract; the self-healing
        # behaviour (fleet returns to full strength) lives in
        # test_serving_resilience.py.
        matrix, rhs = _spd_system(8, 4.0, 17)
        with ClusterEngine(num_workers=2, respawn=False,
                           degraded_fallback=False) as cluster:
            victim = cluster.route(matrix)
            cluster._workers[victim]["process"].terminate()
            # requests racing the death either complete or fail retriably —
            # never hang, never raise anything but WorkerUnavailableError.
            future = cluster.submit(matrix, rhs, epsilon_l=1e-2,
                                    backend="ideal", kappa=4.0)
            try:
                record = future.result(timeout=30.0)
                assert record.scaled_residual < 1e-2
            except WorkerUnavailableError:
                pass
            deadline = time.monotonic() + 10.0
            while victim in cluster.workers_alive:
                assert time.monotonic() < deadline, "death never detected"
                time.sleep(0.05)
            stats = cluster.stats(include_workers=False)
            assert stats["worker_deaths"] == 1
            assert stats["workers_alive"] == 1
            # the fingerprint re-homed onto the survivor and solves fine
            assert cluster.route(matrix) != victim
            record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert record.scaled_residual < 1e-2

    def test_deadline_crosses_the_process_boundary(self):
        matrix, rhs = _spd_system(8, 4.0, 19)
        with ClusterEngine(num_workers=1) as cluster:
            with pytest.raises(SolveTimeoutError):
                cluster.solve(matrix, rhs, epsilon_l=1e-2, backend="ideal",
                              kappa=4.0, deadline=0.0)
            # the engine is unharmed: the next request succeeds
            record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert record.scaled_residual < 1e-2

    def test_matrix_memo_evicts_when_the_array_dies(self):
        # the fingerprint memo must hold the matrix weakly: once the caller's
        # array is garbage-collected its entry is gone, so a recycled id()
        # can never resurrect a stale fingerprint (wrong-matrix answers).
        with ClusterEngine(num_workers=1) as cluster:
            matrix, rhs = _spd_system(8, 4.0, 37)
            record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert record.scaled_residual < 1e-2
            assert len(cluster._matrix_memo) == 1
            del matrix
            gc.collect()
            assert len(cluster._matrix_memo) == 0
            # and a different matrix (possibly reusing the id) solves right
            other, other_rhs = _spd_system(8, 4.0, 38)
            reference = QSVTLinearSolver(other, epsilon_l=1e-2,
                                         backend="ideal",
                                         kappa=4.0).solve(other_rhs)
            record = cluster.solve(other, other_rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            np.testing.assert_allclose(record.x, reference.x,
                                       rtol=0.0, atol=1e-12)

    def test_stats_probes_do_not_consume_admission_slots(self):
        # monitoring is control traffic: polling stats must neither occupy
        # queue_limit slots nor leak depth, even with the tightest limit.
        matrix, rhs = _spd_system(8, 4.0, 41)
        with ClusterEngine(num_workers=1, queue_limit=1) as cluster:
            for _ in range(3):
                cluster.worker_stats()
            assert all(depth == 0 for depth in cluster._depth.values())
            record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert record.scaled_residual < 1e-2

    def test_cancelled_future_does_not_kill_the_collector(self):
        matrix, rhs = _spd_system(8, 4.0, 43)
        with ClusterEngine(num_workers=1) as cluster:
            future = cluster.submit(matrix, rhs, epsilon_l=1e-2,
                                    backend="ideal", kappa=4.0)
            future.cancel()  # may race completion; either way the collector
            # must survive the settle and keep serving other requests.
            record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert record.scaled_residual < 1e-2
            assert cluster._collector.is_alive()

    def test_closed_engine_rejects_new_work(self):
        matrix, rhs = _spd_system(8, 4.0, 23)
        cluster = ClusterEngine(num_workers=1)
        cluster.close()
        with pytest.raises(RuntimeError):
            cluster.submit(matrix, rhs)
        cluster.close()                            # idempotent


class TestServingHTTP:
    @pytest.fixture()
    def served(self):
        with ClusterEngine(num_workers=2, tenant_rate=0.001,
                           tenant_burst=1.0) as cluster:
            with ServingHTTPServer(cluster) as server:
                host, port = server.address
                yield cluster, f"http://{host}:{port}"

    def _post(self, base, payload):
        request = urllib.request.Request(
            f"{base}/solve", data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            return response.status, json.load(response)

    def test_solve_roundtrip_and_telemetry(self, served):
        _, base = served
        matrix, rhs = _spd_system(8, 4.0, 29)
        status, body = self._post(base, {
            "matrix": matrix.tolist(), "rhs": rhs.tolist(),
            "epsilon_l": 1e-2, "backend": "ideal", "kappa": 4.0})
        assert status == 200
        reference = QSVTLinearSolver(matrix, epsilon_l=1e-2, backend="ideal",
                                     kappa=4.0).solve(rhs)
        np.testing.assert_allclose(body["x"], reference.x,
                                   rtol=0.0, atol=1e-12)
        assert body["worker"].startswith("worker-")
        with urllib.request.urlopen(f"{base}/healthz") as response:
            health = json.load(response)
        assert health["ok"] is True and health["workers_alive"] == 2
        assert health["worker_deaths"] == 0 and health["restarts"] == 0
        assert health["uptime_s"] > 0.0
        assert set(health["metrics_snapshot_age_s"]) == {"worker-0",
                                                         "worker-1"}
        assert health["event_log"]["write_errors"] == 0
        with urllib.request.urlopen(f"{base}/stats") as response:
            stats = json.load(response)
        assert stats["submitted"] == 1 and stats["latency"]["count"] == 1

    def test_quota_rejection_maps_to_429_with_retry_after(self, served):
        _, base = served
        matrix, rhs = _spd_system(8, 4.0, 31)
        payload = {"matrix": matrix.tolist(), "rhs": rhs.tolist(),
                   "epsilon_l": 1e-2, "backend": "ideal", "kappa": 4.0,
                   "tenant": "acme"}
        status, _ = self._post(base, payload)
        assert status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(base, payload)
        assert excinfo.value.code == 429
        assert float(excinfo.value.headers["Retry-After"]) > 0.0
        body = json.load(excinfo.value)
        assert body["retriable"] is True
        assert body["error"] == "QuotaExceededError"

    def test_malformed_and_unknown_requests(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(base, {"rhs": [1.0]})       # no matrix
        assert excinfo.value.code == 400
        assert json.load(excinfo.value)["retriable"] is False
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/nope")
        assert excinfo.value.code == 404
