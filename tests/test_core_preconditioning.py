"""Tests for the classical preconditioning extension."""

import numpy as np
import pytest

from repro.core.preconditioning import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    RowEquilibrationPreconditioner,
    make_preconditioner,
    preconditioned_refine,
)
from repro.exceptions import SingularMatrixError
from repro.linalg import condition_number, random_matrix_with_condition_number, random_rhs


@pytest.fixture()
def badly_scaled_system(rng):
    """A well-conditioned matrix whose rows are scaled over 6 orders of magnitude."""
    base = random_matrix_with_condition_number(8, 3.0, rng=rng)
    scales = np.logspace(0, 6, 8)
    matrix = scales[:, None] * base
    rhs = random_rhs(8, rng=rng)
    return matrix, rhs, np.linalg.solve(matrix, rhs)


class TestPreconditioners:
    def test_identity_is_noop(self, rng):
        matrix = rng.standard_normal((4, 4))
        rhs = rng.standard_normal(4)
        pre = IdentityPreconditioner()
        new_matrix, new_rhs = pre.preconditioned_system(matrix, rhs)
        np.testing.assert_array_equal(new_matrix, matrix)
        np.testing.assert_array_equal(new_rhs, rhs)

    def test_jacobi_makes_unit_diagonal(self, rng):
        matrix = rng.standard_normal((6, 6)) + 5 * np.eye(6)
        pre = JacobiPreconditioner()
        new_matrix, _ = pre.preconditioned_system(matrix, np.ones(6))
        np.testing.assert_allclose(np.diag(new_matrix), 1.0)

    def test_row_equilibration_normalises_rows(self, badly_scaled_system):
        matrix, rhs, _ = badly_scaled_system
        pre = RowEquilibrationPreconditioner()
        new_matrix, _ = pre.preconditioned_system(matrix, rhs)
        np.testing.assert_allclose(np.linalg.norm(new_matrix, axis=1), 1.0)

    def test_row_equilibration_reduces_condition_number(self, badly_scaled_system):
        matrix, rhs, _ = badly_scaled_system
        pre = RowEquilibrationPreconditioner()
        new_matrix, _ = pre.preconditioned_system(matrix, rhs)
        assert condition_number(new_matrix) < condition_number(matrix) / 100

    def test_preconditioning_preserves_solution(self, badly_scaled_system):
        matrix, rhs, solution = badly_scaled_system
        pre = JacobiPreconditioner()
        new_matrix, new_rhs = pre.preconditioned_system(matrix, rhs)
        np.testing.assert_allclose(np.linalg.solve(new_matrix, new_rhs), solution,
                                   rtol=1e-8)

    def test_zero_diagonal_rejected(self):
        matrix = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(SingularMatrixError):
            JacobiPreconditioner().preconditioned_system(matrix, np.ones(2))

    def test_apply_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            JacobiPreconditioner().apply_inverse_vector(np.ones(3))

    def test_factory(self):
        assert isinstance(make_preconditioner("jacobi"), JacobiPreconditioner)
        assert isinstance(make_preconditioner("row"), RowEquilibrationPreconditioner)
        assert isinstance(make_preconditioner("none"), IdentityPreconditioner)
        with pytest.raises(ValueError):
            make_preconditioner("multigrid")


class TestPreconditionedRefine:
    def test_solves_original_system(self, badly_scaled_system):
        matrix, rhs, solution = badly_scaled_system
        result = preconditioned_refine(matrix, rhs, preconditioner="row-equilibration",
                                       epsilon_l=1e-2, target_accuracy=1e-10,
                                       backend="ideal")
        assert result.converged
        rel = np.linalg.norm(result.x - solution) / np.linalg.norm(solution)
        assert rel < 1e-8

    def test_reports_condition_number_reduction(self, badly_scaled_system):
        matrix, rhs, _ = badly_scaled_system
        result = preconditioned_refine(matrix, rhs, preconditioner="row-equilibration",
                                       epsilon_l=1e-2, backend="ideal")
        info = result.solver_info
        assert info["preconditioner"] == "row-equilibration"
        assert info["kappa_preconditioned"] < info["kappa_original"] / 100

    def test_quantum_cost_reduction(self, badly_scaled_system):
        """Preconditioning shrinks the polynomial degree the QPU has to run.

        The unpreconditioned system has κ ~ 1e6, for which the Eq.-(4) degree
        (the per-solve number of block-encoding calls) is astronomically large;
        after row equilibration the measured degree drops to a few tens.
        """
        from repro.qsp import inverse_polynomial_degree

        matrix, rhs, _ = badly_scaled_system
        preconditioned = preconditioned_refine(matrix, rhs,
                                               preconditioner="row-equilibration",
                                               epsilon_l=1e-2, backend="ideal",
                                               target_accuracy=1e-8)
        kappa_plain = preconditioned.solver_info["kappa_original"]
        plain_degree = inverse_polynomial_degree(kappa_plain, 1e-2 / (2 * kappa_plain))
        measured_degree = preconditioned.history[0].cumulative_block_encoding_calls
        assert measured_degree < plain_degree / 1000

    def test_accepts_preconditioner_instance(self, badly_scaled_system):
        matrix, rhs, _ = badly_scaled_system
        result = preconditioned_refine(matrix, rhs,
                                       preconditioner=RowEquilibrationPreconditioner(),
                                       epsilon_l=1e-2, backend="ideal")
        assert result.solver_info["preconditioner"] == "row-equilibration"
