"""Tests for the application workloads, the Poisson problem and reporting helpers."""

import numpy as np
import pytest

from repro.applications import PoissonProblem, random_workload, workload_suite
from repro.linalg import condition_number
from repro.reporting import format_convergence_history, format_series, format_table


class TestPoissonProblem:
    def test_matrix_matches_eq7(self):
        problem = PoissonProblem(8)
        a = problem.matrix()
        h = problem.step
        assert a[0, 0] == pytest.approx(2.0 / h**2)
        assert a[0, 1] == pytest.approx(-1.0 / h**2)

    def test_reference_solution_solves_system(self):
        problem = PoissonProblem(16)
        a, b = problem.system()
        x = problem.reference_solution()
        np.testing.assert_allclose(a @ x, b, atol=1e-8 * np.linalg.norm(b))

    def test_discrete_solution_close_to_continuous(self):
        problem = PoissonProblem(32)
        assert problem.discretization_error() < 1e-2

    def test_discretization_error_decreases_with_resolution(self):
        assert PoissonProblem(64).discretization_error() < PoissonProblem(8).discretization_error()

    def test_condition_number_formula_close_to_exact(self):
        problem = PoissonProblem(16)
        assert problem.condition_number() == pytest.approx(
            problem.condition_number(exact=True), rel=0.05)

    def test_condition_number_grows_quadratically(self):
        assert (PoissonProblem(32).condition_number()
                / PoissonProblem(16).condition_number()) == pytest.approx(4.0, rel=0.15)

    def test_quantum_readiness(self):
        assert PoissonProblem(16).is_quantum_ready
        assert PoissonProblem(16).num_qubits == 4
        assert not PoissonProblem(12).is_quantum_ready
        with pytest.raises(ValueError):
            _ = PoissonProblem(12).num_qubits

    def test_custom_forcing(self):
        problem = PoissonProblem(8, forcing=lambda x: np.ones_like(x))
        np.testing.assert_allclose(problem.right_hand_side(), 1.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PoissonProblem(0)


class TestWorkloads:
    def test_random_workload_consistency(self):
        workload = random_workload(16, 10.0, rng=3)
        assert workload.dimension == 16
        np.testing.assert_allclose(workload.matrix @ workload.solution, workload.rhs,
                                   atol=1e-10)
        assert workload.measured_condition_number() == pytest.approx(10.0, rel=1e-6)
        assert np.linalg.norm(workload.rhs) == pytest.approx(1.0)

    def test_workload_reproducibility(self):
        first = random_workload(8, 5.0, rng=9)
        second = random_workload(8, 5.0, rng=9)
        np.testing.assert_array_equal(first.matrix, second.matrix)

    def test_suite_covers_requested_kappas(self):
        suite = workload_suite(8, condition_numbers=(2.0, 20.0, 200.0), rng=1)
        assert [w.condition_number for w in suite] == [2.0, 20.0, 200.0]
        for workload in suite:
            assert condition_number(workload.matrix) == pytest.approx(
                workload.condition_number, rel=1e-6)

    def test_custom_name(self):
        assert random_workload(4, 2.0, rng=0, name="demo").name == "demo"


class TestReporting:
    def test_format_table_alignment_and_values(self):
        rows = [{"method": "qsvt", "total": 1234.5678}, {"method": "ir", "total": 0.00012}]
        text = format_table(rows, title="Costs")
        assert text.startswith("Costs")
        assert "qsvt" in text
        assert "1.200e-04" in text          # small values switch to scientific notation
        assert "1235" in text               # large values keep 4 significant digits

    def test_format_table_empty(self):
        assert format_table([], title="Nothing") == "Nothing"

    def test_format_table_missing_keys(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "a" in text and "b" in text

    def test_format_series(self):
        text = format_series({"residual": [1e-1, 1e-3]}, x_values=[0, 1], x_label="iter")
        assert "iter" in text and "1.0000e-01" in text

    def test_format_series_empty(self):
        assert "(empty series)" in format_series({})

    def test_format_convergence_history(self):
        text = format_convergence_history([1e-1, 1e-4, 1e-8], bound=[1e-1, 1e-2, 1e-3],
                                          title="run")
        assert "run" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 3
        # the sparkline grows as the residual decreases
        assert lines[-1].count("#") > lines[2].count("#")
