"""Tests for the tree-based state preparation (Kerenidis–Prakash)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import StatePreparationError
from repro.quantum import apply_circuit
from repro.stateprep import TreeStatePreparation, prepare_state_circuit


def _prepared_vector(vector, **kwargs):
    result = prepare_state_circuit(vector, **kwargs)
    return apply_circuit(result.circuit).data, result


class TestTreeConstruction:
    def test_tree_levels_and_norms(self):
        vector = np.array([3.0, 4.0, 0.0, 0.0])
        tree = TreeStatePreparation.tree_values(vector)
        assert len(tree) == 3
        assert tree[0][0] == pytest.approx(5.0)
        np.testing.assert_allclose(tree[1], [5.0, 0.0])
        np.testing.assert_allclose(tree[2], vector)

    def test_rotation_angles_shapes(self):
        vector = np.arange(1.0, 9.0)
        angles = TreeStatePreparation.rotation_angles(TreeStatePreparation.tree_values(vector))
        assert [a.shape[0] for a in angles] == [1, 2, 4]


class TestPreparationCorrectness:
    @pytest.mark.parametrize("length", [2, 4, 8, 16, 32])
    def test_positive_vectors(self, length, rng):
        vector = rng.uniform(0.1, 1.0, length)
        state, result = _prepared_vector(vector)
        np.testing.assert_allclose(state.real, vector / np.linalg.norm(vector), atol=1e-12)
        assert result.norm == pytest.approx(np.linalg.norm(vector))

    @pytest.mark.parametrize("length", [4, 8, 16])
    def test_signed_vectors(self, length, rng):
        vector = rng.standard_normal(length)
        state, _ = _prepared_vector(vector)
        np.testing.assert_allclose(state.real, vector / np.linalg.norm(vector), atol=1e-12)
        np.testing.assert_allclose(state.imag, 0.0, atol=1e-12)

    def test_sparse_vector_with_zero_blocks(self):
        vector = np.array([0.0, 0.0, 0.0, -2.0, 0.0, 0.0, 1.0, 0.0])
        state, _ = _prepared_vector(vector)
        np.testing.assert_allclose(state.real, vector / np.linalg.norm(vector), atol=1e-12)

    def test_basis_vector(self):
        vector = np.zeros(8)
        vector[5] = -1.0
        state, _ = _prepared_vector(vector)
        np.testing.assert_allclose(state.real, vector, atol=1e-12)

    def test_decomposed_circuit_equivalent(self, rng):
        vector = rng.standard_normal(16)
        dense_state, dense_result = _prepared_vector(vector, decompose=False)
        gate_state, gate_result = _prepared_vector(vector, decompose=True)
        np.testing.assert_allclose(dense_state, gate_state, atol=1e-10)
        # the decomposed circuit uses only elementary gates (Ry and CNOT)
        assert set(gate_result.circuit.count_gates()).issubset({"ry", "cx"})

    def test_complex_vector(self, rng):
        vector = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        state, _ = _prepared_vector(vector)
        np.testing.assert_allclose(state, vector / np.linalg.norm(vector), atol=1e-12)

    def test_classical_flops_linear_in_length(self):
        _, result = _prepared_vector(np.ones(16))
        assert result.classical_flops == 4 * 16


class TestValidation:
    def test_zero_vector_rejected(self):
        with pytest.raises(StatePreparationError):
            prepare_state_circuit(np.zeros(4))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(StatePreparationError):
            prepare_state_circuit(np.ones(6))

    def test_scalar_rejected(self):
        with pytest.raises(StatePreparationError):
            prepare_state_circuit(np.ones(1))

    def test_non_finite_rejected(self):
        with pytest.raises(StatePreparationError):
            prepare_state_circuit([np.inf, 1.0])


class TestPreparationProperties:
    @given(hnp.arrays(np.float64, st.sampled_from([2, 4, 8, 16]),
                      elements=st.floats(min_value=-10, max_value=10,
                                         allow_nan=False, allow_infinity=False)))
    @settings(max_examples=60, deadline=None)
    def test_property_amplitudes_match(self, vector):
        if np.linalg.norm(vector) < 1e-9:
            vector = vector + 1.0
        state, _ = _prepared_vector(vector)
        np.testing.assert_allclose(state.real, vector / np.linalg.norm(vector), atol=1e-9)
        np.testing.assert_allclose(state.imag, 0.0, atol=1e-12)
