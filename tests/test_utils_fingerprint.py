"""Canonical matrix fingerprints: layout, byte order and signed zeros.

The compiled-solver cache, the synthesis store and the shared-memory
registry all key on :func:`repro.utils.matrix_fingerprint`; time-stepping
chains depend on *numerically equal* matrices always mapping to one
fingerprint, however they were assembled (Fortran-ordered Kronecker
products, strided views, ``-0.0`` from cancellation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import CompiledSolverCache
from repro.utils import matrix_fingerprint


@pytest.fixture()
def matrix():
    return np.random.default_rng(7).standard_normal((8, 8))


def test_equal_content_shares_fingerprint(matrix):
    fp = matrix_fingerprint(matrix)
    assert matrix_fingerprint(matrix.copy()) == fp
    assert matrix_fingerprint(matrix.tolist()) == fp


def test_fortran_order_and_views_are_canonical(matrix):
    fp = matrix_fingerprint(matrix)
    assert matrix_fingerprint(np.asfortranarray(matrix)) == fp
    assert matrix_fingerprint(matrix.T.copy().T) == fp
    strided = np.zeros((16, 16))
    strided[::2, ::2] = matrix
    view = strided[::2, ::2]
    assert not view.flags["C_CONTIGUOUS"]
    assert matrix_fingerprint(view) == fp


def test_negative_zero_is_normalised():
    plus = np.array([[0.0, 1.0], [2.0, 3.0]])
    minus = plus.copy()
    minus[0, 0] = -0.0
    assert np.array_equal(plus, minus)          # numerically equal...
    assert plus.tobytes() != minus.tobytes()    # ...but byte-different
    assert matrix_fingerprint(plus) == matrix_fingerprint(minus)
    complex_plus = plus.astype(complex)
    complex_minus = complex_plus.copy()
    complex_minus[0, 0] = complex(-0.0, -0.0)
    assert matrix_fingerprint(complex_plus) == matrix_fingerprint(complex_minus)


def test_byte_order_is_normalised(matrix):
    swapped = matrix.astype(matrix.dtype.newbyteorder())
    assert np.array_equal(matrix, swapped)
    assert matrix_fingerprint(swapped) == matrix_fingerprint(matrix)


def test_distinct_content_distinct_fingerprint(matrix):
    fp = matrix_fingerprint(matrix)
    perturbed = matrix.copy()
    perturbed[0, 0] = np.nextafter(perturbed[0, 0], np.inf)
    assert matrix_fingerprint(perturbed) != fp
    assert matrix_fingerprint(matrix.reshape(4, 16)) != fp
    assert matrix_fingerprint(matrix.astype(np.float32)) != fp
    ints = np.arange(4)
    assert matrix_fingerprint(ints) != matrix_fingerprint(ints.astype(float))
    assert matrix_fingerprint(ints) == matrix_fingerprint(ints.copy())


def test_object_dtype_is_rejected():
    with pytest.raises(TypeError, match="numeric"):
        matrix_fingerprint(np.array([object()], dtype=object))


def test_nan_payloads_still_fingerprint():
    a = np.array([np.nan, 1.0])
    assert matrix_fingerprint(a) == matrix_fingerprint(a.copy())


def test_cache_reuses_synthesis_across_layouts():
    """A Fortran-ordered or signed-zero twin must hit the same cache entry."""
    matrix = np.array([[2.0, -1.0, 0.0, 0.0], [-1.0, 2.0, -1.0, 0.0],
                       [0.0, -1.0, 2.0, -1.0], [0.0, 0.0, -1.0, 2.0]])
    twin = np.asfortranarray(matrix.copy())
    twin[0, 2] = -0.0
    cache = CompiledSolverCache()
    first = cache.solver(matrix, epsilon_l=1e-2, backend="exact")
    second = cache.solver(twin, epsilon_l=1e-2, backend="exact")
    assert first is second
    assert cache.stats()["compiles"] == 1
    assert cache.stats()["hits"] == 1


# ---------------------------------------------------------------------- #
# structured operators (PR 5): O(nnz) hashing without densification
# ---------------------------------------------------------------------- #
def test_structured_fingerprints_are_stable_and_distinct():
    from repro.linalg import BandedOperator, CSROperator

    dense = np.array([[2.0, -1.0, 0.0, 0.0], [-1.0, 2.0, -1.0, 0.0],
                      [0.0, -1.0, 2.0, -1.0], [0.0, 0.0, -1.0, 2.0]])
    banded = BandedOperator.from_dense(dense)
    csr = CSROperator.from_dense(dense)
    # same numbers, three distinct compiled problems (synthesis payloads
    # genuinely differ between the structures)
    assert len({matrix_fingerprint(dense), matrix_fingerprint(banded),
                matrix_fingerprint(csr)}) == 3
    # stability: an equal-content rebuild reproduces the hash
    assert matrix_fingerprint(BandedOperator.from_dense(dense)) == \
        matrix_fingerprint(banded)
    # sensitivity: a one-ulp data change flips it
    bands = {k: banded.band(k).copy() for k in banded.offsets}
    bands[0] = bands[0].copy()
    bands[0][0] = np.nextafter(bands[0][0], np.inf)
    assert matrix_fingerprint(BandedOperator(4, bands)) != \
        matrix_fingerprint(banded)


def test_structured_fingerprint_canonicalises_layout_and_zero_signs():
    from repro.linalg import BandedOperator

    values = np.array([2.0, -0.0, 2.0, 2.0])
    twin = np.array([2.0, 0.0, 2.0, 2.0])
    # signed zeros in component arrays canonicalise (same rule as dense)
    assert matrix_fingerprint(BandedOperator(4, {0: values})) == \
        matrix_fingerprint(BandedOperator(4, {0: twin}))
    # byte-order canonicalisation holds for components too
    swapped = twin.astype(twin.dtype.newbyteorder(">"))
    assert matrix_fingerprint(BandedOperator(4, {0: swapped})) == \
        matrix_fingerprint(BandedOperator(4, {0: twin}))


def test_structured_fingerprint_never_densifies():
    from repro.linalg import BandedOperator

    big = BandedOperator.toeplitz(20000, {0: 2.0, 1: -1.0, -1: -1.0})
    # a dense hash of N=20000 would need 3.2 GB; this must stay O(nnz)
    assert matrix_fingerprint(big) == matrix_fingerprint(
        BandedOperator.toeplitz(20000, {0: 2.0, 1: -1.0, -1: -1.0}))
