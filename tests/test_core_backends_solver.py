"""Tests for the QPU backends and the single-solve QSVT solver."""

import numpy as np
import pytest

from repro.core import (
    CircuitQSVTBackend,
    ExactInverseBackend,
    IdealPolynomialBackend,
    QSVTLinearSolver,
    SamplingModel,
    make_backend,
)
from repro.exceptions import BackendError
from repro.linalg import random_matrix_with_condition_number, random_rhs


class TestBackendFactory:
    def test_names(self):
        assert isinstance(make_backend("circuit"), CircuitQSVTBackend)
        assert isinstance(make_backend("ideal"), IdealPolynomialBackend)
        assert isinstance(make_backend("exact"), ExactInverseBackend)
        assert isinstance(make_backend("auto"), CircuitQSVTBackend)

    def test_unknown_name(self):
        with pytest.raises(BackendError):
            make_backend("quantum-magic")


class TestExactInverseBackend:
    def test_relative_error_matches_epsilon_l(self, rng):
        matrix = random_matrix_with_condition_number(16, 10.0, rng=rng)
        rhs = random_rhs(16, rng=rng)
        backend = ExactInverseBackend(rng=0)
        backend.prepare(matrix, epsilon_l=1e-3)
        application = backend.apply_inverse(rhs)
        exact = np.linalg.solve(matrix, rhs)
        exact_dir = exact / np.linalg.norm(exact)
        angle_error = np.linalg.norm(application.direction - exact_dir)
        assert angle_error <= 2 * 1e-3

    def test_requires_prepare(self):
        with pytest.raises(BackendError):
            ExactInverseBackend().apply_inverse(np.ones(4))


class TestIdealPolynomialBackend:
    def test_direction_accuracy(self, medium_workload):
        backend = IdealPolynomialBackend()
        backend.prepare(medium_workload.matrix, epsilon_l=1e-4)
        application = backend.apply_inverse(medium_workload.rhs)
        exact_dir = medium_workload.solution / np.linalg.norm(medium_workload.solution)
        assert np.linalg.norm(application.direction - exact_dir) < 1e-3
        assert application.block_encoding_calls == application.polynomial_degree > 0

    def test_describe_reports_achieved_accuracy(self, medium_workload):
        backend = IdealPolynomialBackend()
        backend.prepare(medium_workload.matrix, epsilon_l=1e-3)
        info = backend.describe()
        assert 0 < info["achieved_epsilon_l"] <= 1e-3
        assert info["polynomial_degree"] > 1

    def test_calibration_reduces_degree(self, medium_workload):
        calibrated = IdealPolynomialBackend(calibrate_polynomial=True)
        calibrated.prepare(medium_workload.matrix, epsilon_l=1e-2)
        conservative = IdealPolynomialBackend(calibrate_polynomial=False)
        conservative.prepare(medium_workload.matrix, epsilon_l=1e-2)
        assert calibrated.polynomial.degree <= conservative.polynomial.degree

    def test_zero_rhs_rejected(self, medium_workload):
        backend = IdealPolynomialBackend()
        backend.prepare(medium_workload.matrix, epsilon_l=1e-2)
        with pytest.raises(BackendError):
            backend.apply_inverse(np.zeros(16))

    def test_sampling_model_is_applied(self, medium_workload):
        noisy = IdealPolynomialBackend(sampling=SamplingModel(mode="gaussian",
                                                              shots=100, rng=0))
        noisy.prepare(medium_workload.matrix, epsilon_l=1e-4)
        clean = IdealPolynomialBackend()
        clean.prepare(medium_workload.matrix, epsilon_l=1e-4)
        rhs = medium_workload.rhs
        assert not np.allclose(noisy.apply_inverse(rhs).direction,
                               clean.apply_inverse(rhs).direction)
        assert noisy.apply_inverse(rhs).shots == 100


class TestCircuitBackend:
    def test_prepared_metadata(self, prepared_circuit_solver):
        info = prepared_circuit_solver.backend.describe()
        assert info["backend"] == "circuit-qsvt"
        assert info["polynomial_degree"] % 2 == 1
        assert info["phase_residual"] < 1e-8

    def test_solve_accuracy_matches_epsilon_l(self, prepared_circuit_solver, rng):
        rhs = random_rhs(8, rng=rng)
        record = prepared_circuit_solver.solve(rhs)
        # scaled residual of a single solve is bounded by ~ eps_l * kappa
        assert record.scaled_residual < prepared_circuit_solver.epsilon_l * \
            prepared_circuit_solver.kappa
        assert record.block_encoding_calls == 2 * record.polynomial_degree
        assert 0 < record.success_probability <= 1.0

    def test_requires_prepare(self):
        with pytest.raises(BackendError):
            CircuitQSVTBackend().apply_inverse(np.ones(4))


class TestQSVTLinearSolver:
    def test_auto_backend_selects_circuit_for_small_problems(self, prepared_circuit_solver):
        assert isinstance(prepared_circuit_solver.backend, CircuitQSVTBackend)

    def test_auto_backend_falls_back_to_ideal_for_large_kappa(self):
        matrix = random_matrix_with_condition_number(16, 500.0, rng=3)
        solver = QSVTLinearSolver(matrix, epsilon_l=1e-4, backend="auto")
        assert isinstance(solver.backend, IdealPolynomialBackend)

    def test_solution_and_scale(self, prepared_ideal_solver, rng):
        rhs = random_rhs(16, rng=rng)
        record = prepared_ideal_solver.solve(rhs)
        exact = np.linalg.solve(prepared_ideal_solver.matrix, rhs)
        rel = np.linalg.norm(record.x - exact) / np.linalg.norm(exact)
        assert rel < 10 * prepared_ideal_solver.epsilon_l
        np.testing.assert_allclose(record.x, record.scale * record.direction)

    def test_describe(self, prepared_ideal_solver):
        info = prepared_ideal_solver.describe()
        assert info["dimension"] == 16
        assert info["epsilon_l"] == prepared_ideal_solver.epsilon_l

    def test_invalid_epsilon_l(self, medium_workload):
        with pytest.raises(ValueError):
            QSVTLinearSolver(medium_workload.matrix, epsilon_l=2.0)

    def test_rhs_dimension_check(self, prepared_ideal_solver):
        with pytest.raises(ValueError):
            prepared_ideal_solver.solve(np.ones(8))

    def test_exact_backend_through_solver(self, medium_workload):
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=1e-4, backend="exact")
        record = solver.solve(medium_workload.rhs)
        assert record.scaled_residual < 1e-2
