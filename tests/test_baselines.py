"""Tests for the HHL, VQLS and classical direct-solver baselines."""

import numpy as np
import pytest

from repro.baselines import (
    ClassicalDirectSolver,
    HHLSolver,
    VQLSSolver,
    classical_solve,
    hhl_with_refinement,
)
from repro.exceptions import BackendError
from repro.linalg import random_matrix_with_condition_number, random_rhs, random_spd_matrix


class TestClassicalDirect:
    def test_double_precision_solve(self, medium_workload):
        x = classical_solve(medium_workload.matrix, medium_workload.rhs)
        np.testing.assert_allclose(x, medium_workload.solution, atol=1e-10)

    def test_single_precision_larger_error(self, medium_workload):
        solver64 = ClassicalDirectSolver(medium_workload.matrix, precision="fp64")
        solver32 = ClassicalDirectSolver(medium_workload.matrix, precision="fp32")
        rec64 = solver64.solve(medium_workload.rhs)
        rec32 = solver32.solve(medium_workload.rhs)
        assert rec32.scaled_residual > rec64.scaled_residual
        assert solver32.describe()["precision"] == "fp32"


class TestHHL:
    def test_spd_system_accuracy(self, rng):
        matrix = random_spd_matrix(8, 5.0, rng=rng)
        rhs = random_rhs(8, rng=rng)
        solver = HHLSolver(matrix, clock_qubits=10)
        record = solver.solve(rhs)
        assert record.scaled_residual < 5e-2
        assert 0 < record.success_probability <= 1.0

    def test_non_hermitian_handled_through_dilation(self, medium_workload):
        solver = HHLSolver(medium_workload.matrix, clock_qubits=10)
        assert not solver.hermitian
        record = solver.solve(medium_workload.rhs)
        assert record.scaled_residual < 0.1

    def test_accuracy_improves_with_clock_qubits(self, rng):
        matrix = random_spd_matrix(8, 8.0, rng=rng)
        rhs = random_rhs(8, rng=rng)
        coarse = HHLSolver(matrix, clock_qubits=6).solve(rhs).scaled_residual
        fine = HHLSolver(matrix, clock_qubits=12).solve(rhs).scaled_residual
        assert fine < coarse

    def test_epsilon_l_estimate_decreases_with_clock_qubits(self, rng):
        matrix = random_spd_matrix(4, 4.0, rng=rng)
        assert (HHLSolver(matrix, clock_qubits=12).epsilon_l
                < HHLSolver(matrix, clock_qubits=6).epsilon_l)

    def test_singular_matrix_rejected(self):
        with pytest.raises(BackendError):
            HHLSolver(np.diag([1.0, 0.0]))

    def test_too_few_clock_qubits_rejected(self, rng):
        with pytest.raises(BackendError):
            HHLSolver(random_spd_matrix(4, 2.0, rng=rng), clock_qubits=1)

    def test_zero_rhs_rejected(self, rng):
        solver = HHLSolver(random_spd_matrix(4, 2.0, rng=rng))
        with pytest.raises(BackendError):
            solver.solve(np.zeros(4))

    def test_hhl_with_refinement_converges(self, rng):
        matrix = random_matrix_with_condition_number(8, 6.0, rng=rng)
        rhs = random_rhs(8, rng=rng)
        result = hhl_with_refinement(matrix, rhs, clock_qubits=10, target_accuracy=1e-9)
        assert result.converged
        assert result.scaled_residuals[-1] <= 1e-9
        assert result.solver_info["backend"] == "hhl"


class TestVQLS:
    def test_small_system_reaches_moderate_accuracy(self):
        matrix = random_matrix_with_condition_number(4, 2.0, rng=10)
        rhs = random_rhs(4, rng=10)
        solver = VQLSSolver(matrix, layers=3, max_evaluations=4000, rng=0)
        result = solver.run(rhs)
        assert result.cost < 5e-2
        record = solver.solve(rhs)
        assert record.scaled_residual < 0.5

    def test_parameter_count(self):
        solver = VQLSSolver(np.eye(8), layers=2)
        assert solver.num_parameters == (2 + 1) * 3

    def test_ansatz_state_is_normalised(self, rng):
        solver = VQLSSolver(np.eye(4), layers=1, rng=0)
        params = rng.uniform(-np.pi, np.pi, solver.num_parameters)
        assert np.linalg.norm(solver.ansatz_state(params)) == pytest.approx(1.0)

    def test_cost_zero_for_exact_direction(self):
        # with A = I the cost vanishes when the ansatz prepares |b> itself
        solver = VQLSSolver(np.eye(2), layers=0, rng=0)
        b = np.array([np.cos(0.3), np.sin(0.3)])
        cost = solver.cost(np.array([2 * 0.3]), b)
        assert cost == pytest.approx(0.0, abs=1e-12)

    def test_parameter_length_validation(self):
        solver = VQLSSolver(np.eye(4), layers=1)
        with pytest.raises(Exception):
            solver.ansatz_circuit(np.zeros(3))

    def test_describe(self):
        info = VQLSSolver(np.eye(4), layers=2).describe()
        assert info["backend"] == "vqls" and info["layers"] == 2
