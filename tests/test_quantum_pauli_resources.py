"""Tests for the Pauli decomposition, resource model and ASCII drawing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError, ResourceModelError
from repro.quantum import (
    PauliString,
    QuantumCircuit,
    ResourceCounter,
    draw_circuit,
    estimate_circuit_resources,
    pauli_decompose,
    pauli_matrix,
    pauli_reconstruct,
)


class TestPauliString:
    def test_matrix_of_label(self):
        np.testing.assert_array_equal(pauli_matrix("X"), np.array([[0, 1], [1, 0]]))
        zz = pauli_matrix("ZZ")
        np.testing.assert_array_equal(np.diag(zz), [1, -1, -1, 1])

    def test_kron_order_is_big_endian(self):
        # label "XI": X acts on qubit 0 (most significant)
        xi = pauli_matrix("XI")
        np.testing.assert_array_equal(xi, np.kron(pauli_matrix("X"), np.eye(2)))

    def test_weight_and_qubits(self):
        term = PauliString("XIZ", 2.0)
        assert term.num_qubits == 3 and term.weight == 2

    def test_invalid_label(self):
        with pytest.raises(DimensionError):
            PauliString("XQ")

    def test_matrix_includes_coefficient(self):
        term = PauliString("Z", -3.0)
        np.testing.assert_array_equal(term.matrix(), -3.0 * np.diag([1.0, -1.0]))


class TestPauliDecomposition:
    def test_roundtrip_random_complex(self, rng):
        a = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        terms = pauli_decompose(a)
        np.testing.assert_allclose(pauli_reconstruct(terms), a, atol=1e-12)

    def test_hermitian_matrix_real_coefficients(self, rng):
        a = rng.standard_normal((4, 4))
        a = a + a.T
        terms = pauli_decompose(a)
        assert all(abs(t.coefficient.imag) < 1e-12 for t in terms)

    def test_identity_single_term(self):
        terms = pauli_decompose(np.eye(8))
        assert len(terms) == 1 and terms[0].label == "III"
        assert terms[0].coefficient == pytest.approx(1.0)

    def test_sparsity_pruning_on_structured_matrix(self):
        from repro.linalg import poisson_1d_matrix

        terms = pauli_decompose(poisson_1d_matrix(16, scaled=False))
        # far fewer than the 256 terms of a generic 16x16 matrix
        assert 0 < len(terms) < 40

    def test_tolerance_prunes_small_terms(self, rng):
        a = np.eye(4) + 1e-14 * rng.standard_normal((4, 4))
        assert len(pauli_decompose(a, tolerance=1e-10)) == 1

    def test_dimension_validation(self):
        with pytest.raises(DimensionError):
            pauli_decompose(np.eye(3))

    def test_reconstruct_empty_needs_dimension(self):
        with pytest.raises(DimensionError):
            pauli_reconstruct([])
        out = pauli_reconstruct([], num_qubits=2)
        np.testing.assert_array_equal(out, np.zeros((4, 4)))

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((4, 4))
        np.testing.assert_allclose(pauli_reconstruct(pauli_decompose(a)), a, atol=1e-12)


class TestResourceModel:
    def test_clifford_gates_are_free(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.s(1)
        estimate = estimate_circuit_resources(qc)
        assert estimate.t_count == 0
        assert estimate.cnot_count == 1

    def test_explicit_t_gates_counted(self):
        qc = QuantumCircuit(1)
        qc.t(0)
        qc.tdg(0)
        estimate = estimate_circuit_resources(qc)
        assert estimate.explicit_t_count == 2 and estimate.t_count == 2

    def test_toffoli_cost(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        estimate = estimate_circuit_resources(qc)
        assert estimate.toffoli_count == 1
        assert estimate.t_count == 7

    def test_mcx_cost_grows_linearly(self):
        counter = ResourceCounter()
        assert counter.mcx_toffolis(5) == 2 * 5 - 3
        assert counter.mcx_toffolis(2) == 1
        assert counter.mcx_toffolis(1) == 0

    def test_rotation_synthesis_cost(self):
        counter = ResourceCounter(rotation_synthesis_epsilon=1e-10)
        expected = np.ceil(3.0 * np.log2(1e10) + 1.0)
        assert counter.rotation_t_count() == expected
        qc = QuantumCircuit(1)
        qc.ry(0.3, 0)
        assert counter.estimate(qc).t_count == expected

    def test_controlled_rotation_cost(self):
        qc = QuantumCircuit(2)
        qc.cry(0.5, 0, 1)
        estimate = estimate_circuit_resources(qc)
        assert estimate.rotation_count == 2
        assert estimate.cnot_count == 2

    def test_generic_unitary_block_penalised(self):
        qc = QuantumCircuit(2)
        qc.unitary(np.eye(4), qubits=[0, 1], name="block")
        estimate = estimate_circuit_resources(qc)
        assert estimate.rotation_count == 16

    def test_invalid_parameters(self):
        with pytest.raises(ResourceModelError):
            ResourceCounter(rotation_synthesis_epsilon=2.0).rotation_t_count()
        with pytest.raises(ResourceModelError):
            ResourceCounter().mcx_toffolis(-1)

    def test_summary_mentions_counts(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        text = estimate_circuit_resources(qc).summary()
        assert "T count" in text and "qubits" in text


class TestDrawing:
    def test_wires_and_gates_present(self):
        qc = QuantumCircuit(3, name="demo")
        qc.h(0)
        qc.cx(0, 2)
        qc.mcx([0, 1], 2, control_states=[1, 0])
        text = draw_circuit(qc)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "[H]" in lines[0]
        assert "●" in lines[0] and "⊕" in lines[2]
        assert "○" in lines[1]          # open control rendered differently

    def test_custom_labels_and_length_check(self):
        qc = QuantumCircuit(2)
        qc.swap(0, 1)
        text = draw_circuit(qc, qubit_labels=["anc", "dat"])
        assert text.splitlines()[0].startswith("anc")
        with pytest.raises(ValueError):
            draw_circuit(qc, qubit_labels=["only-one"])

    def test_max_width_truncation(self):
        qc = QuantumCircuit(1)
        for _ in range(200):
            qc.h(0)
        text = draw_circuit(qc, max_width=50)
        assert all(len(line) <= 51 for line in text.splitlines())
