"""Tests for the QSVT circuit construction and its validation helpers."""

import numpy as np
import pytest

from repro.blockencoding import DilationBlockEncoding, LCUBlockEncoding
from repro.exceptions import DimensionError
from repro.qsp import (
    apply_polynomial_via_svd,
    apply_qsvt_to_vector,
    build_qsvt_circuit,
    projector_phase_gate,
    qsvt_transform_error,
    solve_qsp_phases,
    wx_to_circuit_phases,
)
from repro.qsp.chebyshev import evaluate_chebyshev
from repro.quantum import circuit_unitary


@pytest.fixture(scope="module")
def cubic_phases():
    """Phases for a fixed odd degree-5 polynomial, reused across tests."""
    coeffs = np.array([0.0, 0.4, 0.0, 0.25, 0.0, 0.2])
    result = solve_qsp_phases(coeffs)
    return coeffs, result.phases


class TestPhaseConversion:
    def test_lengths(self, cubic_phases):
        _, wx = cubic_phases
        circuit_phases, global_phase = wx_to_circuit_phases(wx)
        assert circuit_phases.shape[0] == wx.shape[0] - 1
        assert abs(abs(global_phase) - 1.0) < 1e-12

    def test_short_vector_rejected(self):
        with pytest.raises(DimensionError):
            wx_to_circuit_phases([0.3])


class TestProjectorPhase:
    def test_diagonal_structure(self):
        gate = projector_phase_gate(2, 0.7)
        diag = np.diag(gate)
        assert diag[0] == pytest.approx(np.exp(1j * 0.7))
        np.testing.assert_allclose(diag[1:], np.exp(-1j * 0.7))
        np.testing.assert_allclose(gate, np.diag(diag))

    def test_needs_one_ancilla(self):
        with pytest.raises(DimensionError):
            projector_phase_gate(0, 0.1)


class TestCircuitStructure:
    def test_block_encoding_call_count(self, cubic_phases, rng):
        _, wx = cubic_phases
        circuit_phases, _ = wx_to_circuit_phases(wx)
        block = DilationBlockEncoding(rng.standard_normal((4, 4)))
        circuit = build_qsvt_circuit(block, circuit_phases)
        names = [g.name for g in circuit]
        assert names.count("BE") + names.count("BE†") == circuit_phases.shape[0]
        assert names.count("proj_phase") == circuit_phases.shape[0]

    def test_flag_qubit_variant_equivalent(self, cubic_phases, rng):
        _, wx = cubic_phases
        circuit_phases, _ = wx_to_circuit_phases(wx)
        block = DilationBlockEncoding(rng.standard_normal((2, 2)))
        dense = build_qsvt_circuit(block, circuit_phases, use_flag_qubit=False)
        flagged = build_qsvt_circuit(block, circuit_phases, use_flag_qubit=True)
        assert flagged.num_qubits == dense.num_qubits + 1
        u_dense = circuit_unitary(dense)
        u_flag = circuit_unitary(flagged)
        # the flag qubit is appended as the least significant qubit and starts
        # and ends in |0>, so the flag=0 sub-block (even rows/columns) of the
        # flagged unitary must equal the dense construction
        np.testing.assert_allclose(u_flag[0::2, 0::2], u_dense, atol=1e-10)

    def test_gate_level_block_encoding_variant(self, cubic_phases, rng):
        _, wx = cubic_phases
        circuit_phases, _ = wx_to_circuit_phases(wx)
        block = DilationBlockEncoding(rng.standard_normal((2, 2)))
        dense = build_qsvt_circuit(block, circuit_phases, dense_block_encoding=True)
        inlined = build_qsvt_circuit(block, circuit_phases, dense_block_encoding=False)
        np.testing.assert_allclose(circuit_unitary(dense), circuit_unitary(inlined),
                                   atol=1e-10)

    def test_empty_phases_rejected(self, rng):
        block = DilationBlockEncoding(rng.standard_normal((2, 2)))
        with pytest.raises(DimensionError):
            build_qsvt_circuit(block, [])


class TestPolynomialAction:
    def test_diagonal_matrix_transformation(self, cubic_phases):
        coeffs, wx = cubic_phases
        sigma = np.array([0.9, 0.6, 0.35, 0.15])
        block = DilationBlockEncoding(np.diag(sigma), spectral_margin=1.0)
        scaled = sigma / block.alpha
        for k in range(4):
            probe = np.zeros(4)
            probe[k] = 1.0
            application = apply_qsvt_to_vector(block, wx, probe)
            expected = evaluate_chebyshev(coeffs, scaled[k])
            assert application.vector[k] == pytest.approx(expected, abs=1e-9)

    def test_matches_svd_transform_for_random_matrix(self, cubic_phases, rng):
        coeffs, wx = cubic_phases
        matrix = rng.standard_normal((4, 4))
        for encoding in (DilationBlockEncoding(matrix), LCUBlockEncoding(matrix)):
            assert qsvt_transform_error(encoding, wx, coeffs) < 1e-8

    def test_success_probability_in_unit_interval(self, cubic_phases, rng):
        _, wx = cubic_phases
        block = DilationBlockEncoding(rng.standard_normal((4, 4)))
        application = apply_qsvt_to_vector(block, wx, rng.standard_normal(4))
        assert 0.0 <= application.success_probability <= 1.0

    def test_real_part_flag_controls_call_count(self, cubic_phases, rng):
        _, wx = cubic_phases
        block = DilationBlockEncoding(rng.standard_normal((4, 4)))
        probe = rng.standard_normal(4)
        both = apply_qsvt_to_vector(block, wx, probe, real_part=True)
        single = apply_qsvt_to_vector(block, wx, probe, real_part=False)
        assert both.block_encoding_calls == 2 * single.block_encoding_calls

    def test_zero_vector_rejected(self, cubic_phases, rng):
        _, wx = cubic_phases
        block = DilationBlockEncoding(rng.standard_normal((4, 4)))
        with pytest.raises(DimensionError):
            apply_qsvt_to_vector(block, wx, np.zeros(4))

    def test_dimension_mismatch_rejected(self, cubic_phases, rng):
        _, wx = cubic_phases
        block = DilationBlockEncoding(rng.standard_normal((4, 4)))
        with pytest.raises(DimensionError):
            apply_qsvt_to_vector(block, wx, np.ones(8))


class TestSVDTransform:
    def test_odd_polynomial_via_svd(self, rng):
        matrix = rng.standard_normal((4, 4))
        matrix /= 2 * np.linalg.norm(matrix, 2)
        coeffs = np.array([0.0, 1.0])        # P(x) = x  ->  P^{(SV)}(A) = A
        np.testing.assert_allclose(apply_polynomial_via_svd(matrix, coeffs), matrix,
                                   atol=1e-12)

    def test_even_polynomial_via_svd(self, rng):
        matrix = rng.standard_normal((4, 4))
        matrix /= 2 * np.linalg.norm(matrix, 2)
        coeffs = np.array([-0.5, 0.0, 0.5])  # T_2 combination: P(x) = x^2 - 1 ... evaluated
        result = apply_polynomial_via_svd(matrix, coeffs, parity=0)
        # P(x) = 0.5*(2x^2-1) - 0.5 = x^2 - 1; with SVD A = UΣV†, result = V(Σ²-I)V†
        _, sigma, vh = np.linalg.svd(matrix)
        expected = (vh.conj().T * (sigma**2 - 1.0)) @ vh
        np.testing.assert_allclose(result, expected, atol=1e-12)
