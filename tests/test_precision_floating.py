"""Unit tests for repro.precision.floating and rounding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PrecisionError
from repro.precision import (
    BFLOAT16,
    DOUBLE,
    HALF,
    QUARTER,
    SINGLE,
    Precision,
    chop_mantissa,
    get_precision,
    list_precisions,
    machine_epsilon,
    register_precision,
    round_to_precision,
)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_precision("fp64") is DOUBLE
        assert get_precision("single") is SINGLE
        assert get_precision("bf16") is BFLOAT16

    def test_lookup_by_dtype(self):
        assert get_precision(np.float32) is SINGLE
        assert get_precision(np.dtype(np.float16)) is HALF

    def test_lookup_passthrough(self):
        assert get_precision(DOUBLE) is DOUBLE

    def test_unknown_name(self):
        with pytest.raises(PrecisionError):
            get_precision("fp128")

    def test_list_contains_standard_formats(self):
        names = list_precisions()
        for name in ("fp64", "fp32", "fp16", "bf16", "fp8"):
            assert name in names

    def test_register_custom(self):
        custom = register_precision(Precision("fp11-test", 4, 6), "testformat")
        assert get_precision("testformat") is custom


class TestUnitRoundoff:
    def test_double(self):
        assert DOUBLE.unit_roundoff == pytest.approx(2.0**-53)

    def test_single(self):
        assert SINGLE.unit_roundoff == pytest.approx(2.0**-24)

    def test_half(self):
        assert HALF.unit_roundoff == pytest.approx(2.0**-11)

    def test_ordering(self):
        assert DOUBLE.unit_roundoff < SINGLE.unit_roundoff < HALF.unit_roundoff

    def test_machine_epsilon_helper(self):
        assert machine_epsilon("fp32") == pytest.approx(2.0**-23)

    def test_bytes_per_element(self):
        assert DOUBLE.bytes_per_element == 8.0
        assert SINGLE.bytes_per_element == 4.0
        assert HALF.bytes_per_element == 2.0


class TestRounding:
    def test_double_is_identity(self, rng):
        x = rng.standard_normal(100)
        np.testing.assert_array_equal(DOUBLE.round(x), x)

    def test_single_matches_cast(self, rng):
        x = rng.standard_normal(100)
        np.testing.assert_array_equal(SINGLE.round(x), x.astype(np.float32).astype(np.float64))

    def test_half_matches_cast(self, rng):
        x = rng.standard_normal(50)
        np.testing.assert_array_equal(HALF.round(x), x.astype(np.float16).astype(np.float64))

    def test_zero_and_special_values_preserved(self):
        x = np.array([0.0, np.inf, -np.inf, np.nan])
        out = BFLOAT16.round(x)
        assert out[0] == 0.0 and np.isinf(out[1]) and np.isinf(out[2]) and np.isnan(out[3])

    def test_round_complex(self):
        z = np.array([1.2345678 + 2.3456789j])
        out = SINGLE.round_complex(z)
        assert out[0].real == np.float32(1.2345678)
        assert out[0].imag == np.float32(2.3456789)

    def test_round_to_precision_dispatch(self):
        assert round_to_precision(np.pi, "bf16") != np.pi
        assert round_to_precision(np.pi, "fp64") == np.pi

    def test_chop_mantissa_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            chop_mantissa(1.0, 0)


class TestChopMantissaProperties:
    @given(st.floats(min_value=-1e10, max_value=1e10, allow_nan=False,
                     allow_infinity=False).filter(lambda v: v != 0.0),
           st.integers(min_value=3, max_value=40))
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bounded_by_epsilon(self, value, bits):
        rounded = float(chop_mantissa(value, bits))
        assert abs(rounded - value) <= 2.0**-bits * abs(value) * (1 + 1e-12)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                     allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, value):
        once = chop_mantissa(value, 8)
        twice = chop_mantissa(once, 8)
        np.testing.assert_array_equal(once, twice)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_sign_symmetry(self, value):
        assert float(chop_mantissa(-value, 7)) == -float(chop_mantissa(value, 7))
