"""Tests for norms, condition estimation, iterative methods and Thomas solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConvergenceError, DimensionError
from repro.linalg import (
    condition_number,
    conjugate_gradient,
    estimate_condition_number,
    estimate_spectral_norm,
    forward_error,
    jacobi,
    poisson_1d_matrix,
    power_iteration,
    random_matrix_with_condition_number,
    random_spd_matrix,
    relative_forward_error,
    scaled_residual,
    spectral_norm,
    thomas_solve,
)


class TestNorms:
    def test_scaled_residual_zero_for_exact(self, rng):
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        x = rng.standard_normal(5)
        assert scaled_residual(a, x, a @ x) <= 1e-14

    def test_scaled_residual_invariant_under_scaling(self, rng):
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        x = rng.standard_normal(5)
        b = rng.standard_normal(5)
        omega = scaled_residual(a, x, b)
        assert scaled_residual(7.3 * a, x, 7.3 * b) == pytest.approx(omega)

    def test_scaled_residual_rejects_zero_rhs(self):
        with pytest.raises(ZeroDivisionError):
            scaled_residual(np.eye(2), [1.0, 1.0], [0.0, 0.0])

    def test_forward_errors(self):
        assert forward_error([1.0, 0.0], [0.0, 0.0]) == pytest.approx(1.0)
        assert relative_forward_error([2.0, 0.0], [1.0, 0.0]) == pytest.approx(0.5)

    def test_spectral_norm(self):
        assert spectral_norm(np.diag([3.0, -7.0])) == pytest.approx(7.0)

    def test_equation_5_bounds(self, rng):
        """ω/κ <= relative forward error <= κ ω (Eq. 5 of the paper)."""
        a = random_matrix_with_condition_number(8, 20.0, rng=rng)
        x_true = rng.standard_normal(8)
        b = a @ x_true
        x_approx = x_true + 1e-6 * rng.standard_normal(8)
        omega = scaled_residual(a, x_approx, b)
        err = relative_forward_error(x_true, x_approx)
        kappa = condition_number(a)
        assert omega / kappa <= err * (1 + 1e-8)
        assert err <= kappa * omega * (1 + 1e-8)


class TestConditionEstimation:
    def test_exact_condition_number(self):
        a = np.diag([1.0, 0.1, 0.01])
        assert condition_number(a) == pytest.approx(100.0)

    def test_singular_matrix_infinite(self):
        assert condition_number(np.diag([1.0, 0.0])) == np.inf

    def test_spectral_norm_estimate(self, rng):
        a = random_matrix_with_condition_number(12, 30.0, rng=rng)
        assert estimate_spectral_norm(a, rng=rng) == pytest.approx(np.linalg.norm(a, 2),
                                                                   rel=1e-6)

    @pytest.mark.parametrize("kappa", [2.0, 50.0, 500.0])
    def test_condition_estimate_accurate(self, kappa, rng):
        a = random_matrix_with_condition_number(12, kappa, rng=rng)
        estimate = estimate_condition_number(a, rng=rng)
        assert estimate == pytest.approx(kappa, rel=1e-3)

    def test_safety_factor(self, rng):
        a = random_matrix_with_condition_number(8, 10.0, rng=rng)
        padded = estimate_condition_number(a, rng=rng, safety_factor=1.5)
        assert padded == pytest.approx(15.0, rel=1e-3)


class TestIterativeMethods:
    def test_cg_on_spd(self, rng):
        a = random_spd_matrix(12, 20.0, rng=rng)
        b = rng.standard_normal(12)
        result = conjugate_gradient(a, b, tolerance=1e-12)
        assert result.converged
        np.testing.assert_allclose(a @ result.x, b, atol=1e-8)

    def test_cg_rejects_indefinite(self, rng):
        a = np.diag([1.0, -1.0, 2.0])
        with pytest.raises(ConvergenceError):
            conjugate_gradient(a, np.ones(3))

    def test_cg_zero_rhs(self):
        result = conjugate_gradient(np.eye(4), np.zeros(4))
        assert result.converged and np.all(result.x == 0)

    def test_jacobi_on_diagonally_dominant(self, rng):
        a = rng.standard_normal((8, 8)) + 10 * np.eye(8)
        b = rng.standard_normal(8)
        result = jacobi(a, b, tolerance=1e-10)
        assert result.converged
        np.testing.assert_allclose(a @ result.x, b, atol=1e-7)

    def test_jacobi_history_monotone_tail(self, rng):
        a = rng.standard_normal((6, 6)) + 10 * np.eye(6)
        result = jacobi(a, rng.standard_normal(6), tolerance=1e-12)
        assert result.history[-1] <= result.history[0]

    def test_power_iteration_dominant_eigenvalue(self):
        a = np.diag([5.0, 2.0, 1.0])
        value, vector = power_iteration(a, rng=0)
        assert value == pytest.approx(5.0, rel=1e-8)
        assert abs(vector[0]) == pytest.approx(1.0, rel=1e-6)

    def test_power_iteration_callable(self):
        mat = np.diag([4.0, 1.0])
        value, _ = power_iteration(lambda v: mat @ v, 2, rng=1)
        assert value == pytest.approx(4.0, rel=1e-8)

    def test_power_iteration_requires_dimension_for_callable(self):
        with pytest.raises(ValueError):
            power_iteration(lambda v: v, None)


class TestThomas:
    def test_matches_dense_solve(self):
        a = poisson_1d_matrix(10)
        b = np.linspace(0, 1, 10)
        np.testing.assert_allclose(thomas_solve(a, b), np.linalg.solve(a, b), atol=1e-8)

    def test_accepts_diagonal_tuple(self):
        n = 6
        lower = -np.ones(n - 1)
        diag = 2 * np.ones(n)
        upper = -np.ones(n - 1)
        a = poisson_1d_matrix(n, scaled=False)
        b = np.arange(1.0, n + 1)
        np.testing.assert_allclose(thomas_solve((lower, diag, upper), b),
                                   np.linalg.solve(a, b), atol=1e-10)

    def test_rejects_non_tridiagonal(self, rng):
        with pytest.raises(DimensionError):
            thomas_solve(rng.standard_normal((5, 5)), np.ones(5))

    def test_single_element(self):
        np.testing.assert_allclose(thomas_solve(np.array([[4.0]]), [8.0]), [2.0])

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_property_poisson_any_size(self, n):
        a = poisson_1d_matrix(n, scaled=False)
        x_true = np.sin(np.arange(n) + 1.0)
        b = a @ x_true
        np.testing.assert_allclose(thomas_solve(a, b), x_true, atol=1e-8)
