"""Tests for measurement, sampling and post-selection."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.quantum import (
    QuantumCircuit,
    Statevector,
    apply_circuit,
    marginal_probabilities,
    postselect,
    probabilities,
    sample_counts,
)
from repro.quantum.measurement import expectation_value


@pytest.fixture()
def bell_state():
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.cx(0, 1)
    return apply_circuit(qc)


class TestProbabilities:
    def test_bell_probabilities(self, bell_state):
        np.testing.assert_allclose(probabilities(bell_state), [0.5, 0, 0, 0.5], atol=1e-12)

    def test_zero_state_rejected(self):
        with pytest.raises(ZeroDivisionError):
            probabilities(Statevector(np.zeros(2)))

    def test_marginal_single_qubit(self, bell_state):
        np.testing.assert_allclose(marginal_probabilities(bell_state, [0]), [0.5, 0.5])

    def test_marginal_order_matters(self):
        # state |01>: qubit 0 = 0, qubit 1 = 1
        state = Statevector([0, 1, 0, 0])
        np.testing.assert_allclose(marginal_probabilities(state, [0, 1]), [0, 1, 0, 0])
        np.testing.assert_allclose(marginal_probabilities(state, [1, 0]), [0, 0, 1, 0])

    def test_marginal_duplicate_rejected(self, bell_state):
        with pytest.raises(DimensionError):
            marginal_probabilities(bell_state, [0, 0])


class TestSampling:
    def test_counts_sum_to_shots(self, bell_state):
        result = sample_counts(bell_state, 500, rng=0)
        assert sum(result.counts.values()) == 500
        assert result.shots == 500

    def test_only_correlated_outcomes(self, bell_state):
        result = sample_counts(bell_state, 200, rng=1)
        assert set(result.counts).issubset({0, 3})

    def test_frequencies_approximate_probabilities(self, bell_state):
        result = sample_counts(bell_state, 20_000, rng=2)
        freq = result.frequencies()
        assert freq[0] == pytest.approx(0.5, abs=0.02)

    def test_subset_of_qubits(self, bell_state):
        result = sample_counts(bell_state, 100, qubits=[1], rng=3)
        assert result.num_qubits == 1
        assert set(result.counts).issubset({0, 1})

    def test_most_frequent(self):
        state = Statevector([np.sqrt(0.9), np.sqrt(0.1)])
        result = sample_counts(state, 1000, rng=4)
        assert result.most_frequent() == 0

    def test_invalid_shots(self, bell_state):
        with pytest.raises(ValueError):
            sample_counts(bell_state, 0)


class TestPostselect:
    def test_bell_postselect_first_qubit(self, bell_state):
        reduced, prob = postselect(bell_state, [0], 0)
        assert prob == pytest.approx(0.5)
        np.testing.assert_allclose(reduced.data, [1.0, 0.0], atol=1e-12)

    def test_unnormalised_norm_encodes_probability(self, bell_state):
        reduced, prob = postselect(bell_state, [0], 1, renormalize=False)
        assert reduced.norm() ** 2 == pytest.approx(prob)

    def test_outcome_as_bit_sequence(self, bell_state):
        reduced, prob = postselect(bell_state, [0, 1], [1, 1])
        assert prob == pytest.approx(0.5)

    def test_impossible_outcome_raises(self, bell_state):
        with pytest.raises(ZeroDivisionError):
            postselect(bell_state, [0, 1], [0, 1])

    def test_outcome_length_mismatch(self, bell_state):
        with pytest.raises(DimensionError):
            postselect(bell_state, [0], [1, 0])


class TestExpectationValue:
    def test_z_expectation(self):
        plus = Statevector([1.0, 1.0])
        z = np.diag([1.0, -1.0])
        assert expectation_value(plus, z) == pytest.approx(0.0, abs=1e-12)
        assert expectation_value(Statevector([1.0, 0.0]), z) == pytest.approx(1.0)

    def test_dimension_check(self):
        with pytest.raises(DimensionError):
            expectation_value(Statevector([1.0, 0.0]), np.eye(4))
