"""Unit tests for repro.utils.rng and repro.utils.timing."""

import numpy as np
import pytest

from repro.utils import Timer, as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_reproducible(self):
        a = as_generator(5).standard_normal(3)
        b = as_generator(5).standard_normal(3)
        np.testing.assert_allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen


class TestSpawnGenerators:
    def test_count(self):
        children = spawn_generators(3, 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        children = spawn_generators(3, 2)
        a = children[0].standard_normal(10)
        b = children[1].standard_normal(10)
        assert not np.allclose(a, b)

    def test_reproducible_from_seed(self):
        a = spawn_generators(11, 3)[2].standard_normal(5)
        b = spawn_generators(11, 3)[2].standard_normal(5)
        np.testing.assert_allclose(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestTimer:
    def test_elapsed_positive(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed >= 0.0

    def test_restart_resets(self):
        t = Timer()
        with t:
            pass
        t.restart()
        assert t.elapsed == 0.0
