"""Tests for gate decompositions (Toffoli, MCX, multiplexed rotations)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.quantum import QuantumCircuit, circuit_unitary
from repro.quantum.decompositions import (
    gray_code,
    mcx_circuit,
    multiplexed_ry_circuit,
    multiplexed_rz_circuit,
    multiplexor_matrix,
    toffoli_circuit,
)


class TestGrayCode:
    def test_first_values(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_adjacent_codes_differ_by_one_bit(self):
        for i in range(63):
            assert bin(gray_code(i) ^ gray_code(i + 1)).count("1") == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)


class TestToffoli:
    def test_matches_ccx_up_to_global_phase(self):
        decomposed = circuit_unitary(toffoli_circuit())
        reference = QuantumCircuit(3)
        reference.ccx(0, 1, 2)
        expected = circuit_unitary(reference)
        phase = decomposed[0, 0] / expected[0, 0]
        np.testing.assert_allclose(decomposed, phase * expected, atol=1e-12)

    def test_t_count_is_seven(self):
        counts = toffoli_circuit().count_gates()
        assert counts.get("t", 0) + counts.get("tdg", 0) == 7
        assert counts.get("cx", 0) == 6


class TestMCX:
    @pytest.mark.parametrize("num_controls", [1, 2, 3, 4, 5])
    def test_action_with_clean_ancillas(self, num_controls):
        circuit = mcx_circuit(num_controls)
        unitary = circuit_unitary(circuit)
        num_ancillas = circuit.num_qubits - num_controls - 1
        for bits in itertools.product([0, 1], repeat=num_controls + 1):
            controls, target = bits[:-1], bits[-1]
            in_index = 0
            for bit in (*controls, target, *([0] * num_ancillas)):
                in_index = (in_index << 1) | bit
            target_out = target ^ int(all(controls))
            out_index = 0
            for bit in (*controls, target_out, *([0] * num_ancillas)):
                out_index = (out_index << 1) | bit
            assert abs(unitary[out_index, in_index] - 1.0) < 1e-10

    def test_zero_controls_rejected(self):
        with pytest.raises(DimensionError):
            mcx_circuit(0)

    def test_toffoli_count_scaling(self):
        counts = mcx_circuit(6).count_gates()
        assert counts.get("mcx(2)", 0) == 2 * (6 - 2) + 1


class TestMultiplexedRotations:
    @pytest.mark.parametrize("rotation,builder", [("ry", multiplexed_ry_circuit),
                                                  ("rz", multiplexed_rz_circuit)])
    @pytest.mark.parametrize("num_controls", [1, 2, 3])
    def test_matches_block_diagonal_reference(self, rotation, builder, num_controls, rng):
        angles = rng.uniform(-np.pi, np.pi, 2**num_controls)
        controls = list(range(num_controls))
        target = num_controls
        circuit = builder(angles, controls=controls, target=target)
        np.testing.assert_allclose(circuit_unitary(circuit),
                                   multiplexor_matrix(rotation, angles), atol=1e-10)

    def test_gate_budget(self):
        angles = np.linspace(0.1, 0.8, 8)
        circuit = multiplexed_ry_circuit(angles, controls=[0, 1, 2], target=3)
        counts = circuit.count_gates()
        # 2^k rotations and 2^(k+1) - 2 CNOTs for the recursive construction
        assert counts["ry"] == 8 and counts["cx"] == 14

    def test_angle_count_validation(self):
        with pytest.raises(DimensionError):
            multiplexed_ry_circuit([0.1, 0.2, 0.3], controls=[0, 1], target=2)

    def test_unknown_rotation_in_reference(self):
        with pytest.raises(ValueError):
            multiplexor_matrix("rx-bogus", [0.1, 0.2])

    @given(st.lists(st.floats(min_value=-3.0, max_value=3.0), min_size=2, max_size=2))
    @settings(max_examples=25, deadline=None)
    def test_property_single_control_ry(self, angles):
        circuit = multiplexed_ry_circuit(angles, controls=[0], target=1)
        np.testing.assert_allclose(circuit_unitary(circuit),
                                   multiplexor_matrix("ry", angles), atol=1e-9)
