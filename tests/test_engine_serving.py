"""Serving-layer tests: shared-memory hand-off, synthesis store, async coalescing.

The serving layer's contract is that none of its shortcuts can change
answers, only costs:

(a) shared-memory segments carry exact bytes, are read-only in workers, and
    are unlinked deterministically (normal exit, error exit, explicit close);
(b) a solver restored from the persistent store solves identically (1e-12)
    to a freshly compiled one, and corrupt/mismatched entries silently fall
    back to recompilation;
(c) the async front end coalesces concurrent same-fingerprint requests into
    one fused sweep without changing any result, and propagates shared-sweep
    failures to every member of the group;
(d) runner telemetry surfaces the per-worker cache/store counters that
    previously died inside the worker processes.
"""

from __future__ import annotations

import asyncio
import os
import pathlib

import numpy as np
import pytest

from repro.core import QSVTLinearSolver
from repro.engine import (
    AsyncSolveEngine,
    CompiledSolverCache,
    ScenarioRunner,
    SharedMatrixRegistry,
    SolveJob,
    SynthesisStore,
    attach_matrix,
    build_scenario,
    detach_all,
    default_store_path,
)
from repro.engine import runner as runner_module
from repro.engine import store as store_module
from repro.linalg import random_matrix_with_condition_number, random_rhs


def _segment_gone(name: str) -> bool:
    """Whether the shared-memory segment ``name`` no longer exists."""
    shm_dir = pathlib.Path("/dev/shm")
    if shm_dir.is_dir():
        return not (shm_dir / name).exists()
    # non-tmpfs platforms: attaching is the only probe we have
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


# ---------------------------------------------------------------------- #
# (a) shared-memory segment lifecycle
# ---------------------------------------------------------------------- #
def test_publish_attach_roundtrip_and_dedup(rng):
    matrix = rng.standard_normal((8, 8))
    registry = SharedMatrixRegistry()
    try:
        handle = registry.publish(matrix)
        assert handle.shape == (8, 8) and handle.nbytes == matrix.nbytes
        # equal-bytes copy deduplicates onto the same segment
        again = registry.publish(matrix.copy())
        assert again == handle
        assert registry.stats()["segments"] == 1
        assert registry.stats()["copies_saved"] == 1

        view = attach_matrix(handle)
        np.testing.assert_array_equal(view, matrix)
        with pytest.raises(ValueError):
            view[0, 0] = 1.0          # workers get read-only views
        # attaching twice reuses the per-process mapping
        assert attach_matrix(handle) is view
    finally:
        detach_all()
        registry.close()
    assert _segment_gone(handle.segment)


def test_refcounted_release_then_unlink(rng):
    matrix = rng.standard_normal((4, 4))
    registry = SharedMatrixRegistry()
    handle = registry.publish(matrix)
    registry.publish(matrix)                   # refcount 2
    assert registry.release(handle) is False   # still referenced
    assert not _segment_gone(handle.segment)
    assert registry.release(handle) is True    # last reference -> unlink
    assert _segment_gone(handle.segment)
    assert registry.release(handle) is False   # unknown now: no-op
    registry.close()


def test_registry_context_manager_unlinks_on_error(rng):
    matrix = rng.standard_normal((4, 4))
    with pytest.raises(RuntimeError, match="boom"):
        with SharedMatrixRegistry() as registry:
            handle = registry.publish(matrix)
            raise RuntimeError("boom")
    assert _segment_gone(handle.segment)
    # closed registries refuse new segments instead of leaking them
    with pytest.raises(RuntimeError):
        registry.publish(matrix)
    registry.close()  # idempotent


def test_runner_shared_memory_matches_pickle_and_serial():
    jobs = build_scenario("kappa-sweep", dimension=8, kappas=(2.0, 5.0, 8.0),
                          epsilon_l=5e-2, backend="ideal", rng=4).jobs
    serial = ScenarioRunner(mode="serial").run(jobs)
    with ScenarioRunner(mode="process", max_workers=2,
                        use_shared_memory=True) as runner:
        shared = runner.run(jobs)
        names = runner._registry.segment_names()
        assert len(names) == 3                     # one segment per matrix
    pickled = ScenarioRunner(mode="process", max_workers=2,
                             use_shared_memory=False).run(jobs)
    for name in names:
        assert _segment_gone(name)                 # context exit unlinked all
    for share, pick, ser in zip(shared, pickled, serial):
        assert share.ok and pick.ok and ser.ok
        np.testing.assert_allclose(share.x, ser.x, atol=1e-12, rtol=0)
        np.testing.assert_allclose(pick.x, ser.x, atol=1e-12, rtol=0)
    assert shared.summary["shared_memory"]["segments"] == 3
    assert pickled.summary["shared_memory"] is None


def test_runner_without_context_cleans_up_per_run():
    jobs = build_scenario("poisson-multi-rhs", num_points=8, num_rhs=3,
                          epsilon_l=5e-2, backend="ideal", rng=5).jobs
    runner = ScenarioRunner(mode="process", max_workers=2)
    report = runner.run(jobs)
    assert all(result.ok for result in report)
    # one matrix object across three jobs -> one publish, one segment
    # (the identity memo keeps even the content hash to one per matrix)
    stats = report.summary["shared_memory"]
    assert stats["segments"] == 1 and stats["copies"] == 1
    assert stats["publishes"] == 1
    assert runner._registry is None


def test_solve_job_requires_matrix_or_handle():
    job = SolveJob(name="empty", matrix=None, rhs=np.ones(4))
    result = ScenarioRunner(mode="serial").run([job])[0]
    assert not result.ok and "ValueError" in result.error


# ---------------------------------------------------------------------- #
# (b) persistent synthesis store
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["circuit", "ideal"])
def test_store_roundtrip_matches_fresh_compile(tmp_path, backend):
    matrix = random_matrix_with_condition_number(8, 4.0, rng=42)
    rhs = random_rhs(8, rng=1)
    store = SynthesisStore(tmp_path)

    warmer = CompiledSolverCache(store=store)
    compiled = warmer.solver(matrix, epsilon_l=5e-2, backend=backend)
    assert warmer.stats()["compiles"] == 1 and len(store) == 1

    fresh = CompiledSolverCache(store=store)
    restored = fresh.solver(matrix, epsilon_l=5e-2, backend=backend)
    stats = fresh.stats()
    assert stats["compiles"] == 0 and stats["store_hits"] == 1
    assert restored is not compiled
    np.testing.assert_allclose(restored.solve(rhs).x, compiled.solve(rhs).x,
                               atol=1e-12, rtol=0)
    # the restored solver is a full citizen: fingerprinted, sized, described
    assert not restored.is_stale()
    assert restored.payload_bytes() == compiled.payload_bytes()
    assert restored.describe()["backend"] == compiled.describe()["backend"]
    # second lookup through the same cache is a plain in-memory hit
    assert fresh.solver(matrix, epsilon_l=5e-2, backend=backend) is restored
    assert fresh.stats()["hits"] == 1


def test_solver_payload_roundtrip_without_store():
    matrix = random_matrix_with_condition_number(8, 4.0, rng=7)
    rhs = random_rhs(8, rng=8)
    solver = QSVTLinearSolver(matrix, epsilon_l=5e-2, backend="ideal")
    restored = QSVTLinearSolver.from_payload(solver.export_payload())
    np.testing.assert_allclose(restored.solve(rhs).x, solver.solve(rhs).x,
                               atol=1e-12, rtol=0)
    np.testing.assert_allclose(
        [r.x for r in restored.solve_batch(np.stack([rhs, 2 * rhs]))],
        [r.x for r in solver.solve_batch(np.stack([rhs, 2 * rhs]))],
        atol=1e-12, rtol=0)


def test_store_corruption_falls_back_to_recompilation(tmp_path):
    matrix = random_matrix_with_condition_number(8, 4.0, rng=9)
    store = SynthesisStore(tmp_path)
    CompiledSolverCache(store=store).solver(matrix, epsilon_l=5e-2, backend="ideal")
    entry = next(pathlib.Path(tmp_path).glob("*.npz"))
    entry.write_bytes(b"this is not an npz archive")

    cache = CompiledSolverCache(store=store)
    solver = cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
    assert cache.stats()["compiles"] == 1      # fell back to synthesis
    assert store.stats()["corrupt"] == 1
    assert not solver.is_stale()
    # the corrupt entry was deleted and replaced by the recompilation
    assert len(store) == 1
    fresh = CompiledSolverCache(store=store)
    fresh.solver(matrix, epsilon_l=5e-2, backend="ideal")
    assert fresh.stats()["store_hits"] == 1


def test_store_version_mismatch_is_a_miss(tmp_path, monkeypatch):
    matrix = random_matrix_with_condition_number(8, 4.0, rng=10)
    store = SynthesisStore(tmp_path)
    CompiledSolverCache(store=store).solver(matrix, epsilon_l=5e-2, backend="ideal")
    monkeypatch.setattr(store_module, "FORMAT_VERSION", 999)
    cache = CompiledSolverCache(store=store)
    cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
    assert cache.stats()["compiles"] == 1 and cache.stats()["store_hits"] == 0
    assert store.stats()["corrupt"] == 0       # a miss, not a corruption


def test_store_key_separates_configurations(tmp_path):
    matrix = random_matrix_with_condition_number(8, 4.0, rng=11)
    store = SynthesisStore(tmp_path)
    cache = CompiledSolverCache(store=store)
    cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
    cache.solver(matrix, epsilon_l=1e-2, backend="ideal")
    cache.solver(matrix + 1.0, epsilon_l=5e-2, backend="ideal")
    assert len(store) == 3
    assert store.key_for(matrix, epsilon_l=5e-2, backend="ideal") != \
        store.key_for(matrix, epsilon_l=1e-2, backend="ideal")
    assert store.disk_bytes() > 0
    assert store.clear() == 3 and len(store) == 0


def test_store_hits_for_non_float64_matrices(tmp_path):
    # the cache key fingerprints the caller's bytes (any dtype); the solver
    # compiles a float64 copy.  The store must verify entries against the
    # *key* fingerprint, or integer/float32 matrices would never hit and
    # every load would flag phantom corruption.
    matrix = np.diag([4, 3, 2, 1])                 # int64
    store = SynthesisStore(tmp_path)
    CompiledSolverCache(store=store).solver(matrix, epsilon_l=5e-2,
                                            backend="ideal", kappa=4.0)
    cache = CompiledSolverCache(store=store)
    solver = cache.solver(matrix, epsilon_l=5e-2, backend="ideal", kappa=4.0)
    stats = cache.stats()
    assert stats["store_hits"] == 1 and stats["compiles"] == 0
    assert store.stats()["corrupt"] == 0 and len(store) == 1
    rhs = random_rhs(4, rng=14)
    np.testing.assert_allclose(
        solver.solve(rhs).x, np.linalg.solve(matrix, rhs), atol=0.5)


def test_store_skips_unexportable_backends(tmp_path):
    matrix = random_matrix_with_condition_number(4, 3.0, rng=12)
    store = SynthesisStore(tmp_path)
    cache = CompiledSolverCache(store=store)
    solver = cache.solver(matrix, epsilon_l=5e-2, backend="exact")
    assert solver is not None and len(store) == 0


def test_store_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv(store_module.STORE_ENV_VAR, str(tmp_path / "override"))
    assert default_store_path() == tmp_path / "override"
    assert SynthesisStore().path == tmp_path / "override"
    monkeypatch.delenv(store_module.STORE_ENV_VAR)
    assert default_store_path().name == "synthesis"


def test_runner_store_skips_synthesis_in_fresh_workers(tmp_path):
    jobs = build_scenario("kappa-sweep", dimension=8, kappas=(2.0, 5.0),
                          epsilon_l=5e-2, backend="ideal", rng=13).jobs
    store = SynthesisStore(tmp_path)
    first = ScenarioRunner(mode="process", max_workers=2, store=store).run(jobs)
    assert all(result.ok for result in first)
    assert len(store) == 2
    # brand-new runner, brand-new worker processes: all restores, no compiles
    second = ScenarioRunner(mode="process", max_workers=2, store=store).run(jobs)
    assert all(result.ok for result in second)
    aggregated = second.summary["cache"]
    assert aggregated["compiles"] == 0
    assert aggregated["store_hits"] == len(jobs)
    for a, b in zip(first, second):
        np.testing.assert_allclose(a.x, b.x, atol=1e-12, rtol=0)


# ---------------------------------------------------------------------- #
# (c) async coalescing front end
# ---------------------------------------------------------------------- #
def test_async_coalesces_same_fingerprint_requests():
    matrix = random_matrix_with_condition_number(8, 4.0, rng=20)
    batch = [random_rhs(8, rng=seed) for seed in range(6)]

    async def main():
        async with AsyncSolveEngine() as engine:
            records = await asyncio.gather(
                *[engine.solve(matrix, rhs, epsilon_l=5e-2, backend="ideal")
                  for rhs in batch])
            return records, engine.stats(), engine.cache

    records, stats, cache = asyncio.run(main())
    assert stats["requests"] == 6
    assert stats["batches"] == 1               # one fused sweep for the burst
    assert stats["largest_batch"] == 6
    assert cache.stats()["compiles"] == 1      # and one synthesis
    reference = cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
    for record, rhs in zip(records, batch):
        np.testing.assert_allclose(record.x, reference.solve(rhs).x,
                                   atol=1e-12, rtol=0)


def test_async_groups_by_fingerprint_and_configuration():
    matrix_a = random_matrix_with_condition_number(8, 4.0, rng=21)
    matrix_b = random_matrix_with_condition_number(8, 6.0, rng=22)
    rhs = random_rhs(8, rng=23)

    async def main():
        async with AsyncSolveEngine() as engine:
            await asyncio.gather(
                engine.solve(matrix_a, rhs, epsilon_l=5e-2, backend="ideal"),
                engine.solve(matrix_a, rhs, epsilon_l=5e-2, backend="ideal"),
                engine.solve(matrix_b, rhs, epsilon_l=5e-2, backend="ideal"),
                engine.solve(matrix_a, rhs, epsilon_l=1e-2, backend="ideal"))
            return engine.stats()

    stats = asyncio.run(main())
    # (A, 5e-2) coalesces; (B, 5e-2) and (A, 1e-2) are their own groups
    assert stats["requests"] == 4 and stats["batches"] == 3
    assert stats["coalesced_requests"] == 1


def test_async_max_batch_size_seals_groups():
    matrix = random_matrix_with_condition_number(8, 4.0, rng=24)
    batch = [random_rhs(8, rng=seed) for seed in range(7)]

    async def main():
        async with AsyncSolveEngine(max_batch_size=3) as engine:
            await asyncio.gather(
                *[engine.solve(matrix, rhs, epsilon_l=5e-2, backend="ideal")
                  for rhs in batch])
            return engine.stats()

    stats = asyncio.run(main())
    assert stats["batches"] == 3               # 3 + 3 + 1
    assert stats["largest_batch"] == 3


def test_async_full_group_flushes_before_window_expires():
    # a sealed (full) group must fire immediately, not wait out the window
    matrix = random_matrix_with_condition_number(8, 4.0, rng=27)
    batch = [random_rhs(8, rng=seed) for seed in range(2)]

    async def main():
        async with AsyncSolveEngine(max_batch_size=2,
                                    coalesce_window=30.0) as engine:
            records = await asyncio.wait_for(
                asyncio.gather(*[
                    engine.solve(matrix, rhs, epsilon_l=5e-2, backend="ideal")
                    for rhs in batch]),
                timeout=5.0)                       # << the 30 s window
            return records, engine.stats()

    records, stats = asyncio.run(main())
    assert len(records) == 2 and stats["batches"] == 1


def test_async_sequential_requests_still_answer():
    matrix = random_matrix_with_condition_number(8, 4.0, rng=25)
    batch = [random_rhs(8, rng=seed) for seed in range(3)]

    async def main():
        async with AsyncSolveEngine() as engine:
            records = []
            for rhs in batch:                  # awaited one at a time
                records.append(await engine.solve(matrix, rhs, epsilon_l=5e-2,
                                                  backend="ideal"))
            return records, engine.stats()

    records, stats = asyncio.run(main())
    assert stats["batches"] == 3 and stats["coalesced_requests"] == 0
    assert all(record.scaled_residual <= 5e-2 for record in records)


def test_async_failures_propagate_to_every_group_member():
    singular = np.zeros((8, 8))
    rhs = random_rhs(8, rng=26)

    async def main():
        async with AsyncSolveEngine() as engine:
            return await asyncio.gather(
                *[engine.solve(singular, rhs, epsilon_l=5e-2, backend="ideal")
                  for _ in range(3)],
                return_exceptions=True)

    results = asyncio.run(main())
    assert len(results) == 3
    assert all(isinstance(result, Exception) for result in results)


def test_async_engine_validates_parameters():
    with pytest.raises(ValueError):
        AsyncSolveEngine(max_batch_size=0)
    with pytest.raises(ValueError):
        AsyncSolveEngine(coalesce_window=-1.0)
    with pytest.raises(ValueError):
        AsyncSolveEngine(max_concurrency=0)


# ---------------------------------------------------------------------- #
# (d) runner telemetry and worker thread pinning
# ---------------------------------------------------------------------- #
def test_run_report_summary_serial_mode():
    jobs = build_scenario("poisson-multi-rhs", num_points=8, num_rhs=4,
                          epsilon_l=5e-2, backend="ideal", rng=30).jobs
    report = ScenarioRunner(mode="serial").run(jobs)
    assert isinstance(report, list) and len(report) == 4
    summary = report.summary
    assert summary["jobs"] == 4 and summary["ok"] == 4 and summary["failed"] == 0
    assert summary["jobs_per_sec"] > 0
    # one matrix, four jobs: the shared cache saw 1 compile + 3 hits
    assert summary["cache"]["compiles"] == 1 and summary["cache"]["hits"] == 3
    assert "plan_cache" in summary
    empty = ScenarioRunner(mode="serial").run([])
    assert empty == [] and empty.summary["jobs"] == 0


def test_run_report_summary_process_mode_aggregates_workers():
    jobs = build_scenario("poisson-multi-rhs", num_points=8, num_rhs=6,
                          epsilon_l=5e-2, backend="ideal", rng=31).jobs
    report = ScenarioRunner(mode="process", max_workers=2).run(jobs)
    summary = report.summary
    assert 1 <= summary["workers"] <= 2
    aggregated = summary["cache"]
    # every job is exactly one lookup in some worker's cache
    assert aggregated["hits"] + aggregated["misses"] == 6
    # one distinct matrix: at most one compile per worker
    assert 1 <= aggregated["compiles"] <= summary["workers"]
    assert set(summary["worker_cache_stats"]) == {
        result.worker["pid"] for result in report}


def test_thread_pinning_initializer_and_validation(monkeypatch):
    for var in runner_module._THREAD_ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    runner_module._limit_worker_threads(3)
    for var in runner_module._THREAD_ENV_VARS:
        assert os.environ[var] == "3"
    for var in runner_module._THREAD_ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    runner_module._limit_worker_threads(None)   # no-op
    assert runner_module._THREAD_ENV_VARS[0] not in os.environ
    with pytest.raises(ValueError):
        ScenarioRunner(threads_per_worker=0)
    assert ScenarioRunner(threads_per_worker=None).threads_per_worker is None


def test_pinned_thread_env_restores_parent_environment(monkeypatch):
    var = runner_module._THREAD_ENV_VARS[0]
    monkeypatch.setenv(var, "7")
    with runner_module._pinned_thread_env(2):
        assert os.environ[var] == "2"
    assert os.environ[var] == "7"
    monkeypatch.delenv(var)
    with runner_module._pinned_thread_env(2):
        assert os.environ[var] == "2"
    assert var not in os.environ


def test_process_mode_with_pinned_threads_matches_serial():
    jobs = build_scenario("kappa-sweep", dimension=8, kappas=(2.0, 5.0),
                          epsilon_l=5e-2, backend="ideal", rng=32).jobs
    serial = ScenarioRunner(mode="serial").run(jobs)
    pinned = ScenarioRunner(mode="process", max_workers=2,
                            threads_per_worker=2).run(jobs)
    assert pinned.summary["threads_per_worker"] == 2
    for par, ser in zip(pinned, serial):
        assert par.ok and ser.ok
        np.testing.assert_allclose(par.x, ser.x, atol=1e-12, rtol=0)
