"""Structured operators: storage, application, bounds, solves, transport.

Covers the PR-5 tentpole — the `repro.linalg.operators` layer and its
threading through the solver stack:

* matvec / matmat / ``@`` agreement with dense references for every form;
* exact extreme-eigenvalue bounds (closed-form tridiagonal Toeplitz,
  Kronecker sums, affine shifts) against ``eigvalsh``;
* structure-exploiting classical solves to machine precision;
* fingerprint distinctness (banded vs CSR vs dense) and stability;
* the ideal backend's matrix-free route vs the dense SVD route (1e-12);
* engine integration: compiled-solver cache byte accounting, shared-memory
  round trips, end-to-end structured scenarios, dense-wall refusal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.qsvt_solver import QSVTLinearSolver
from repro.core.refinement import MixedPrecisionRefinement
from repro.engine import CompiledSolverCache, ScenarioRunner, build_scenario
from repro.engine.sharedmem import SharedMatrixRegistry, attach_matrix, detach_all
from repro.linalg import (
    BandedOperator,
    CSROperator,
    DiagonalShiftOperator,
    KroneckerSumOperator,
    condition_number,
    is_structured_operator,
    operator_from_state,
    tridiagonal_toeplitz,
)
from repro.utils import Registry, matrix_fingerprint, payload_nbytes


def _poisson_operator(n: int, dims: int = 2) -> KroneckerSumOperator:
    return KroneckerSumOperator([tridiagonal_toeplitz(n, 2.0, -1.0)] * dims,
                                scale=float((n + 1) ** 2))


# ---------------------------------------------------------------------- #
# application + storage
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("make", [
    lambda: BandedOperator.toeplitz(12, {0: 2.0, 1: -1.0, -1: -1.0}),
    lambda: CSROperator.from_dense(tridiagonal_toeplitz(12, 2.0, -1.0)),
    lambda: KroneckerSumOperator([tridiagonal_toeplitz(4, 2.0, -1.0)] * 2,
                                 scale=3.0),
    lambda: DiagonalShiftOperator(
        CSROperator.from_dense(tridiagonal_toeplitz(12, 2.0, -1.0)),
        shift=0.7, scale=2.0),
])
def test_matvec_matmat_match_dense(make):
    operator = make()
    dense = operator.to_dense()
    rng = np.random.default_rng(0)
    x = rng.standard_normal(operator.shape[0])
    block = rng.standard_normal((operator.shape[0], 3))
    np.testing.assert_allclose(operator @ x, dense @ x, atol=1e-12)
    np.testing.assert_allclose(operator @ block, dense @ block, atol=1e-12)
    assert operator.nnz_bytes() < dense.nbytes
    assert payload_nbytes(operator) == operator.nnz_bytes()
    assert is_structured_operator(operator)


def test_structured_storage_is_immutable():
    operator = BandedOperator.toeplitz(8, {0: 2.0, 1: -1.0, -1: -1.0})
    with pytest.raises(ValueError):
        operator.band(0)[0] = 99.0
    source = np.ones(8)
    csr = CSROperator.from_coo([0], [0], [1.0], 8)
    with pytest.raises(ValueError):
        csr._data[0] = 2.0
    del source


def test_exact_eigenvalue_bounds():
    # closed-form tridiagonal Toeplitz
    banded = BandedOperator.toeplitz(17, {0: 2.0, 1: -1.0, -1: -1.0})
    lam = np.linalg.eigvalsh(banded.to_dense())
    np.testing.assert_allclose(banded.eigenvalue_bounds(), (lam[0], lam[-1]),
                               rtol=1e-13)
    # Kronecker sum of symmetric terms, with scale
    kron = _poisson_operator(6)
    lam_k = np.linalg.eigvalsh(kron.to_dense())
    np.testing.assert_allclose(kron.eigenvalue_bounds(), (lam_k[0], lam_k[-1]),
                               rtol=1e-12)
    assert condition_number(kron) == pytest.approx(lam_k[-1] / lam_k[0])
    # affine shift maps the bounds (and flips under negative scale)
    shifted = DiagonalShiftOperator(kron, shift=5.0, scale=-2.0)
    lam_s = np.linalg.eigvalsh(shifted.to_dense())
    np.testing.assert_allclose(shifted.eigenvalue_bounds(),
                               (lam_s[0], lam_s[-1]), rtol=1e-12)
    # indefinite spectra expose no endpoint condition bound
    sigma = 0.5 * (lam[0] + lam[1])
    helm = BandedOperator.toeplitz(17, {0: 2.0 - sigma, 1: -1.0, -1: -1.0})
    assert helm.eigenvalue_bounds()[0] < 0 < helm.eigenvalue_bounds()[1]
    assert helm.condition_bound() is None


def test_structured_classical_solves_are_exact():
    rng = np.random.default_rng(1)
    # banded (scipy banded LU / Thomas)
    banded = BandedOperator.toeplitz(40, {0: 2.0, 1: -1.0, -1: -1.0})
    b = rng.standard_normal(40)
    np.testing.assert_allclose(banded.solve(b),
                               np.linalg.solve(banded.to_dense(), b),
                               atol=1e-10)
    # Kronecker fast diagonalisation, vector and block
    kron = _poisson_operator(5)
    block = rng.standard_normal((25, 3))
    np.testing.assert_allclose(kron.solve(block),
                               np.linalg.solve(kron.to_dense(), block),
                               atol=1e-10)
    # shifted Kronecker goes through the same eigenbasis
    shifted = DiagonalShiftOperator(kron, shift=1.5, scale=0.25)
    np.testing.assert_allclose(shifted.solve(block),
                               np.linalg.solve(shifted.to_dense(), block),
                               atol=1e-10)
    # symmetric definite CSR solves by conjugate gradients
    lap = CSROperator.from_dense(np.diag([2.0] * 10)
                                 - np.diag(np.ones(9), 1)
                                 - np.diag(np.ones(9), -1))
    ridge = DiagonalShiftOperator(
        CSROperator(lap._data, lap._indices, lap._indptr, 10,
                    spectrum_bounds=(float(np.linalg.eigvalsh(lap.to_dense())[0]),
                                     float(np.linalg.eigvalsh(lap.to_dense())[-1]))),
        shift=0.3)
    b10 = rng.standard_normal(10)
    np.testing.assert_allclose(ridge.solve(b10),
                               np.linalg.solve(ridge.to_dense(), b10),
                               atol=1e-9)


def test_dense_materialisation_wall():
    big = BandedOperator.toeplitz(9000, {0: 2.0, 1: -1.0, -1: -1.0})
    with pytest.raises(MemoryError, match="refusing to densify"):
        big.to_dense()
    # the structured path still works fine at that size
    x = np.ones(9000)
    assert np.isfinite(big @ x).all()
    assert big.solve(x).shape == (9000,)


# ---------------------------------------------------------------------- #
# fingerprints
# ---------------------------------------------------------------------- #
def test_fingerprints_distinguish_structures_and_stay_stable():
    dense = tridiagonal_toeplitz(12, 2.0, -1.0)
    banded = BandedOperator.from_dense(dense)
    csr = CSROperator.from_dense(dense)
    prints = {matrix_fingerprint(dense), matrix_fingerprint(banded),
              matrix_fingerprint(csr)}
    assert len(prints) == 3  # same numbers, three distinct compiled problems
    # rebuilding the same structure reproduces the same fingerprint
    assert matrix_fingerprint(BandedOperator.from_dense(dense)) == \
        matrix_fingerprint(banded)
    assert matrix_fingerprint(CSROperator.from_dense(dense)) == \
        matrix_fingerprint(csr)
    # different scalar parameters change the hash even with equal arrays
    kron = KroneckerSumOperator([dense], scale=1.0)
    kron2 = KroneckerSumOperator([dense], scale=2.0)
    assert matrix_fingerprint(kron) != matrix_fingerprint(kron2)
    # declared spectrum bounds are part of the compiled identity
    with_bounds = CSROperator(csr._data, csr._indices, csr._indptr, 12,
                              spectrum_bounds=(0.1, 4.0))
    assert matrix_fingerprint(with_bounds) != matrix_fingerprint(csr)


def test_fingerprint_canonicalisation_covers_operator_components():
    values = np.array([2.0, -0.0, 2.0, 2.0])
    canonical = np.array([2.0, 0.0, 2.0, 2.0])
    a = BandedOperator(4, {0: values})
    b = BandedOperator(4, {0: canonical})
    # -0.0 in a component array canonicalises exactly like dense hashing
    assert matrix_fingerprint(a) == matrix_fingerprint(b)


# ---------------------------------------------------------------------- #
# matrix-free solve route
# ---------------------------------------------------------------------- #
def test_matrix_free_matches_dense_route_to_1e12():
    operator = _poisson_operator(7)       # N = 49, kappa ~ 26
    dense = operator.to_dense()
    kappa = float(np.linalg.cond(dense))
    rng = np.random.default_rng(2)
    b = rng.standard_normal(49)

    free = QSVTLinearSolver(operator, epsilon_l=1e-2, backend="ideal",
                            kappa=kappa)
    ref = QSVTLinearSolver(dense, epsilon_l=1e-2, backend="ideal", kappa=kappa)
    assert free.describe()["matrix_free"] is True
    assert ref.describe()["matrix_free"] is False
    # single solve: identical polynomial, identical transformation
    np.testing.assert_allclose(free.solve(b).x, ref.solve(b).x, atol=1e-12)
    # full refinement to 1e-12, batched included
    batch = rng.standard_normal((3, 49))
    results_free = MixedPrecisionRefinement(
        free, target_accuracy=1e-12).solve_batch(batch)
    results_ref = MixedPrecisionRefinement(
        ref, target_accuracy=1e-12).solve_batch(batch)
    for rf, rr in zip(results_free, results_ref):
        assert rf.converged and rr.converged
        np.testing.assert_allclose(rf.x, rr.x, atol=1e-12)


def test_matrix_free_auto_backend_and_indefinite_guard():
    operator = _poisson_operator(5)
    solver = QSVTLinearSolver(operator, epsilon_l=1e-2)   # backend="auto"
    assert solver.describe()["backend"] == "ideal-polynomial"
    assert solver.describe()["matrix_free"] is True
    assert solver.kappa == pytest.approx(condition_number(operator))
    # indefinite operators no longer need a pinned kappa: the matrix-free
    # route estimates min |λ| from reorthogonalised Lanczos Ritz values,
    # safety-widened so the derived κ over-estimates the true one
    lam = np.linalg.eigvalsh(tridiagonal_toeplitz(8, 2.0, -1.0))
    sigma = 0.5 * (lam[0] + lam[1])
    helm = BandedOperator.toeplitz(8, {0: 2.0 - sigma, 1: -1.0, -1: -1.0})
    from repro.core.backends import IdealPolynomialBackend

    backend = IdealPolynomialBackend()
    backend.prepare(helm, epsilon_l=1e-2, kappa=None)
    gaps = np.abs(lam - sigma)
    true_kappa = float(gaps.max() / gaps.min())
    assert backend.kappa_effective >= true_kappa


def test_matrix_free_helmholtz_with_pinned_kappa():
    lam = np.linalg.eigvalsh(tridiagonal_toeplitz(8, 2.0, -1.0))
    sigma = 0.5 * (lam[0] + lam[1])
    helm = BandedOperator.toeplitz(8, {0: 2.0 - sigma, 1: -1.0, -1: -1.0})
    gaps = np.abs(lam - sigma)
    kappa = float(gaps.max() / gaps.min())
    solver = QSVTLinearSolver(helm, epsilon_l=1e-3, backend="ideal",
                              kappa=kappa)
    b = np.sin(np.pi * np.arange(1, 9) / 9.0)
    result = MixedPrecisionRefinement(solver, target_accuracy=1e-10).solve(b)
    assert result.converged
    exact = np.linalg.solve(helm.to_dense(), b)
    np.testing.assert_allclose(result.x, exact, atol=1e-9)


# ---------------------------------------------------------------------- #
# engine integration
# ---------------------------------------------------------------------- #
def test_cache_charges_structured_bytes_not_dense():
    operator = _poisson_operator(8)       # N = 64
    cache = CompiledSolverCache()
    solver = cache.solver(operator, epsilon_l=1e-2, backend="exact")
    again = cache.solver(operator, epsilon_l=1e-2, backend="exact")
    assert solver is again and cache.stats()["compiles"] == 1
    dense_bytes = 64 * 64 * 8
    assert cache.stats()["total_bytes"] < dense_bytes / 4
    assert solver.payload_bytes() == payload_nbytes(operator)


def test_sharedmem_round_trips_structured_operators():
    operator = _poisson_operator(6)
    with SharedMatrixRegistry() as registry:
        handle = registry.publish(operator)
        assert registry.publish(operator).segment == handle.segment
        assert handle.nbytes < operator.shape[0] ** 2 * 8 / 4
        assert handle.fingerprint == matrix_fingerprint(operator)
        attached = attach_matrix(handle)
        assert is_structured_operator(attached)
        x = np.random.default_rng(3).standard_normal(36)
        np.testing.assert_allclose(attached @ x, operator @ x, atol=1e-13)
        assert matrix_fingerprint(attached) == handle.fingerprint
        detach_all()


def test_structured_scenarios_run_end_to_end():
    scenario = build_scenario("poisson-2d", grid_points=6, backend="ideal")
    assert is_structured_operator(scenario.jobs[0].matrix)
    report = ScenarioRunner(mode="serial").run(scenario.jobs)
    assert all(result.ok and result.converged for result in report)
    # dense assembly at overlapping sizes gives the same solutions to 1e-12
    dense_jobs = build_scenario("poisson-2d", grid_points=6, backend="ideal",
                                assembly="dense").jobs
    dense_report = ScenarioRunner(mode="serial").run(dense_jobs)
    for structured, dense in zip(report, dense_report):
        np.testing.assert_allclose(structured.x, dense.x, atol=1e-12)


def test_process_mode_ships_structured_segments():
    """Workers attach zero-copy operators; the segment holds O(nnz) bytes."""
    scenario = build_scenario("poisson-2d", grid_points=6, num_rhs=4,
                              backend="ideal")
    with ScenarioRunner(mode="process", max_workers=2) as runner:
        report = runner.run(scenario.jobs)
    assert all(result.ok and result.converged for result in report)
    shm = report.summary["shared_memory"]
    assert shm["copies"] == 1                     # one segment for all jobs
    assert shm["segment_bytes"] < 36 * 36 * 8     # structured, not dense


def test_dense_assembly_refuses_beyond_wall():
    with pytest.raises(ValueError, match="dense wall"):
        build_scenario("poisson-2d", grid_points=128, assembly="dense")
    # the structured default sails through the same size (N = 16384)
    scenario = build_scenario("poisson-2d", grid_points=128, backend="exact")
    assert scenario.jobs[0].matrix.shape == (16384, 16384)


def test_large_structured_poisson_solves_via_exact_backend():
    """N = 16384 end-to-end in-process: assembly, cache, refinement."""
    scenario = build_scenario("poisson-2d", grid_points=128, backend="exact",
                              target_accuracy=1e-8)
    report = ScenarioRunner(mode="serial").run(scenario.jobs)
    assert all(result.ok and result.converged for result in report)
    assert report.summary["cache"]["compiles"] == 1


# ---------------------------------------------------------------------- #
# generic registry (satellite)
# ---------------------------------------------------------------------- #
def test_generic_registry_behaviour():
    registry = Registry("widget")
    registry.register("a", 1)
    with pytest.raises(ValueError, match="already registered"):
        registry.register("a", 2)
    registry.register("a", 2, overwrite=True)
    assert registry["a"] == 2

    @registry.register("b")
    def builder():
        return 42

    assert registry["b"] is builder
    assert registry.names() == ["a", "b"]
    assert "a" in registry and len(registry) == 2
    with pytest.raises(KeyError, match="did you mean 'a'"):
        registry["aa"]
    assert registry.unregister("a") and not registry.unregister("a")
    assert dict(registry) == {"b": builder}
