"""Tests for the Eq. (4) inverse polynomial construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.qsp import (
    build_inverse_polynomial,
    inverse_polynomial_degree,
    inverse_polynomial_parameters,
    raw_inverse_coefficients,
)
from repro.qsp.chebyshev import evaluate_chebyshev
from repro.qsp.inverse_polynomial import polynomial_error_from_solution_accuracy


class TestParameters:
    def test_b_formula(self):
        b, _ = inverse_polynomial_parameters(10.0, 1e-3)
        assert b == int(np.ceil(100 * np.log(10 / 1e-3)))

    def test_degree_grows_with_kappa(self):
        assert inverse_polynomial_degree(50.0, 1e-3) > inverse_polynomial_degree(5.0, 1e-3)

    def test_degree_grows_as_accuracy_tightens(self):
        assert inverse_polynomial_degree(10.0, 1e-8) > inverse_polynomial_degree(10.0, 1e-2)

    def test_degree_is_odd(self):
        for kappa, eps in [(2.0, 1e-2), (10.0, 1e-4), (100.0, 1e-3)]:
            assert inverse_polynomial_degree(kappa, eps) % 2 == 1

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            inverse_polynomial_parameters(10.0, 2.0)

    def test_error_convention_mapping(self):
        assert polynomial_error_from_solution_accuracy(1e-2, 10.0) == pytest.approx(5e-4)
        assert polynomial_error_from_solution_accuracy(
            1e-2, 10.0, "direct") == pytest.approx(5e-3)
        with pytest.raises(ValueError):
            polynomial_error_from_solution_accuracy(1e-2, 10.0, "bogus")


class TestRawCoefficients:
    def test_odd_parity(self):
        coeffs = raw_inverse_coefficients(5.0, 1e-2)
        assert np.all(coeffs[0::2] == 0.0)

    def test_alternating_signs(self):
        coeffs = raw_inverse_coefficients(5.0, 1e-2)[1::2]
        signs = np.sign(coeffs[np.abs(coeffs) > 0])
        np.testing.assert_array_equal(signs, [(-1.0) ** j for j in range(signs.shape[0])])

    def test_max_degree_cap(self):
        coeffs = raw_inverse_coefficients(20.0, 1e-4, max_degree=31)
        assert coeffs.shape[0] <= 32

    def test_approximates_inverse_on_domain(self):
        kappa, eps = 6.0, 1e-4
        coeffs = raw_inverse_coefficients(kappa, eps)
        x = np.linspace(1.0 / kappa, 1.0, 300)
        error = np.max(np.abs(evaluate_chebyshev(coeffs, x) - 1.0 / x))
        assert error <= 2 * eps * 10   # construction + truncation slack

    @given(st.floats(min_value=1.5, max_value=30.0), st.floats(min_value=1e-5, max_value=1e-1))
    @settings(max_examples=20, deadline=None)
    def test_property_odd_function(self, kappa, eps):
        coeffs = raw_inverse_coefficients(kappa, eps)
        x = np.linspace(0.1, 1.0, 17)
        np.testing.assert_allclose(evaluate_chebyshev(coeffs, -x),
                                   -evaluate_chebyshev(coeffs, x), atol=1e-9)


class TestBuildInversePolynomial:
    def test_unscaled_accuracy(self):
        poly = build_inverse_polynomial(10.0, 1e-4)
        assert poly.inverse_scale == 1.0
        assert poly.relative_inverse_error() < 1e-3

    def test_scaled_polynomial_bounded_by_max_norm(self):
        poly = build_inverse_polynomial(10.0, 1e-3, max_norm=0.9)
        assert poly.max_abs() == pytest.approx(0.9, rel=1e-3)
        assert poly.inverse_scale < 1.0
        # the rescaled polynomial still approximates scale/x on the domain
        x = np.linspace(0.1, 1.0, 100)
        np.testing.assert_allclose(poly.evaluate(x), poly.inverse_scale / x,
                                   atol=5e-3 * poly.inverse_scale * 10)

    def test_apply_inverse_removes_scale(self):
        poly = build_inverse_polynomial(8.0, 1e-4, max_norm=0.8)
        x = np.linspace(1.0 / 8.0, 1.0, 50)
        np.testing.assert_allclose(x * poly.apply_inverse(x), 1.0, atol=1e-2)

    def test_degree_and_calls_consistent(self):
        poly = build_inverse_polynomial(5.0, 1e-3)
        assert poly.degree % 2 == 1
        assert poly.num_block_encoding_calls == poly.degree

    def test_parity_always_odd(self):
        assert build_inverse_polynomial(3.0, 1e-2).parity == 1

    def test_kappa_validation(self):
        with pytest.raises(DimensionError):
            build_inverse_polynomial(0.5, 1e-3)

    def test_truncation_reduces_degree(self):
        tight = build_inverse_polynomial(10.0, 1e-4, truncation_tolerance=0.0)
        loose = build_inverse_polynomial(10.0, 1e-4, truncation_tolerance=1e-5)
        assert loose.degree <= tight.degree

    def test_achieved_error_improves_with_epsilon(self):
        rough = build_inverse_polynomial(10.0, 1e-2).relative_inverse_error()
        fine = build_inverse_polynomial(10.0, 1e-6).relative_inverse_error()
        assert fine < rough
