"""Self-healing serving-tier tests: retry, breaker, chaos, supervisor.

The resilience layer's contract, clause by clause:

(a) :class:`RetryPolicy` retries only typed retriable rejections, under a
    deterministic decorrelated-jitter schedule that honours server-provided
    ``retry_after`` hints as a floor;
(b) :class:`CircuitBreaker` trips on *consecutive* failures, sheds while
    open, admits exactly one half-open probe after the reset timeout, and
    closes only on evidence of health;
(c) :class:`ChaosPolicy` decisions replay identically for the same
    (spec, worker, incarnation) and an inert spec resolves to ``None`` —
    fault injection is deterministic and free when off;
(d) the :class:`SynthesisStore` quarantines unreadable payloads (rename to
    ``*.corrupt``, count, recompile once) instead of crashing or
    re-parsing garbage forever;
(e) the supervisor heals the fleet: a killed worker is respawned with its
    id, its virtual nodes land back on exactly the arcs it owned
    (``arc_shares`` re-converge), and it warm-restores compiled state from
    the tiered store (``compiles == 0``); repeated kills mid-traffic never
    silently drop a request — every future settles with a result or a
    typed retriable error;
(f) graceful degradation: with no live owner (empty ring, open breaker,
    redispatch budget spent) the engine answers classically with
    ``degraded=True`` and 1e-10 parity to ``np.linalg.solve``, or raises
    the typed error when degradation is disabled.
"""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.engine import CompiledSolverCache, SynthesisStore
from repro.exceptions import (
    CircuitOpenError,
    QueueFullError,
    QuotaExceededError,
    SingularMatrixError,
    WorkerUnavailableError,
)
from repro.linalg import random_matrix_with_condition_number, random_rhs
from repro.serving import (
    CHAOS_ENV_VAR,
    ChaosPolicy,
    ChaosSpec,
    CircuitBreaker,
    ClusterEngine,
    HashRing,
    RetryPolicy,
    ServingHTTPServer,
)
from repro.utils import matrix_fingerprint


def _spd_system(n, kappa, seed):
    matrix = random_matrix_with_condition_number(n, kappa, rng=seed)
    return matrix, random_rhs(n, rng=seed + 1000)


def _wait_until(predicate, timeout=15.0, message="condition never held"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, message
        time.sleep(0.02)


def _routed_worker(matrix, num_workers=2):
    """Predict the cluster's routing without building one (same ring math)."""
    ring = HashRing([f"worker-{i}" for i in range(num_workers)])
    return ring.route(matrix_fingerprint(matrix))


# ---------------------------------------------------------------------- #
# (a) retry policy
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_retries_only_typed_retriable_errors(self):
        policy = RetryPolicy(max_attempts=3, rng=0, sleep=lambda s: None)
        assert policy.should_retry(QueueFullError("full"), 0)
        assert policy.should_retry(QuotaExceededError("quota"), 0)
        assert policy.should_retry(WorkerUnavailableError("dead"), 0)
        assert policy.should_retry(CircuitOpenError("open"), 0)
        assert not policy.should_retry(SingularMatrixError("singular"), 0)
        assert not policy.should_retry(RuntimeError("bug"), 0)
        # the attempt budget counts the first try
        assert policy.should_retry(QueueFullError("full"), 1)
        assert not policy.should_retry(QueueFullError("full"), 2)

    def test_type_gates_are_independent(self):
        no_admission = RetryPolicy(retry_admission=False, rng=0,
                                   sleep=lambda s: None)
        assert not no_admission.should_retry(QueueFullError("full"), 0)
        assert no_admission.should_retry(WorkerUnavailableError("dead"), 0)
        no_unavailable = RetryPolicy(retry_unavailable=False, rng=0,
                                     sleep=lambda s: None)
        assert no_unavailable.should_retry(QuotaExceededError("quota"), 0)
        assert not no_unavailable.should_retry(CircuitOpenError("open"), 0)

    def test_jitter_schedule_is_deterministic_and_bounded(self):
        def schedule(seed):
            policy = RetryPolicy(base_delay=0.05, max_delay=2.0, rng=seed,
                                 sleep=lambda s: None)
            delays, previous = [], None
            for _ in range(50):
                previous = policy.next_delay(previous)
                delays.append(previous)
            return delays

        first, second = schedule(7), schedule(7)
        assert first == second                      # replayable
        assert schedule(8) != first                 # seed actually matters
        assert all(0.05 <= delay <= 2.0 for delay in first)

    def test_retry_after_floors_the_delay(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=2.0, rng=0,
                             sleep=lambda s: None)
        assert policy.next_delay(None, retry_after=1.5) >= 1.5

    def test_execute_retries_to_success_and_sleeps_the_schedule(self):
        slept = []
        policy = RetryPolicy(max_attempts=4, rng=0, sleep=slept.append)
        calls = {"count": 0}

        def flaky():
            calls["count"] += 1
            if calls["count"] < 3:
                raise QueueFullError("full", retry_after=0.2)
            return "answer"

        assert policy.execute(flaky) == "answer"
        assert calls["count"] == 3
        assert len(slept) == 2 and all(delay >= 0.2 for delay in slept)
        assert policy.stats()["retries"] == 2

    def test_execute_reraises_once_the_budget_is_spent(self):
        policy = RetryPolicy(max_attempts=2, rng=0, sleep=lambda s: None)
        calls = {"count": 0}

        def doomed():
            calls["count"] += 1
            raise QueueFullError("always full")

        with pytest.raises(QueueFullError):
            policy.execute(doomed)
        assert calls["count"] == 2


# ---------------------------------------------------------------------- #
# (b) circuit breaker
# ---------------------------------------------------------------------- #
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()                    # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()                    # third consecutive
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(1.0)

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 1.5
        assert breaker.state == "half-open"
        assert breaker.allow()                      # the probe slot
        assert not breaker.allow()                  # second caller shed
        breaker.record_failure()                    # probe failed
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(1.0)
        clock.now += 1.5
        assert breaker.allow()
        breaker.record_success()                    # probe succeeded
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.retry_after() == 0.0
        assert breaker.stats()["trips"] == 1


# ---------------------------------------------------------------------- #
# (c) deterministic chaos
# ---------------------------------------------------------------------- #
class TestChaos:
    def test_inert_spec_resolves_to_none(self):
        assert ChaosPolicy.resolve(None, worker_id="w", environ={}) is None
        assert ChaosPolicy.resolve(ChaosSpec(), worker_id="w") is None
        assert ChaosSpec().enabled is False

    def test_env_var_resolution_round_trips(self):
        spec = ChaosSpec(seed=3, crash_points=((0, 2),), slow_rate=0.1)
        policy = ChaosPolicy.resolve(None, worker_id="worker-0",
                                     environ={CHAOS_ENV_VAR: spec.to_json()})
        assert policy is not None and policy.spec == spec
        # config spec takes precedence over the environment
        quiet = ChaosPolicy.resolve(ChaosSpec(), worker_id="worker-0",
                                    environ={CHAOS_ENV_VAR: spec.to_json()})
        assert quiet is None

    def test_unknown_spec_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown ChaosSpec"):
            ChaosSpec.from_dict({"seed": 1, "crash_probability": 0.5})

    def test_decisions_replay_identically(self):
        spec = ChaosSpec(seed=11, crash_rate=0.05, hang_rate=0.05,
                         slow_rate=0.2, stall_rate=0.3,
                         corrupt_store_rate=0.5)

        def trace(worker_id, incarnation):
            policy = ChaosPolicy(spec, worker_id=worker_id,
                                 incarnation=incarnation)
            return ([policy.on_request(i) for i in range(100)],
                    [policy.on_drain() for _ in range(50)],
                    [policy.corrupt_payload(b"x" * 64) for _ in range(20)])

        assert trace("worker-0", 0) == trace("worker-0", 0)
        assert trace("worker-0", 0) != trace("worker-1", 0)   # per worker
        assert trace("worker-0", 0) != trace("worker-0", 1)   # per incarnation

    def test_crash_points_target_one_incarnation(self):
        spec = ChaosSpec(crash_points=((0, 2),))
        original = ChaosPolicy(spec, worker_id="w", incarnation=0)
        assert [original.on_request(i) for i in range(4)] == \
            [None, None, "crash", None]
        respawned = ChaosPolicy(spec, worker_id="w", incarnation=1)
        assert all(respawned.on_request(i) is None for i in range(4))

    def test_worker_filter_disables_other_workers(self):
        spec = ChaosSpec(crash_rate=1.0, workers=("worker-1",))
        assert ChaosPolicy.resolve(spec, worker_id="worker-0") is None
        targeted = ChaosPolicy.resolve(spec, worker_id="worker-1")
        assert targeted is not None and targeted.on_request(0) == "crash"

    def test_corrupt_payload_truncates(self):
        policy = ChaosPolicy(ChaosSpec(corrupt_store_rate=1.0), worker_id="w")
        data = bytes(range(64))
        corrupted = policy.corrupt_payload(data)
        assert corrupted is not None and corrupted != data
        assert corrupted.startswith(data[:32])
        off = ChaosPolicy(ChaosSpec(crash_rate=1.0), worker_id="w")
        assert off.corrupt_payload(data) is None


# ---------------------------------------------------------------------- #
# (d) store corruption quarantine
# ---------------------------------------------------------------------- #
class TestStoreQuarantine:
    def _warm_entry(self, directory, matrix):
        store = SynthesisStore(directory)
        CompiledSolverCache(store=store).solver(matrix, epsilon_l=5e-2,
                                                backend="ideal")
        entries = list(store.path.glob("*.npz"))
        assert len(entries) == 1
        return store, entries[0]

    def test_garbage_entry_is_quarantined_once_and_recompiled(self, tmp_path):
        matrix = random_matrix_with_condition_number(8, 4.0, rng=42)
        store, entry = self._warm_entry(tmp_path, matrix)
        entry.write_bytes(b"\x00not an archive\xff")

        cache = CompiledSolverCache(store=store)
        solver = cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
        assert solver is not None
        assert cache.stats()["compiles"] == 1       # recompiled, not crashed
        stats = store.stats()
        assert stats["corrupt"] == 1 and stats["corrupt_quarantined"] == 1
        corpses = list(store.path.glob("*.corrupt"))
        assert [c.name for c in corpses] == [entry.name + ".corrupt"]
        assert corpses[0].read_bytes() == b"\x00not an archive\xff"
        assert len(store) == 1                      # the recompile re-saved a
        # clean entry; the corpse is invisible to the *.npz scan

        # the quarantined name never re-parses: a fresh reader misses clean
        rewarmed = SynthesisStore(tmp_path)
        CompiledSolverCache(store=rewarmed).solver(matrix, epsilon_l=5e-2,
                                                   backend="ideal")
        assert rewarmed.stats()["corrupt"] == 0
        assert rewarmed.stats()["hits"] == 1

    def test_chaos_corrupted_save_round_trips_into_quarantine(self, tmp_path):
        matrix = random_matrix_with_condition_number(8, 4.0, rng=43)
        chaotic = SynthesisStore(
            tmp_path, chaos=ChaosPolicy(ChaosSpec(corrupt_store_rate=1.0),
                                        worker_id="w"))
        CompiledSolverCache(store=chaotic).solver(matrix, epsilon_l=5e-2,
                                                  backend="ideal")
        assert len(chaotic) == 1                    # a (corrupted) entry landed

        clean = SynthesisStore(tmp_path)
        cache = CompiledSolverCache(store=clean)
        solver = cache.solver(matrix, epsilon_l=5e-2, backend="ideal")
        assert solver is not None
        assert cache.stats()["compiles"] == 1
        assert clean.stats()["corrupt_quarantined"] == 1
        assert list(tmp_path.glob("*.npz.corrupt"))


# ---------------------------------------------------------------------- #
# (e) supervisor: respawn, ring re-convergence, warm restore
# ---------------------------------------------------------------------- #
class TestSelfHealing:
    def test_respawn_restores_ring_and_warm_state(self, tmp_path):
        matrix, rhs = _spd_system(8, 4.0, 51)
        with ClusterEngine(num_workers=2, supervisor_interval=0.05,
                           local_store_dir=str(tmp_path / "local"),
                           shared_store_dir=str(tmp_path / "shared")) as cluster:
            baseline_shares = cluster._ring.arc_shares()
            victim = cluster.route(matrix)
            first = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                  backend="ideal", kappa=4.0)
            assert first.scaled_residual < 1e-2 and not first.degraded

            cluster._workers[victim]["process"].terminate()
            _wait_until(lambda: cluster.stats(include_workers=False)
                        ["restarts"][victim] == 1,
                        message="supervisor never respawned the victim")
            _wait_until(lambda: victim in cluster.workers_alive,
                        message="respawned worker never re-joined the ring")
            stats = cluster.stats(include_workers=False)
            assert stats["workers_alive"] == 2
            assert stats["worker_deaths"] == 1
            # same id → same vnode hashes → *exactly* the pre-death placement
            assert cluster._ring.arc_shares() == baseline_shares
            assert cluster.route(matrix) == victim

            again = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                  backend="ideal", kappa=4.0)
            np.testing.assert_allclose(again.x, first.x, rtol=0.0, atol=1e-12)
            snapshot = cluster.worker_stats()[victim]
            assert snapshot["incarnation"] == 1
            assert snapshot["uptime_s"] >= 0.0
            assert abs(snapshot["heartbeat"] - time.monotonic()) < 60.0
            # warm restore: the fingerprint came back from the tiered store
            assert snapshot["cache"]["compiles"] == 0
            assert snapshot["chaos_enabled"] is False

    def test_three_kills_mid_traffic_drop_nothing(self, tmp_path):
        # the ISSUE's satellite scenario: kill the same worker three times
        # while traffic flows; every future settles (result or typed
        # retriable error), the ring returns to full arc_shares each time,
        # and the respawned incarnations never recompile warm fingerprints.
        systems = [_spd_system(8, 4.0, seed) for seed in (61, 62, 63, 64)]
        with ClusterEngine(num_workers=2, supervisor_interval=0.05,
                           local_store_dir=str(tmp_path / "local"),
                           shared_store_dir=str(tmp_path / "shared")) as cluster:
            references = {}
            for matrix, rhs in systems:             # pre-warm every store
                references[id(matrix)] = cluster.solve(
                    matrix, rhs, epsilon_l=1e-2, backend="ideal", kappa=4.0)
            baseline_shares = cluster._ring.arc_shares()
            victim = cluster.route(systems[0][0])

            settled, retriable = 0, 0
            for round_index in range(3):
                futures = [cluster.submit(matrix, rhs, epsilon_l=1e-2,
                                          backend="ideal", kappa=4.0)
                           for matrix, rhs in systems for _ in range(3)]
                cluster._workers[victim]["process"].terminate()
                for future in futures:
                    try:
                        record = future.result(timeout=30.0)
                        assert record.scaled_residual < 1e-2
                    except WorkerUnavailableError:
                        retriable += 1              # typed and retriable: ok
                    settled += 1
                _wait_until(lambda: cluster.stats(include_workers=False)
                            ["restarts"][victim] == round_index + 1,
                            message=f"respawn {round_index + 1} never happened")
                _wait_until(lambda: len(cluster.workers_alive) == 2,
                            message="fleet never returned to full strength")
                assert cluster._ring.arc_shares() == baseline_shares
                # the respawned incarnation really serves: its answer also
                # resets the breaker's failure streak (three kills with no
                # response in between would trip it — correctly — and the
                # next round would degrade instead of dispatching).
                healed = cluster.solve(systems[0][0], systems[0][1],
                                       epsilon_l=1e-2, backend="ideal",
                                       kappa=4.0)
                assert not healed.degraded

            assert settled == 36                    # nothing dropped silently
            stats = cluster.stats(include_workers=False)
            assert stats["worker_deaths"] == 3
            assert stats["restarts"][victim] == 3
            # warm restore held across all three incarnations: every store
            # was populated before the first kill, so the respawned worker
            # answers from disk without a single recompile.
            for matrix, rhs in systems:
                record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                       backend="ideal", kappa=4.0)
                assert not record.degraded
                np.testing.assert_allclose(record.x,
                                           references[id(matrix)].x,
                                           rtol=0.0, atol=1e-12)
            assert cluster.worker_stats()[victim]["cache"]["compiles"] == 0

    def test_chaos_crash_point_redispatches_to_survivor(self, tmp_path):
        matrix, rhs = _spd_system(8, 4.0, 71)
        victim = _routed_worker(matrix)
        chaos = ChaosSpec(crash_points=((0, 0),), workers=(victim,))
        with ClusterEngine(num_workers=2, supervisor_interval=0.05,
                           chaos=chaos,
                           local_store_dir=str(tmp_path / "local"),
                           shared_store_dir=str(tmp_path / "shared")) as cluster:
            assert cluster.route(matrix) == victim   # the prediction held
            # incarnation 0 crashes while handling this very request; the
            # reaper redispatches it to the survivor, which answers.
            record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert record.scaled_residual < 1e-2 and not record.degraded
            stats = cluster.stats(include_workers=False)
            assert stats["worker_deaths"] == 1
            assert stats["redispatched"] >= 1
            _wait_until(lambda: cluster.stats(include_workers=False)
                        ["restarts"][victim] == 1,
                        message="crashed worker never respawned")
            _wait_until(lambda: cluster.route(matrix) == victim,
                        message="fingerprint never came home")
            # incarnation 1 has no crash point: the home worker serves again
            healed = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert healed.scaled_residual < 1e-2 and not healed.degraded

    def test_hung_worker_is_probed_killed_and_healed(self, tmp_path):
        matrix, rhs = _spd_system(8, 4.0, 73)
        victim = _routed_worker(matrix)
        chaos = ChaosSpec(hang_rate=1.0, hang_seconds=60.0, workers=(victim,))
        with ClusterEngine(num_workers=2, supervisor_interval=0.1,
                           hang_timeout=0.4, chaos=chaos) as cluster:
            # the victim's event loop wedges on the first request: its
            # heartbeat goes stale, the probe times out, the supervisor
            # terminates it, and the death path redispatches the request.
            record = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                   backend="ideal", kappa=4.0)
            assert record.scaled_residual < 1e-2
            supervisor = cluster.stats(include_workers=False)["supervisor"]
            assert supervisor["hang_kills"] >= 1


# ---------------------------------------------------------------------- #
# (f) graceful degradation + breaker at the front door
# ---------------------------------------------------------------------- #
class TestDegradation:
    def test_empty_ring_degrades_with_classical_parity(self):
        matrix, rhs = _spd_system(8, 4.0, 81)
        with ClusterEngine(num_workers=1, respawn=False) as cluster:
            cluster._workers["worker-0"]["process"].terminate()
            _wait_until(lambda: len(cluster.workers_alive) == 0,
                        message="death never detected")
            record = cluster.solve(matrix, rhs)
            assert record.degraded is True
            assert record.block_encoding_calls == 0
            np.testing.assert_allclose(record.x, np.linalg.solve(matrix, rhs),
                                       rtol=0.0, atol=1e-10)
            assert record.scaled_residual < 1e-10
            assert cluster.stats(include_workers=False)["degraded"] >= 1

    def test_empty_ring_without_fallback_raises_typed_error(self):
        matrix, rhs = _spd_system(8, 4.0, 82)
        with ClusterEngine(num_workers=1, respawn=False,
                           degraded_fallback=False) as cluster:
            cluster._workers["worker-0"]["process"].terminate()
            _wait_until(lambda: len(cluster.workers_alive) == 0,
                        message="death never detected")
            with pytest.raises(WorkerUnavailableError):
                cluster.submit(matrix, rhs)

    def test_open_breaker_degrades_and_counts_the_shed(self):
        matrix, rhs = _spd_system(8, 4.0, 83)
        with ClusterEngine(num_workers=1, respawn=False) as cluster:
            breaker = cluster._breakers["worker-0"]
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            assert breaker.state == "open"
            record = cluster.solve(matrix, rhs)
            assert record.degraded is True
            shed = cluster.stats(
                include_workers=False)["admission"]["shed_breaker_open"]
            assert shed >= 1

    def test_open_breaker_without_fallback_raises_circuit_open(self):
        matrix, rhs = _spd_system(8, 4.0, 84)
        with ClusterEngine(num_workers=1, respawn=False,
                           degraded_fallback=False,
                           breaker_reset_timeout=30.0) as cluster:
            breaker = cluster._breakers["worker-0"]
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            with pytest.raises(CircuitOpenError) as excinfo:
                cluster.submit(matrix, rhs)
            assert excinfo.value.retriable is True
            assert 0.0 < excinfo.value.retry_after <= 30.0

    def test_retry_policy_rides_out_a_respawn_window(self):
        # two retry layers, by design: the engine-level policy absorbs
        # *synchronous* rejections (empty ring while the supervisor heals),
        # while ``execute`` wraps the blocking call so in-flight deaths —
        # which surface through the future — are retried client-side.
        matrix, rhs = _spd_system(8, 4.0, 85)
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=0.5,
                             rng=0)
        with ClusterEngine(num_workers=1, supervisor_interval=0.05,
                           degraded_fallback=False,
                           retry_policy=policy) as cluster:
            first = cluster.solve(matrix, rhs, epsilon_l=1e-2,
                                  backend="ideal", kappa=4.0)
            assert first.scaled_residual < 1e-2
            cluster._workers["worker-0"]["process"].terminate()
            # submit immediately: may land in the dying worker's queue (an
            # in-flight loss) or hit the worker-less window (a sync
            # rejection); either way the retries outlast the respawn.
            record = policy.execute(cluster.solve, matrix, rhs,
                                    epsilon_l=1e-2, backend="ideal",
                                    kappa=4.0)
            assert record.scaled_residual < 1e-2 and not record.degraded
            assert len(cluster.workers_alive) == 1


class TestResilientHTTP:
    def test_degraded_answer_and_enriched_healthz(self):
        matrix, rhs = _spd_system(8, 4.0, 91)
        with ClusterEngine(num_workers=1, respawn=False) as cluster:
            with ServingHTTPServer(cluster) as server:
                host, port = server.address
                base = f"http://{host}:{port}"
                cluster._workers["worker-0"]["process"].terminate()
                _wait_until(lambda: len(cluster.workers_alive) == 0,
                            message="death never detected")
                request = urllib.request.Request(
                    f"{base}/solve",
                    data=json.dumps({"matrix": matrix.tolist(),
                                     "rhs": rhs.tolist()}).encode(),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request) as response:
                    assert response.status == 200
                    body = json.load(response)
                assert body["degraded"] is True
                np.testing.assert_allclose(
                    body["x"], np.linalg.solve(matrix, rhs),
                    rtol=0.0, atol=1e-10)
                with urllib.request.urlopen(f"{base}/healthz") as response:
                    health = json.load(response)
                assert health["ok"] is True
                assert health["workers_alive"] == 0
                assert health["worker_deaths"] == 1
                assert health["restarts"] == 0
                assert health["uptime_s"] > 0.0
                # the death and the degraded fallback are on the event log
                assert health["event_log"]["events"] >= 2
