"""Problem suite + autotuner: families, chains, registry, profiles.

Covers the acceptance criteria of the problem-suite subsystem:

* every family's workloads carry classically exact solutions and (where the
  spectrum is known) an analytic condition number that agrees with the
  measured SVD value;
* families run end-to-end through ``build_scenario`` → ``ScenarioRunner``
  and their results match the exact solutions;
* time-stepping chains share one fingerprint, so a chain of T steps costs
  exactly one synthesis (cache hit rate (T-1)/T);
* the autotuner's fresh choice equals the cost-model optimum, adapts on
  telemetry in both directions, and round-trips through its on-disk store;
* the scenario registry suggests close matches and rejects duplicates.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.cost_model import (
    optimal_epsilon_l,
    predicted_kappa,
    refinement_block_encoding_calls,
)
from repro.engine import (
    Autotuner,
    ProfileStore,
    JobResult,
    RunReport,
    ScenarioRunner,
    SolveJob,
    build_scenario,
    list_scenarios,
    register_scenario,
    unregister_scenario,
)
from repro.problems import (
    PROBLEM_FAMILIES,
    GraphLaplacianFamily,
    HeatEquationChainFamily,
    default_epsilon_l,
    lanczos_tridiagonal,
    spectrum_profile,
)
from repro.problems.graphs import _random_regular_adjacency
from repro.utils import matrix_fingerprint

NEW_FAMILIES = ("poisson-2d", "poisson-3d", "heat-chain",
                "convection-diffusion", "helmholtz", "graph-laplacian",
                "prescribed-spectrum")


# ---------------------------------------------------------------------- #
# family construction
# ---------------------------------------------------------------------- #
def test_new_families_registered():
    registered = list_scenarios()
    for name in NEW_FAMILIES:
        assert name in registered
        assert name in PROBLEM_FAMILIES
        assert registered[name]  # non-empty description
    # the applications-level accessor exposes a *copy* of the same suite
    from repro.applications import problem_suite

    suite = problem_suite()
    assert suite == PROBLEM_FAMILIES
    suite.clear()
    assert PROBLEM_FAMILIES  # caller mutations cannot reach the registry


@pytest.mark.parametrize("name", NEW_FAMILIES)
def test_workloads_carry_exact_solutions(name):
    for workload in PROBLEM_FAMILIES[name].workloads():
        residual = np.linalg.norm(workload.matrix @ workload.solution
                                  - workload.rhs)
        assert residual <= 1e-9 * np.linalg.norm(workload.rhs)
        assert workload.condition_number >= 1.0


@pytest.mark.parametrize("name,params", [
    ("poisson-2d", {"grid_points": 4}),
    ("poisson-3d", {"grid_points": 2}),
    ("heat-chain", {"num_points": 16, "dt": 1e-3}),
    ("helmholtz", {"num_points": 16}),
    ("graph-laplacian", {"topology": "path", "num_nodes": 16}),
    ("graph-laplacian", {"topology": "cycle", "num_nodes": 16}),
    ("graph-laplacian", {"topology": "grid", "num_nodes": 16}),
    ("prescribed-spectrum", {"dimension": 16, "condition_number": 50.0}),
    ("prescribed-spectrum", {"dimension": 8, "condition_number": 20.0,
                             "distribution": "linear"}),
])
def test_analytic_kappa_matches_measured(name, params):
    family = PROBLEM_FAMILIES[name]
    analytic = family.analytic_condition_number(**params)
    assert analytic is not None
    workload = family.workloads(**params)[0]
    assert workload.condition_number == pytest.approx(analytic)
    assert workload.measured_condition_number() == pytest.approx(
        analytic, rel=1e-7)


def test_kappa_models_registered():
    assert predicted_kappa("poisson-2d", grid_points=4) == pytest.approx(
        PROBLEM_FAMILIES["poisson-2d"].analytic_condition_number(grid_points=4))
    assert predicted_kappa("poisson-1d", num_points=16) == pytest.approx(
        (2.0 * 17 / np.pi) ** 2)
    with pytest.raises(KeyError, match="unknown kappa model"):
        predicted_kappa("no-such-model")
    # random-regular graphs have no closed form: explicit error, not a guess
    with pytest.raises(ValueError, match="no closed form"):
        predicted_kappa("graph-laplacian", topology="random-regular")
    # misspelled/wrong-family parameter names must raise, never silently
    # evaluate the model at its defaults (poisson uses grid_points, not
    # num_points)
    with pytest.raises(TypeError):
        predicted_kappa("poisson-2d", num_points=32)


def test_convection_diffusion_is_nonsymmetric_and_tunable():
    family = PROBLEM_FAMILIES["convection-diffusion"]
    # the structured default assembles a non-symmetric CSR operator;
    # densify to inspect, and cross-check against the dense assembly
    matrix = family.workloads(peclet=0.8)[0].matrix.to_dense()
    assert not np.allclose(matrix, matrix.T)
    np.testing.assert_allclose(
        matrix, family.workloads(peclet=0.8, assembly="dense")[0].matrix)
    symmetric = family.workloads(peclet=0.0)[0].matrix.to_dense()
    np.testing.assert_allclose(symmetric, symmetric.T)
    # larger Péclet, larger asymmetry
    asym = lambda a: np.linalg.norm(a - a.T)  # noqa: E731
    assert asym(family.workloads(peclet=0.9)[0].matrix.to_dense()) > asym(
        family.workloads(peclet=0.1)[0].matrix.to_dense())


def test_helmholtz_is_indefinite_but_invertible():
    workload = PROBLEM_FAMILIES["helmholtz"].workloads()[0]
    # the structured default assembles a banded operator; densify to inspect
    eigenvalues = np.linalg.eigvalsh(workload.matrix.to_dense())
    assert (eigenvalues < 0).any() and (eigenvalues > 0).any()
    assert np.min(np.abs(eigenvalues)) > 1e-8
    assert workload.metadata["indefinite"] is True
    # a negative shift keeps the operator positive definite: flag follows
    definite = PROBLEM_FAMILIES["helmholtz"].workloads(shift=-1.0)[0]
    assert definite.metadata["indefinite"] is False
    with pytest.raises(ValueError, match="singular"):
        # shifting exactly onto an eigenvalue must be rejected
        lam1 = 4.0 * np.sin(np.pi / 34) ** 2
        PROBLEM_FAMILIES["helmholtz"].workloads(shift=lam1)


def test_prescribed_spectrum_is_banded_with_exact_spectrum():
    spectrum = spectrum_profile(16, 50.0, "logarithmic")
    matrix = lanczos_tridiagonal(spectrum, rng=0)
    np.testing.assert_allclose(np.sort(np.linalg.eigvalsh(matrix)),
                               np.sort(spectrum), rtol=1e-9, atol=1e-12)
    off_band = matrix - np.tril(np.triu(matrix, -1), 1)
    assert np.max(np.abs(off_band)) == 0.0
    with pytest.raises(ValueError, match="distinct"):
        lanczos_tridiagonal([1.0, 1.0, 2.0])
    # kappa = 1 collapses every distribution onto repeated eigenvalues:
    # rejected up front with a parameter-level message, not a Lanczos error
    with pytest.raises(ValueError, match="must be > 1"):
        spectrum_profile(8, 1.0)


def test_random_regular_graph_validation():
    gen = np.random.default_rng(0)
    adjacency = _random_regular_adjacency(16, 3, gen)
    np.testing.assert_allclose(adjacency.sum(axis=1), 3.0)
    np.testing.assert_allclose(adjacency, adjacency.T)
    assert np.max(np.abs(np.diag(adjacency))) == 0.0
    with pytest.raises(ValueError, match="even"):
        _random_regular_adjacency(15, 3, gen)
    with pytest.raises(ValueError, match="regularization"):
        GraphLaplacianFamily().workloads(regularization=0.0)


def test_default_epsilon_l_is_kappa_aware():
    assert default_epsilon_l(2.0) == pytest.approx(1e-2)        # ceiling
    assert default_epsilon_l(1000.0) == pytest.approx(1e-4)     # 0.1 / kappa
    for name in NEW_FAMILIES:
        job = build_scenario(name).jobs[0]
        assert job.epsilon_l * job.kappa <= 0.1 + 1e-12


# ---------------------------------------------------------------------- #
# chains: shared fingerprints and cache reuse
# ---------------------------------------------------------------------- #
def test_chain_steps_share_matrix_and_fingerprint():
    chain = HeatEquationChainFamily().chain(num_points=8, num_steps=6)
    assert len(chain) == 6
    assert len({id(w.matrix) for w in chain.workloads}) == 1
    assert {matrix_fingerprint(w.matrix) for w in chain.workloads} == {
        chain.fingerprint}
    for step, workload in enumerate(chain.workloads):
        assert workload.metadata["step"] == step
    # rhs of step k is the solution of step k-1: a genuine time march
    for prev, nxt in zip(chain.workloads, chain.workloads[1:]):
        np.testing.assert_array_equal(nxt.rhs, prev.solution)
    jobs = chain.jobs(backend="ideal")
    assert len({matrix_fingerprint(j.matrix) for j in jobs}) == 1
    assert chain.states.shape == (7, 8)


def test_chain_of_16_steps_costs_one_synthesis():
    scenario = build_scenario("heat-chain", num_steps=16, backend="ideal")
    report = ScenarioRunner(mode="serial").run(scenario.jobs)
    assert all(result.ok and result.converged for result in report)
    cache = report.summary["cache"]
    assert cache["compiles"] == 1
    assert cache["hit_rate"] >= 15.0 / 16.0
    # the quantum march must track the classical trajectory step by step
    workloads = PROBLEM_FAMILIES["heat-chain"].workloads(num_steps=16)
    for result, workload in zip(report, workloads):
        error = (np.linalg.norm(result.x - workload.solution)
                 / np.linalg.norm(workload.solution))
        assert error <= 1e-6


def test_auto_backend_handles_non_power_of_two():
    """backend='auto' (the families' default) must never pick the circuit
    encodings for sizes they cannot represent."""
    from repro.core.qsvt_solver import auto_backend_name

    assert auto_backend_name(1.8, 1e-2, 10) == "ideal"
    assert auto_backend_name(1.8, 1e-2, 16) == "circuit"
    scenario = build_scenario("graph-laplacian", num_nodes=10,
                              regularization=5.0)
    report = ScenarioRunner(mode="serial").run(scenario.jobs)
    assert all(result.ok and result.converged for result in report)


@pytest.mark.parametrize("name", NEW_FAMILIES)
def test_families_run_end_to_end_through_runner(name):
    scenario = build_scenario(name, backend="ideal")
    assert len(scenario.jobs) >= 1
    report = ScenarioRunner(mode="serial").run(scenario.jobs)
    workloads = PROBLEM_FAMILIES[name].workloads()
    for result, workload in zip(report, workloads):
        assert result.ok, result.error
        assert result.converged
        error = (np.linalg.norm(result.x - workload.solution)
                 / np.linalg.norm(workload.solution))
        assert error <= 1e-4


# ---------------------------------------------------------------------- #
# scenario registry error paths
# ---------------------------------------------------------------------- #
def test_build_scenario_suggests_close_matches():
    with pytest.raises(KeyError, match="did you mean 'poisson'"):
        build_scenario("poison")
    with pytest.raises(KeyError, match="heat-chain"):
        build_scenario("heat-chian")
    # nothing close: plain error with the registered list
    with pytest.raises(KeyError, match="registered"):
        build_scenario("zzzzzz")


def test_register_scenario_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_scenario("poisson")(lambda: [])
    try:
        register_scenario("test-dup-family", description="one")(lambda: [])
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("test-dup-family")(lambda: [])
        register_scenario("test-dup-family", description="two",
                          overwrite=True)(lambda: [])
        assert list_scenarios()["test-dup-family"] == "two"
    finally:
        assert unregister_scenario("test-dup-family")
    assert not unregister_scenario("test-dup-family")


# ---------------------------------------------------------------------- #
# autotuner
# ---------------------------------------------------------------------- #
def _fake_report(*, n=4, converged=True, iterations=1, calls=100,
                 hits=3, misses=1, errors=0):
    results = [JobResult(name=f"job{i}", x=np.zeros(2), scaled_residual=1e-9,
                         converged=converged, iterations=iterations,
                         block_encoding_calls=calls, wall_time=0.01)
               for i in range(n - errors)]
    results += [JobResult(name=f"bad{i}", x=None, scaled_residual=float("nan"),
                          converged=False, iterations=0,
                          block_encoding_calls=0, wall_time=0.01,
                          error="RuntimeError: boom")
                for i in range(errors)]
    return RunReport(results, summary={"cache": {
        "hits": hits, "misses": misses, "store_hits": 0}})


def test_choose_matches_cost_model_optimum(tmp_path):
    kappa = float((2.0 * 17 / np.pi) ** 2)     # 1-D Poisson, N = 16
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    config = tuner.choose(kappa=kappa, dimension=16)
    assert config.source == "cost-model"
    assert config.epsilon_l == optimal_epsilon_l(kappa, 1e-8)
    assert config.epsilon_l * kappa < 1.0
    assert config.predicted_block_encoding_calls == pytest.approx(
        refinement_block_encoding_calls(kappa, 1e-8, config.epsilon_l))
    # the optimum must beat any fixed grid value on the model's own metric
    for fixed in (1e-2, 1e-3, 1e-5):
        if fixed * kappa < 1.0:
            assert config.predicted_block_encoding_calls <= (
                refinement_block_encoding_calls(kappa, 1e-8, fixed))


def test_choose_backend_selection(tmp_path):
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-4)
    assert tuner.choose(kappa=3.0, dimension=8).backend == "circuit"
    assert tuner.choose(kappa=3.0, dimension=12).backend == "ideal"   # not 2**n
    assert tuner.choose(kappa=3.0, dimension=256).backend == "ideal"  # too big
    assert tuner.choose(kappa=500.0, dimension=16).backend == "ideal"  # degree
    with pytest.raises(ValueError, match="kappa"):
        tuner.choose(kappa=0.5)
    # a singular matrix measures kappa = inf: clear error, not a crash deep
    # inside the candidate grid
    with pytest.raises(ValueError, match="finite"):
        tuner.choose(kappa=float("inf"))
    with pytest.raises(ValueError, match="finite"):
        tuner.observe("fam", _fake_report(), kappa=float("inf"))
    with pytest.raises(ValueError, match="finite"):
        tuner.tune([SolveJob(name="singular", matrix=np.ones((4, 4)),
                             rhs=np.ones(4), target_accuracy=1e-8)])
    with pytest.raises(ValueError, match="finite"):
        optimal_epsilon_l(float("inf"), 1e-8)


def test_profile_replay_revalidates_convergence(tmp_path):
    """A profile at its own rho ceiling must not replay for a larger kappa."""
    from repro.engine import FamilyProfile

    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    tuner.profiles["fam"] = FamilyProfile(
        family="fam", kappa=50.0, target_accuracy=1e-8,
        epsilon_l=0.5 / 50.0, backend="ideal")
    replay = tuner.choose(kappa=50.0, family="fam")
    assert replay.source == "profile"
    # kappa doubled: replaying would give epsilon_l * kappa = 1 — must fall
    # back to a fresh, convergent cost-model optimisation instead
    fresh = tuner.choose(kappa=100.0, family="fam")
    assert fresh.source == "cost-model"
    assert fresh.epsilon_l * 100.0 < 1.0


def test_observe_keeps_circuit_backend_for_small_problems(tmp_path):
    """The profile's backend must be sized to the problem, not defaulted."""
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-4)
    assert tuner.choose(kappa=3.0, dimension=8).backend == "circuit"
    report = _fake_report()
    for result in report:
        result.x = np.zeros(8)
    profile = tuner.observe("fam", report, kappa=3.0)
    assert profile.backend == "circuit"
    assert tuner.choose(kappa=3.0, dimension=8, family="fam").backend == "circuit"
    # a profile learned at a circuit-eligible size must not force the
    # circuit backend onto a non-power-of-two problem of the same family
    assert tuner.choose(kappa=3.0, dimension=25, family="fam").backend == "ideal"
    # an explicit dimension overrides the inference
    big = tuner.observe("fam2", _fake_report(), kappa=3.0, dimension=256)
    assert big.backend == "ideal"


def test_observe_attributes_telemetry_to_the_run_epsilon_l(tmp_path):
    """Telemetry must anchor on the ε_l the jobs ran with, not the profile's."""
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    kappa = 50.0
    explicit = 2e-3
    profile = tuner.observe("fam", _fake_report(iterations=0, calls=500),
                            kappa=kappa, epsilon_l=explicit)
    assert profile.best_epsilon_l == pytest.approx(explicit)
    # a profile stored for target 1e-8 would not have been replayed for a
    # 1e-6 run: the seed must be the fresh cost-model choice, not the profile
    seeded = tuner.observe("fam", _fake_report(iterations=0, calls=500),
                           kappa=kappa, target_accuracy=1e-6)
    assert seeded.best_epsilon_l == pytest.approx(
        optimal_epsilon_l(kappa, 1e-6))


def test_observe_uses_last_issued_epsilon_l(tmp_path):
    """Re-running un-retuned jobs must not anchor on an adapted profile."""
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    scenario = tuner.tune_scenario("poisson-2d", num_rhs=2)
    issued = scenario.jobs[0].epsilon_l
    kappa = scenario.jobs[0].kappa
    adapted = tuner.observe("poisson-2d", _fake_report(iterations=0),
                            kappa=kappa)
    assert adapted.epsilon_l != issued        # profile moved on...
    again = tuner.observe("poisson-2d", _fake_report(iterations=0, calls=50),
                          kappa=kappa)
    # ...but a second report for the *same issued jobs* anchors at `issued`
    assert again.best_epsilon_l == pytest.approx(issued)


def test_profile_json_is_strict(tmp_path):
    """Fresh profiles carry NaN sentinels; the file must stay valid JSON."""
    path = tmp_path / "autotune.json"
    tuner = Autotuner(path=path, target_accuracy=1e-8)
    profile = tuner.observe("fam", [], kappa=10.0)   # empty report: all NaN
    assert np.isnan(profile.observed_iterations)
    raw = json.loads(path.read_text(encoding="utf-8"))   # strict parse
    assert raw["profiles"]["fam"]["observed_iterations"] is None
    restored = Autotuner(path=path).profile("fam")
    assert np.isnan(restored.observed_iterations)
    assert np.isnan(restored.best_epsilon_l)


def test_cycle_graph_rejects_degenerate_sizes():
    family = GraphLaplacianFamily()
    with pytest.raises(ValueError, match=">= 3 nodes"):
        family.workloads(topology="cycle", num_nodes=2)
    with pytest.raises(ValueError, match=">= 3 nodes"):
        family.analytic_condition_number(topology="cycle", num_nodes=2)
    workload = family.workloads(topology="cycle", num_nodes=3)[0]
    assert workload.measured_condition_number() == pytest.approx(
        workload.condition_number, rel=1e-8)


def test_profile_round_trip_through_store(tmp_path):
    path = tmp_path / "autotune.json"
    tuner = Autotuner(path=path, target_accuracy=1e-8)
    profile = tuner.observe("poisson-2d", _fake_report(), kappa=9.47)
    restored = Autotuner(path=path, target_accuracy=1e-8).profile("poisson-2d")
    assert restored is not None
    assert restored.to_dict() == profile.to_dict()
    # a compatible profile is replayed by choose()
    config = Autotuner(path=path).choose(kappa=9.47, target_accuracy=1e-8,
                                         family="poisson-2d")
    assert config.source == "profile"
    assert config.epsilon_l == profile.epsilon_l


def test_observe_adapts_in_both_directions(tmp_path):
    kappa = 50.0
    base = Autotuner(path=tmp_path / "a.json",
                     target_accuracy=1e-8).choose(kappa=kappa)
    # non-convergence tightens epsilon_l
    tight = Autotuner(path=tmp_path / "b.json", target_accuracy=1e-8).observe(
        "fam", _fake_report(converged=False), kappa=kappa)
    assert tight.epsilon_l < base.epsilon_l
    # overdelivery (iterations far below the bound) relaxes it
    loose = Autotuner(path=tmp_path / "c.json", target_accuracy=1e-8).observe(
        "fam", _fake_report(iterations=0), kappa=kappa)
    assert base.epsilon_l < loose.epsilon_l <= 0.5 / kappa
    assert loose.cache_hit_rate == pytest.approx(0.75)
    assert loose.best_epsilon_l == pytest.approx(base.epsilon_l)
    # errored jobs count against convergence even when the survivors all
    # converged under the bound: the stream failed, so tighten
    partial = Autotuner(path=tmp_path / "d.json", target_accuracy=1e-8).observe(
        "fam", _fake_report(iterations=0, errors=2), kappa=kappa)
    assert partial.epsilon_l < base.epsilon_l
    assert partial.converged_fraction == pytest.approx(0.5)


def test_observe_hill_climb_retreats_on_regression(tmp_path):
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    kappa = 50.0
    first = tuner.observe("fam", _fake_report(iterations=0, calls=100),
                          kappa=kappa)
    # second round measured *more* calls per job: retreat towards the best
    second = tuner.observe("fam", _fake_report(iterations=0, calls=300),
                           kappa=kappa)
    assert second.best_calls_per_job == pytest.approx(100.0)
    assert second.epsilon_l < first.epsilon_l
    assert second.runs == 2


def test_tune_rewrites_jobs_per_kappa(tmp_path):
    scenario = build_scenario("kappa-sweep", dimension=16,
                              kappas=(5.0, 200.0), target_accuracy=1e-8, rng=0)
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    tuned = tuner.tune(scenario.jobs)
    assert [job.name for job in tuned] == [job.name for job in scenario.jobs]
    for job in tuned:
        assert job.metadata["autotuned"] == "cost-model"
        assert job.epsilon_l == optimal_epsilon_l(job.kappa, 1e-8)
    assert tuned[0].epsilon_l > tuned[1].epsilon_l  # looser for smaller kappa


def test_tune_preserves_single_solve_jobs(tmp_path):
    """target_accuracy=None means one QSVT solve at epsilon_l — tuning must
    not silently promote it to full refinement."""
    scenario = build_scenario("poisson-multi-rhs", num_points=8, num_rhs=2,
                              rng=0)  # builder default: target_accuracy=None
    assert scenario.jobs[0].target_accuracy is None
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    tuned = tuner.tune(scenario.jobs)
    for before, after in zip(scenario.jobs, tuned):
        assert after.target_accuracy is None
        assert after.epsilon_l == before.epsilon_l
        assert after.metadata["autotuned"] == "backend-only"


def test_issued_epsilon_l_only_tracked_when_uniform(tmp_path):
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    # heterogeneous kappas -> distinct eps_l per job -> nothing recorded
    sweep = build_scenario("kappa-sweep", dimension=8, kappas=(2.0, 200.0),
                           target_accuracy=1e-8, rng=0)
    tuner.tune(sweep.jobs, family="kappa-sweep")
    assert "kappa-sweep" not in tuner._issued
    # homogeneous family -> recorded
    tuner.tune_scenario("poisson-2d", num_rhs=2)
    assert "poisson-2d" in tuner._issued


def test_tune_scenario_stamps_family(tmp_path):
    tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
    scenario = tuner.tune_scenario("poisson-2d", num_rhs=2)
    assert len(scenario.jobs) == 2
    assert all(job.metadata["family"] == "poisson-2d" for job in scenario.jobs)
    assert all(job.epsilon_l == optimal_epsilon_l(job.kappa, 1e-8)
               for job in scenario.jobs)


def test_profile_store_merges_concurrent_writers(tmp_path):
    """Two tuners sharing one store path must not erase each other."""
    path = tmp_path / "autotune.json"
    a = Autotuner(path=path, target_accuracy=1e-8)
    b = Autotuner(path=path, target_accuracy=1e-8)   # loaded before a saves
    a.observe("poisson-2d", _fake_report(), kappa=9.47)
    b.observe("helmholtz", _fake_report(), kappa=76.9)
    merged = ProfileStore(path).load()
    assert set(merged) == {"poisson-2d", "helmholtz"}


def test_family_registries_stay_consistent(tmp_path):
    """Re-registering a family name must update all three registries."""
    from repro.problems import (HelmholtzFamily, register_problem_family,
                                unregister_problem_family)

    class Custom(HelmholtzFamily):
        name = "test-custom-family"
        description = "custom"

    try:
        register_problem_family(Custom())
        assert "test-custom-family" in list_scenarios()
        assert predicted_kappa("test-custom-family") > 1.0
        # unregister + re-register cycles cleanly (no stale kappa model)
        assert unregister_problem_family("test-custom-family")
        with pytest.raises(KeyError):
            predicted_kappa("test-custom-family")
        register_problem_family(Custom())
        assert predicted_kappa("test-custom-family") > 1.0
    finally:
        unregister_problem_family("test-custom-family")
    assert not unregister_problem_family("test-custom-family")
    assert "test-custom-family" not in list_scenarios()
    # names the suite does not own are never touched: the built-in
    # poisson-1d kappa model survives a bogus unregister...
    assert not unregister_problem_family("poisson-1d")
    assert predicted_kappa("poisson-1d", num_points=16) > 1.0
    # ...and a directly-registered model sharing a no-analytic family's name
    # survives that family's unregistration
    from repro.core import register_kappa_model, unregister_kappa_model
    from repro.problems import ConvectionDiffusionFamily

    class NoKappa(ConvectionDiffusionFamily):
        name = "test-no-kappa"
        description = "no analytic kappa"

    register_problem_family(NoKappa())
    register_kappa_model("test-no-kappa", lambda **kw: 2.0)
    try:
        assert unregister_problem_family("test-no-kappa")
        assert predicted_kappa("test-no-kappa") == pytest.approx(2.0)
    finally:
        unregister_kappa_model("test-no-kappa")

    class Impostor(HelmholtzFamily):
        name = "poisson-1d"
        description = "would clobber the built-in kappa model"

    # ...and a family colliding with it is refused atomically (no scenario
    # half-registered) unless overwrite is explicit
    with pytest.raises(ValueError, match="outside the problem suite"):
        register_problem_family(Impostor())
    assert "poisson-1d" not in list_scenarios()


def test_problem_registration_is_reload_idempotent():
    import importlib

    import repro.problems as problems

    importlib.reload(problems)
    assert set(NEW_FAMILIES) <= set(list_scenarios())
    assert set(NEW_FAMILIES) <= set(problems.PROBLEM_FAMILIES)


def test_tune_resolves_shared_memory_jobs(tmp_path):
    from repro.engine import SharedMatrixRegistry, SolveJob

    matrix = np.eye(4) * 2.0
    registry = SharedMatrixRegistry()
    try:
        handle = registry.publish(matrix)
        job = SolveJob(name="shared", matrix=None, rhs=np.ones(4),
                       target_accuracy=1e-8, shared=handle)
        tuner = Autotuner(path=tmp_path / "p.json", target_accuracy=1e-8)
        tuned = tuner.tune([job])
        assert tuned[0].kappa == pytest.approx(1.0)
        assert tuned[0].epsilon_l == optimal_epsilon_l(1.0, 1e-8)
    finally:
        registry.close()


def test_profile_store_is_corruption_safe(tmp_path):
    path = tmp_path / "autotune.json"
    path.write_text("{ this is not json", encoding="utf-8")
    assert ProfileStore(path).load() == {}
    path.write_text(json.dumps({"format_version": -1, "profiles": {}}),
                    encoding="utf-8")
    assert ProfileStore(path).load() == {}
    # valid JSON that is not the expected shape is corruption too
    path.write_text("[1, 2]", encoding="utf-8")
    assert ProfileStore(path).load() == {}
    path.write_text(json.dumps({"format_version": 1, "profiles": [1]}),
                    encoding="utf-8")
    assert ProfileStore(path).load() == {}
    # a corrupt store never breaks the tuner, it just starts fresh
    tuner = Autotuner(path=path, target_accuracy=1e-8)
    assert tuner.profiles == {}
    tuner.observe("fam", _fake_report(), kappa=10.0)
    assert Autotuner(path=path).profile("fam") is not None
