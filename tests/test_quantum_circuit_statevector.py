"""Tests for the circuit container and the state-vector engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.quantum import (
    QuantumCircuit,
    Statevector,
    apply_circuit,
    circuit_unitary,
    zero_state,
)
from repro.quantum.gates import standard_gate_matrix
from repro.quantum.statevector import apply_gate, basis_state


class TestCircuitContainer:
    def test_length_and_iteration(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        assert len(qc) == 2
        assert [g.name for g in qc] == ["h", "x"]

    def test_qubit_range_validation(self):
        qc = QuantumCircuit(2)
        with pytest.raises(DimensionError):
            qc.x(2)

    def test_requires_at_least_one_qubit(self):
        with pytest.raises(DimensionError):
            QuantumCircuit(0)

    def test_count_gates(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.ccx(0, 1, 2)
        counts = qc.count_gates()
        assert counts == {"h": 1, "cx": 1, "mcx(2)": 1}

    def test_depth(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.h(1)
        qc.cx(0, 1)
        qc.h(2)
        assert qc.depth() == 2

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.h(0)
        inner.cx(0, 1)
        outer = QuantumCircuit(3)
        outer.compose(inner, qubit_map=[2, 0])
        assert outer[0].targets == (2,)
        assert outer[1].controls == (2,) and outer[1].targets == (0,)

    def test_compose_mapping_length_check(self):
        inner = QuantumCircuit(2)
        outer = QuantumCircuit(3)
        with pytest.raises(DimensionError):
            outer.compose(inner, qubit_map=[0])

    def test_inverse_round_trip(self, rng):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.ry(0.3, 1)
        qc.cx(0, 1)
        qc.t(0)
        identity = circuit_unitary(qc.copy().compose(qc.inverse()))
        np.testing.assert_allclose(identity, np.eye(4), atol=1e-12)

    def test_copy_is_independent(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        dup = qc.copy()
        dup.x(0)
        assert len(qc) == 1 and len(dup) == 2


class TestStatevector:
    def test_zero_state(self):
        st0 = zero_state(3)
        assert st0.dimension == 8
        assert st0.data[0] == 1.0 and np.all(st0.data[1:] == 0)

    def test_basis_state(self):
        st5 = basis_state(3, 5)
        assert st5.data[5] == 1.0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(DimensionError):
            Statevector(np.ones(3))

    def test_normalized(self):
        st2 = Statevector([3.0, 4.0]).normalized()
        assert st2.norm() == pytest.approx(1.0)

    def test_fidelity(self):
        a = Statevector([1.0, 0.0])
        b = Statevector([1.0, 1.0])
        assert a.fidelity(b) == pytest.approx(0.5)

    def test_tensor_ordering(self):
        a = Statevector([0.0, 1.0])   # |1>
        b = Statevector([1.0, 0.0])   # |0>
        assert a.tensor(b).data[2] == 1.0   # |10> = index 2 (big-endian)


class TestGateApplication:
    def test_x_on_each_qubit(self):
        for qubit in range(3):
            qc = QuantumCircuit(3)
            qc.x(qubit)
            out = apply_circuit(qc)
            expected_index = 1 << (2 - qubit)   # big-endian
            assert out.data[expected_index] == 1.0

    def test_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        out = apply_circuit(qc)
        np.testing.assert_allclose(out.data, [1 / np.sqrt(2), 0, 0, 1 / np.sqrt(2)],
                                   atol=1e-12)

    def test_zero_controlled_gate(self):
        qc = QuantumCircuit(2)
        qc.mcx([0], 1, control_states=[0])
        out = apply_circuit(qc)       # input |00> -> control satisfied -> |01>
        assert out.data[1] == 1.0

    def test_controlled_gate_not_triggered(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        out = apply_circuit(qc)       # control is |0> -> nothing happens
        assert out.data[0] == 1.0

    def test_swap(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.swap(0, 1)
        out = apply_circuit(qc)
        assert out.data[1] == 1.0     # |01>

    def test_gate_outside_register_rejected(self):
        state = zero_state(1)
        qc = QuantumCircuit(2)
        qc.x(1)
        with pytest.raises(DimensionError):
            apply_gate(state, qc[0])

    def test_apply_circuit_dimension_check(self):
        qc = QuantumCircuit(2)
        with pytest.raises(DimensionError):
            apply_circuit(qc, zero_state(3))

    def test_circuit_unitary_matches_gate_product(self, rng):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 2)
        qc.ry(0.4, 1)
        qc.ccx(0, 1, 2)
        qc.rz(1.1, 2)
        unitary = circuit_unitary(qc)
        np.testing.assert_allclose(unitary @ unitary.conj().T, np.eye(8), atol=1e-12)
        # spot-check one column against direct state simulation
        out = apply_circuit(qc, basis_state(3, 5))
        np.testing.assert_allclose(unitary[:, 5], out.data, atol=1e-12)

    def test_multi_target_unitary_big_endian_order(self):
        # a two-qubit gate applied on (q1, q0) must see q1 as its most
        # significant qubit; verify with a CNOT matrix acting on reversed order
        cx = np.eye(4, dtype=complex)
        cx[2:, 2:] = standard_gate_matrix("x")
        qc = QuantumCircuit(2)
        qc.unitary(cx, qubits=[1, 0])
        qc_ref = QuantumCircuit(2)
        qc_ref.cx(1, 0)
        np.testing.assert_allclose(circuit_unitary(qc), circuit_unitary(qc_ref), atol=1e-12)


class TestStatevectorProperties:
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_circuits_preserve_norm(self, num_qubits, seed):
        rng = np.random.default_rng(seed)
        qc = QuantumCircuit(num_qubits)
        for _ in range(8):
            kind = rng.integers(0, 4)
            q = int(rng.integers(0, num_qubits))
            if kind == 0:
                qc.h(q)
            elif kind == 1:
                qc.ry(float(rng.uniform(-np.pi, np.pi)), q)
            elif kind == 2 and num_qubits > 1:
                other = int((q + 1 + rng.integers(0, num_qubits - 1)) % num_qubits)
                qc.cx(q, other)
            else:
                qc.rz(float(rng.uniform(-np.pi, np.pi)), q)
        out = apply_circuit(qc)
        assert out.norm() == pytest.approx(1.0, abs=1e-10)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_inverse_circuit_restores_basis_state(self, num_qubits, seed):
        rng = np.random.default_rng(seed)
        qc = QuantumCircuit(num_qubits)
        for _ in range(5):
            q = int(rng.integers(0, num_qubits))
            qc.ry(float(rng.uniform(-np.pi, np.pi)), q)
            if num_qubits > 1:
                other = int((q + 1) % num_qubits)
                qc.cz(q, other)
        index = int(rng.integers(0, 2**num_qubits))
        state = basis_state(num_qubits, index)
        forward = apply_circuit(qc, state)
        back = apply_circuit(qc.inverse(), forward)
        np.testing.assert_allclose(back.data, state.data, atol=1e-10)
