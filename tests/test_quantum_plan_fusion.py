"""Execution-plan IR: fusion correctness, plan caching, fused engine paths.

The correctness oracle of :mod:`repro.quantum.plan` is agreement with the
legacy per-gate loop (``fusion="none"``) to 1e-12, checked here
property-style on random circuits (random targets, controls, control states
and phases) and on real QSVT solve circuits, plus the plan-cache hit
counters, the byte-accounted solver cache and the batched refinement that
ride on the IR.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import random_workload
from repro.core import MixedPrecisionRefinement, QSVTLinearSolver
from repro.core.backends import CircuitQSVTBackend
from repro.engine import BatchedStatevector, CompiledSolverCache
from repro.linalg import random_rhs
from repro.quantum import QuantumCircuit, Statevector, apply_circuit
from repro.quantum.plan import (
    DEFAULT_MAX_FUSED_QUBITS,
    ExecutionPlan,
    compile_plan,
    circuit_plan_fingerprint,
    plan_cache,
)
from repro.qsp.qsvt_circuit import compile_qsvt_program


def _random_circuit(num_qubits: int, num_gates: int, rng) -> QuantumCircuit:
    """Random mix of rotations, entanglers, custom unitaries and multi-controls."""
    qc = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        kind = int(rng.integers(0, 6 if num_qubits >= 3 else 5))
        if kind == 0:
            qc.h(int(rng.integers(num_qubits)))
        elif kind == 1:
            qc.rz(float(rng.normal()), int(rng.integers(num_qubits)))
        elif kind == 2:
            qc.p(float(rng.normal()), int(rng.integers(num_qubits)))
        elif kind == 3:
            a, b = (int(q) for q in rng.choice(num_qubits, 2, replace=False))
            qc.cx(a, b)
        elif kind == 4:
            raw = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
            unitary, _ = np.linalg.qr(raw)
            a, b = (int(q) for q in rng.choice(num_qubits, 2, replace=False))
            qc.unitary(unitary, (a, b))
        else:
            controls = [int(q) for q in rng.choice(num_qubits, 2, replace=False)]
            target = next(q for q in range(num_qubits) if q not in controls)
            states = [int(s) for s in rng.integers(0, 2, size=2)]
            qc.mcx(controls, target, control_states=states)
    return qc


class TestFusedPlansMatchReference:
    def test_random_circuits_agree_to_1e12(self):
        rng = np.random.default_rng(2025)
        for _ in range(25):
            num_qubits = int(rng.integers(2, 6))
            circuit = _random_circuit(num_qubits, int(rng.integers(1, 30)), rng)
            state = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
            reference = apply_circuit(circuit, Statevector(state.copy()),
                                      fusion="none").data
            for fusion in ("none", "greedy"):
                plan = compile_plan(circuit, fusion=fusion, cache=False)
                assert np.max(np.abs(plan.apply(state) - reference)) < 1e-12

    def test_random_circuits_batched_agree_to_1e12(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            num_qubits = int(rng.integers(2, 6))
            circuit = _random_circuit(num_qubits, int(rng.integers(1, 25)), rng)
            batch = (rng.normal(size=(3, 2**num_qubits))
                     + 1j * rng.normal(size=(3, 2**num_qubits)))
            plan = compile_plan(circuit, cache=False)
            fused = plan.apply_batched(batch)
            for i in range(batch.shape[0]):
                reference = apply_circuit(circuit, Statevector(batch[i].copy()),
                                          fusion="none").data
                assert np.max(np.abs(fused[i] - reference)) < 1e-12

    def test_apply_circuit_default_matches_reference_loop(self, rng):
        circuit = _random_circuit(4, 20, rng)
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        fused = apply_circuit(circuit, Statevector(state.copy()))
        loop = apply_circuit(circuit, Statevector(state.copy()), fusion="none")
        assert np.max(np.abs(fused.data - loop.data)) < 1e-12

    def test_batched_statevector_plan_path(self, rng):
        circuit = _random_circuit(3, 12, rng)
        data = rng.normal(size=(4, 8)) + 1j * rng.normal(size=(4, 8))
        batch = BatchedStatevector(data)
        fused = batch.apply_circuit(circuit)
        reference = batch.apply_circuit(circuit, fusion="none")
        assert np.max(np.abs(fused.data - reference.data)) < 1e-12
        replayed = batch.apply_plan(circuit.compile())
        assert np.max(np.abs(replayed.data - reference.data)) < 1e-12


class TestFusionPass:
    def test_none_lowers_one_op_per_gate(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rz(0.3, 2).mcx([0, 1], 2)
        plan = qc.compile(fusion="none", cache=False)
        assert plan.num_contractions == len(qc) == 4
        assert plan.fusion == "none"

    def test_greedy_fuses_overlapping_gates(self):
        qc = QuantumCircuit(3)
        qc.h(0).rz(0.2, 0).cx(0, 1).h(2).cx(1, 2)
        plan = qc.compile(fusion="greedy", cache=False)
        assert plan.num_contractions < len(qc)
        assert plan.source_gate_count == len(qc)
        assert plan.stats()["fusion_ratio"] > 1.0

    def test_nested_sets_fuse_beyond_width_cap(self, rng):
        # a 5-qubit dense layer followed by a 1-qubit diagonal on a subset
        # must fuse even though 5 > max_fused_qubits: the union never grows.
        raw = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        unitary, _ = np.linalg.qr(raw)
        qc = QuantumCircuit(5)
        qc.unitary(unitary, range(5), name="BE")
        qc.rz(0.7, 0)
        qc.unitary(unitary.conj().T, range(5), name="BE†")
        plan = qc.compile(fusion="greedy", max_fused_qubits=2, cache=False)
        assert plan.num_contractions == 1
        state = rng.normal(size=32) + 1j * rng.normal(size=32)
        reference = apply_circuit(qc, Statevector(state.copy()), fusion="none")
        assert np.max(np.abs(plan.apply(state) - reference.data)) < 1e-12

    def test_diagonal_fast_path(self):
        qc = QuantumCircuit(3)
        qc.rz(0.4, 0).p(0.9, 2).z(1)
        plan = qc.compile(fusion="greedy", cache=False)
        assert plan.num_contractions == 1
        assert plan.ops[0].kind == "diagonal"
        state = np.arange(8, dtype=complex) + 1.0
        reference = apply_circuit(qc, Statevector(state.copy()), fusion="none")
        assert np.max(np.abs(plan.apply(state) - reference.data)) < 1e-12

    def test_wide_controlled_gate_stays_sliced(self):
        qc = QuantumCircuit(6)
        qc.h(5)
        qc.mcx([0, 1, 2, 3, 4], 5, control_states=[1, 0, 1, 0, 1])
        plan = qc.compile(fusion="greedy", max_fused_qubits=3, cache=False)
        kinds = [op.kind for op in plan.ops]
        assert "controlled" in kinds
        state = np.zeros(64, dtype=complex)
        state[0b10101_0] = 1.0   # control pattern satisfied
        reference = apply_circuit(qc, Statevector(state.copy()), fusion="none")
        assert np.max(np.abs(plan.apply(state) - reference.data)) < 1e-12

    def test_invalid_fusion_mode_rejected(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        with pytest.raises(ValueError):
            qc.compile(fusion="eager")
        with pytest.raises(ValueError):
            qc.compile(max_fused_qubits=0)


class TestPlanCache:
    def test_identical_circuits_hit(self):
        cache = plan_cache()
        qc1 = QuantumCircuit(3)
        qc1.h(0).cx(0, 1).rz(0.25, 2)
        qc2 = QuantumCircuit(3)
        qc2.h(0).cx(0, 1).rz(0.25, 2)
        assert circuit_plan_fingerprint(qc1) == circuit_plan_fingerprint(qc2)
        hits_before = cache.hits
        first = qc1.compile()
        second = qc2.compile()    # rebuilt but byte-identical -> cache hit
        assert second is first
        assert cache.hits == hits_before + 1

    def test_different_parameters_miss(self):
        qc1 = QuantumCircuit(2)
        qc1.rz(0.25, 0)
        qc2 = QuantumCircuit(2)
        qc2.rz(0.35, 0)
        assert circuit_plan_fingerprint(qc1) != circuit_plan_fingerprint(qc2)
        assert qc1.compile() is not qc2.compile()

    def test_stats_and_clear(self):
        cache = plan_cache()
        qc = QuantumCircuit(2)
        qc.h(0).h(1)
        qc.compile()
        stats = cache.stats()
        assert stats["size"] >= 1 and stats["hits"] + stats["misses"] > 0
        cache.clear()
        assert len(cache) == 0

    def test_byte_budget_bounds_plan_memory(self):
        from repro.quantum.plan import PlanCache

        cache = PlanCache(maxsize=8, max_bytes=1)
        plans = []
        for theta in (0.1, 0.2, 0.3):
            qc = QuantumCircuit(2)
            qc.rz(theta, 0)
            plan = compile_plan(qc, cache=False)
            cache.put((circuit_plan_fingerprint(qc), "greedy", 4), plan)
            plans.append(plan)
        stats = cache.stats()
        # over budget: only the most recent plan survives
        assert stats["size"] == 1 and stats["evictions"] == 2
        assert stats["total_bytes"] == plans[-1].payload_bytes()

    def test_qsvt_recompile_hits_plan_cache(self, prepared_circuit_solver):
        backend = prepared_circuit_solver.backend
        # first compile (re)materialises the plans in the LRU, the second —
        # byte-identical circuits rebuilt from scratch — must hit.
        compile_qsvt_program(backend.block, backend.phases)
        hits_before = plan_cache().hits
        program = compile_qsvt_program(backend.block, backend.phases)
        assert plan_cache().hits >= hits_before + program.num_runs


class TestFusedQSVTSolve:
    def test_fused_matches_unfused_on_solve_circuit(self, medium_workload):
        fused = CircuitQSVTBackend()
        fused.prepare(medium_workload.matrix, epsilon_l=1e-2)
        unfused = CircuitQSVTBackend(fusion="none")
        unfused.prepare(medium_workload.matrix, epsilon_l=1e-2)
        rhs = np.stack([random_rhs(16, rng=i) for i in range(4)])
        single_dev = np.max(np.abs(
            fused.apply_inverse(rhs[0]).direction
            - unfused.apply_inverse(rhs[0]).direction))
        assert single_dev < 1e-12
        for a, b in zip(fused.apply_inverse_batch(rhs),
                        unfused.apply_inverse_batch(rhs)):
            assert np.max(np.abs(a.direction - b.direction)) < 1e-12

    def test_backend_reports_contraction_reduction(self, prepared_circuit_solver):
        info = prepared_circuit_solver.describe()
        assert info["fusion"] == "greedy"
        assert info["gates_per_sweep"] / info["contractions_per_sweep"] >= 1.5

    def test_program_compiled_once_and_replayed(self, medium_workload):
        backend = CircuitQSVTBackend()
        backend.prepare(medium_workload.matrix, epsilon_l=1e-2)
        program = backend.program
        backend.apply_inverse(medium_workload.rhs)
        backend.apply_inverse_batch(np.stack([medium_workload.rhs] * 2))
        assert backend.program is program
        assert program.payload_bytes() > 0

    def test_plan_isolated_from_gate_list(self, rng):
        # the compiled plan must be a snapshot: appending gates afterwards
        # does not change an already-compiled plan.
        qc = QuantumCircuit(2)
        qc.h(0)
        plan = qc.compile(cache=False)
        before = plan.apply(np.array([1, 0, 0, 0], dtype=complex))
        qc.x(1)
        after = plan.apply(np.array([1, 0, 0, 0], dtype=complex))
        assert np.array_equal(before, after)
        assert isinstance(plan, ExecutionPlan)
        assert plan.max_fused_qubits == DEFAULT_MAX_FUSED_QUBITS


class TestByteAccountedCache:
    def test_totals_exposed_in_stats(self, medium_workload):
        cache = CompiledSolverCache()
        solver = cache.solver(medium_workload.matrix, epsilon_l=1e-2,
                              backend="circuit")
        stats = cache.stats()
        assert stats["total_bytes"] == solver.payload_bytes() > 0
        assert stats["max_bytes"] is None

    def test_max_bytes_evicts_lru_not_most_recent(self, medium_workload):
        cache = CompiledSolverCache(max_bytes=1)
        first = cache.solver(medium_workload.matrix, epsilon_l=1e-2,
                             backend="exact")
        other = random_workload(16, 5.0, rng=99)
        second = cache.solver(other.matrix, epsilon_l=1e-2, backend="exact")
        stats = cache.stats()
        # over budget: the older entry is evicted, the newest always survives
        assert stats["size"] == 1 and stats["evictions"] == 1
        assert cache.solver(other.matrix, epsilon_l=1e-2, backend="exact") is second
        assert cache.solver(medium_workload.matrix, epsilon_l=1e-2,
                            backend="exact") is not first

    def test_budget_keeps_entries_that_fit(self, medium_workload):
        probe = CompiledSolverCache()
        solver = probe.solver(medium_workload.matrix, epsilon_l=1e-2,
                              backend="exact")
        budget = 3 * solver.payload_bytes()
        cache = CompiledSolverCache(max_bytes=budget)
        for epsilon in (1e-1, 5e-2, 1e-2):
            cache.solver(medium_workload.matrix, epsilon_l=epsilon,
                         backend="exact")
        stats = cache.stats()
        assert stats["size"] == 3 and stats["evictions"] == 0
        assert stats["total_bytes"] <= budget

    def test_invalidate_releases_bytes(self, medium_workload):
        cache = CompiledSolverCache()
        cache.solver(medium_workload.matrix, epsilon_l=1e-2, backend="exact")
        assert cache.total_bytes > 0
        assert cache.invalidate(medium_workload.matrix) == 1
        assert cache.total_bytes == 0


class TestBatchedRefinement:
    def test_solve_batch_matches_sequential(self, medium_workload):
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=1e-2,
                                  backend="circuit")
        driver = MixedPrecisionRefinement(solver, target_accuracy=1e-10)
        rng = np.random.default_rng(5)
        batch = rng.standard_normal((3, 16))
        batched = driver.solve_batch(batch)
        for i, result in enumerate(batched):
            sequential = driver.solve(batch[i])
            assert result.converged and sequential.converged
            assert result.iterations == sequential.iterations
            assert np.max(np.abs(result.x - sequential.x)) < 1e-9
            assert (result.total_block_encoding_calls
                    == sequential.total_block_encoding_calls)

    def test_solve_batch_histories_and_forward_errors(self, medium_workload):
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=1e-2,
                                  backend="circuit")
        driver = MixedPrecisionRefinement(solver, target_accuracy=1e-8)
        rng = np.random.default_rng(6)
        batch = rng.standard_normal((2, 16))
        x_true = np.linalg.solve(medium_workload.matrix, batch.T).T
        results = driver.solve_batch(batch, x_true=x_true)
        for result in results:
            assert result.converged
            residuals = [it.scaled_residual for it in result.history]
            assert residuals[-1] <= 1e-8
            assert np.isfinite(result.history[-1].forward_error)

    def test_solve_batch_validates_input(self, medium_workload):
        solver = QSVTLinearSolver(medium_workload.matrix, epsilon_l=1e-2,
                                  backend="exact")
        driver = MixedPrecisionRefinement(solver)
        with pytest.raises(ValueError):
            driver.solve_batch(np.zeros((2, 16)))
        with pytest.raises(ValueError):
            driver.solve_batch(np.ones((2, 8)))
