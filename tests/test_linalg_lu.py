"""Unit and property tests for LU, triangular solves, QR and Cholesky."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SingularMatrixError
from repro.linalg import (
    cholesky_factor,
    cholesky_solve,
    householder_qr,
    lu_factor,
    lu_solve,
    random_matrix_with_condition_number,
    random_spd_matrix,
    solve_least_squares,
    solve_lower_triangular,
    solve_upper_triangular,
)


class TestTriangularSolves:
    def test_lower(self, rng):
        l = np.tril(rng.standard_normal((6, 6))) + 3 * np.eye(6)
        b = rng.standard_normal(6)
        np.testing.assert_allclose(l @ solve_lower_triangular(l, b), b, atol=1e-10)

    def test_upper(self, rng):
        u = np.triu(rng.standard_normal((6, 6))) + 3 * np.eye(6)
        b = rng.standard_normal(6)
        np.testing.assert_allclose(u @ solve_upper_triangular(u, b), b, atol=1e-10)

    def test_unit_diagonal(self, rng):
        l = np.tril(rng.standard_normal((5, 5)), -1) + np.eye(5)
        b = rng.standard_normal(5)
        x = solve_lower_triangular(l, b, unit_diagonal=True)
        np.testing.assert_allclose(l @ x, b, atol=1e-12)

    def test_zero_diagonal_raises(self):
        with pytest.raises(SingularMatrixError):
            solve_upper_triangular(np.array([[0.0, 1.0], [0.0, 1.0]]), [1.0, 1.0])

    def test_low_precision_solve_less_accurate(self, rng):
        u = np.triu(rng.standard_normal((8, 8))) + 4 * np.eye(8)
        b = rng.standard_normal(8)
        exact = solve_upper_triangular(u, b)
        low = solve_upper_triangular(u, b, precision="fp16")
        err = np.linalg.norm(exact - low) / np.linalg.norm(exact)
        assert 0 < err < 1e-1


class TestLU:
    def test_reconstruction(self, rng):
        a = rng.standard_normal((8, 8))
        np.testing.assert_allclose(lu_factor(a).reconstruct(), a, atol=1e-12)

    def test_solve_matches_numpy(self, rng):
        a = rng.standard_normal((10, 10)) + 10 * np.eye(10)
        b = rng.standard_normal(10)
        np.testing.assert_allclose(lu_solve(a, b), np.linalg.solve(a, b), atol=1e-9)

    def test_factors_are_triangular(self, rng):
        f = lu_factor(rng.standard_normal((7, 7)))
        np.testing.assert_allclose(f.lower, np.tril(f.lower))
        np.testing.assert_allclose(f.upper, np.triu(f.upper))
        np.testing.assert_allclose(np.diag(f.lower), np.ones(7))

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_allclose(lu_solve(a, [2.0, 3.0]), [3.0, 2.0])

    def test_singular_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            lu_factor(np.ones((3, 3)))

    def test_no_pivot_on_dominant_matrix(self, rng):
        a = rng.standard_normal((5, 5)) + 10 * np.eye(5)
        f = lu_factor(a, pivot=False)
        np.testing.assert_allclose(f.reconstruct(), a, atol=1e-10)

    def test_low_precision_error_magnitude(self, rng):
        a = random_matrix_with_condition_number(16, 10.0, rng=rng)
        b = rng.standard_normal(16)
        exact = np.linalg.solve(a, b)
        x_single = lu_solve(a, b, precision="fp32")
        rel = np.linalg.norm(x_single - exact) / np.linalg.norm(exact)
        assert 1e-9 < rel < 1e-4   # roughly u_l * kappa

    def test_solve_reuses_factors_for_multiple_rhs(self, rng):
        a = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        f = lu_factor(a)
        for _ in range(3):
            b = rng.standard_normal(6)
            np.testing.assert_allclose(a @ f.solve(b), b, atol=1e-9)

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_property_identity_solve(self, n):
        f = lu_factor(np.eye(n))
        b = np.arange(1.0, n + 1)
        np.testing.assert_allclose(f.solve(b), b)


class TestQR:
    def test_orthogonality_and_reconstruction(self, rng):
        a = rng.standard_normal((8, 5))
        q, r = householder_qr(a)
        np.testing.assert_allclose(q @ q.T, np.eye(8), atol=1e-12)
        np.testing.assert_allclose(q @ r, a, atol=1e-12)
        np.testing.assert_allclose(r[5:], 0.0, atol=1e-12)

    def test_least_squares_matches_lstsq(self, rng):
        a = rng.standard_normal((10, 4))
        b = rng.standard_normal(10)
        expected = np.linalg.lstsq(a, b, rcond=None)[0]
        np.testing.assert_allclose(solve_least_squares(a, b), expected, atol=1e-10)

    def test_square_system(self, rng):
        a = rng.standard_normal((6, 6)) + 4 * np.eye(6)
        b = rng.standard_normal(6)
        np.testing.assert_allclose(solve_least_squares(a, b), np.linalg.solve(a, b),
                                   atol=1e-9)


class TestCholesky:
    def test_factor_reconstruction(self):
        a = random_spd_matrix(10, 30.0, rng=4)
        l = cholesky_factor(a)
        np.testing.assert_allclose(l @ l.T, a, atol=1e-10)
        np.testing.assert_allclose(l, np.tril(l))

    def test_solve(self, rng):
        a = random_spd_matrix(8, 10.0, rng=5)
        b = rng.standard_normal(8)
        np.testing.assert_allclose(cholesky_solve(a, b), np.linalg.solve(a, b), atol=1e-9)

    def test_indefinite_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            cholesky_factor(np.array([[1.0, 2.0], [2.0, 1.0]]))
