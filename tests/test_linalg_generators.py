"""Unit and property tests for repro.linalg.generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError
from repro.linalg import (
    condition_number,
    poisson_1d_matrix,
    poisson_2d_matrix,
    random_matrix_with_condition_number,
    random_rhs,
    random_spd_matrix,
    random_unitary,
    tridiagonal_toeplitz,
)


class TestRandomUnitary:
    @pytest.mark.parametrize("n", [1, 2, 5, 16])
    def test_orthogonal(self, n):
        q = random_unitary(n, rng=0)
        np.testing.assert_allclose(q @ q.T, np.eye(n), atol=1e-12)

    def test_complex_unitary(self):
        q = random_unitary(6, rng=1, complex_valued=True)
        np.testing.assert_allclose(q @ q.conj().T, np.eye(6), atol=1e-12)

    def test_reproducible(self):
        np.testing.assert_array_equal(random_unitary(4, rng=3), random_unitary(4, rng=3))


class TestPrescribedConditionNumber:
    @pytest.mark.parametrize("kappa", [1.0, 2.0, 10.0, 1e3, 1e6])
    def test_condition_number_is_exact(self, kappa):
        a = random_matrix_with_condition_number(16, kappa, rng=0)
        assert condition_number(a) == pytest.approx(kappa, rel=1e-8)

    def test_spectral_norm_is_one(self):
        a = random_matrix_with_condition_number(8, 100.0, rng=1)
        assert np.linalg.norm(a, 2) == pytest.approx(1.0, rel=1e-10)

    def test_symmetric_option_gives_spd(self):
        a = random_spd_matrix(8, 50.0, rng=2)
        np.testing.assert_allclose(a, a.T, atol=1e-12)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    @pytest.mark.parametrize("distribution", ["logarithmic", "linear", "cluster"])
    def test_distributions(self, distribution):
        a = random_matrix_with_condition_number(8, 20.0, rng=3, distribution=distribution)
        assert condition_number(a) == pytest.approx(20.0, rel=1e-8)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            random_matrix_with_condition_number(4, 2.0, distribution="bogus")

    def test_kappa_below_one_rejected(self):
        with pytest.raises(ValueError):
            random_matrix_with_condition_number(4, 0.5)

    def test_dimension_one(self):
        a = random_matrix_with_condition_number(1, 1.0, rng=0)
        assert a.shape == (1, 1)

    @given(st.integers(min_value=2, max_value=12),
           st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=30, deadline=None)
    def test_property_condition_number(self, n, kappa):
        a = random_matrix_with_condition_number(n, kappa, rng=0)
        assert condition_number(a) == pytest.approx(kappa, rel=1e-6)


class TestRhs:
    def test_normalized(self):
        b = random_rhs(32, rng=0)
        assert np.linalg.norm(b) == pytest.approx(1.0)

    def test_unnormalized(self):
        b = random_rhs(32, rng=0, normalized=False)
        assert np.linalg.norm(b) != pytest.approx(1.0)


class TestStructuredMatrices:
    def test_tridiagonal_structure(self):
        a = tridiagonal_toeplitz(5, 2.0, -1.0)
        assert np.all(np.diag(a) == 2.0)
        assert np.all(np.diag(a, 1) == -1.0)
        assert np.all(np.diag(a, 2) == 0.0)

    def test_tridiagonal_rejects_empty(self):
        with pytest.raises(DimensionError):
            tridiagonal_toeplitz(0, 2.0, -1.0)

    def test_poisson_unscaled_matches_stencil(self):
        a = poisson_1d_matrix(4, scaled=False)
        np.testing.assert_array_equal(a, tridiagonal_toeplitz(4, 2.0, -1.0))

    def test_poisson_scaling(self):
        n = 7
        a = poisson_1d_matrix(n, scaled=True)
        h = 1.0 / (n + 1)
        np.testing.assert_allclose(a * h**2, tridiagonal_toeplitz(n, 2.0, -1.0))

    def test_poisson_condition_number_grows_quadratically(self):
        k8 = condition_number(poisson_1d_matrix(8, scaled=False))
        k16 = condition_number(poisson_1d_matrix(16, scaled=False))
        assert k16 / k8 == pytest.approx(4.0, rel=0.3)

    def test_poisson_2d_dimension_and_symmetry(self):
        a = poisson_2d_matrix(4)
        assert a.shape == (16, 16)
        np.testing.assert_array_equal(a, a.T)
        assert np.all(np.diag(a) == 4.0)
