"""Tests for the read-out models and the de-normalisation of Remark 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SamplingModel, brent_minimize, recover_scale
from repro.linalg import random_matrix_with_condition_number


class TestSamplingModel:
    def test_exact_mode_is_identity_up_to_normalisation(self, rng):
        model = SamplingModel(mode="exact")
        vec = rng.standard_normal(8)
        out = model.read_out(vec)
        np.testing.assert_allclose(out, vec / np.linalg.norm(vec))
        assert model.shots_used() == 0
        assert model.is_exact

    def test_gaussian_error_scales_with_shots(self, rng):
        vec = rng.standard_normal(16)
        vec /= np.linalg.norm(vec)
        errors = []
        for shots in (100, 1_000_000):
            model = SamplingModel(mode="gaussian", shots=shots, rng=3)
            errors.append(np.linalg.norm(model.read_out(vec) - vec))
        assert errors[1] < errors[0]

    def test_multinomial_output_is_unit_norm(self, rng):
        model = SamplingModel(mode="multinomial", shots=5000, rng=1)
        vec = rng.standard_normal(8)
        out = model.read_out(vec)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_multinomial_preserves_signs(self):
        vec = np.array([0.7, -0.7, 0.1, -0.1])
        model = SamplingModel(mode="multinomial", shots=20_000, rng=2)
        out = model.read_out(vec)
        assert np.all(np.sign(out[np.abs(out) > 1e-6]) == np.sign(vec[np.abs(out) > 1e-6]))

    def test_invalid_mode_and_shots(self):
        with pytest.raises(ValueError):
            SamplingModel(mode="bogus")
        with pytest.raises(ValueError):
            SamplingModel(mode="gaussian", shots=0)

    def test_zero_vector_rejected(self):
        with pytest.raises(ZeroDivisionError):
            SamplingModel().read_out(np.zeros(4))

    def test_shots_for_accuracy(self):
        assert SamplingModel.shots_for_accuracy(1e-2) == 10_000
        assert SamplingModel.shots_for_accuracy(1e-3, constant=2.0) == 2_000_000
        with pytest.raises(ValueError):
            SamplingModel.shots_for_accuracy(0.0)


class TestBrentMinimize:
    def test_quadratic(self):
        assert brent_minimize(lambda x: (x - 3.2) ** 2, (-10, 10)) == pytest.approx(3.2, abs=1e-8)

    def test_asymmetric_function(self):
        result = brent_minimize(lambda x: abs(x - 1.5) + 0.1 * (x - 1.5) ** 2, (0, 4))
        assert result == pytest.approx(1.5, abs=1e-6)

    def test_reversed_bracket(self):
        assert brent_minimize(lambda x: (x + 1) ** 2, (5, -5)) == pytest.approx(-1.0, abs=1e-8)

    @given(st.floats(min_value=-5, max_value=5), st.floats(min_value=0.1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_property_quadratic_minimum(self, center, curvature):
        found = brent_minimize(lambda x: curvature * (x - center) ** 2, (-10, 10),
                               tolerance=1e-12)
        assert found == pytest.approx(center, abs=1e-6)


class TestRecoverScale:
    def test_exact_direction_recovers_norm(self, rng):
        a = random_matrix_with_condition_number(8, 5.0, rng=rng)
        x = rng.standard_normal(8)
        b = a @ x
        eta = x / np.linalg.norm(x)
        mu = recover_scale(a, eta, b)
        assert mu == pytest.approx(np.linalg.norm(x), rel=1e-12)

    def test_brent_matches_analytic(self, rng):
        a = random_matrix_with_condition_number(8, 5.0, rng=rng)
        eta = rng.standard_normal(8)
        eta /= np.linalg.norm(eta)
        b = rng.standard_normal(8)
        analytic = recover_scale(a, eta, b, method="analytic")
        brent = recover_scale(a, eta, b, method="brent")
        assert brent == pytest.approx(analytic, abs=1e-6)

    def test_negative_scale_allowed(self, rng):
        a = np.eye(4)
        x = rng.standard_normal(4)
        eta = -x / np.linalg.norm(x)
        mu = recover_scale(a, eta, x)
        assert mu == pytest.approx(-np.linalg.norm(x))

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            recover_scale(np.eye(2), [1.0, 0.0], [1.0, 0.0], method="newton")

    def test_minimises_residual(self, rng):
        a = random_matrix_with_condition_number(6, 10.0, rng=rng)
        eta = rng.standard_normal(6)
        eta /= np.linalg.norm(eta)
        b = rng.standard_normal(6)
        mu = recover_scale(a, eta, b)
        best = np.linalg.norm(b - mu * (a @ eta))
        for delta in (-1e-3, 1e-3):
            assert np.linalg.norm(b - (mu + delta) * (a @ eta)) >= best
