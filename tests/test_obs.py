"""Tests for repro.obs: metrics registry, request tracing, event log.

Three layers of coverage:

1. unit behaviour of the primitives (counters/gauges/histograms and their
   mergeable snapshots, deterministic trace sampling, span nesting, the
   dual-homed event log);
2. the engine integration: coalesced requests sharing one sweep span by
   reference, cache/store instrumentation riding the registry;
3. the serving tier's hard propagation paths — worker respawn, in-flight
   redispatch, degraded classical fallback, and the cross-process span
   round-trip — plus the HTTP observability endpoints.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine.aio import AsyncSolveEngine
from repro.obs import Observability
from repro.obs.events import EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    relabel_snapshot,
    render_prometheus,
)
from repro.obs.trace import (
    TraceContext,
    Tracer,
    activated,
    current_trace,
    default_sample_rate,
    span,
    trace_is_sampled,
)
from repro.serving.frontend import ClusterEngine, ServingHTTPServer
from repro.serving.resilience import ChaosSpec, CircuitBreaker
from repro.utils import LatencyHistogram


def _spd_system(n: int, kappa: float, seed: int):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    matrix = q @ np.diag(np.linspace(1.0, kappa, n)) @ q.T
    return matrix, rng.normal(size=n)


def _wait_until(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for: {message}")


# ---------------------------------------------------------------------- #
# metrics registry
# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("hits_total", "hits")
        counter.inc()
        counter.inc(2.0, result="miss")
        counter.inc(result="miss")
        assert counter.value() == 1.0
        assert counter.value(result="miss") == 3.0
        assert counter.total() == 4.0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry(enabled=True).counter("c_total", "c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry(enabled=True).gauge("depth", "d")
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value() == 4.0

    def test_registration_is_idempotent_but_type_checked(self):
        registry = MetricsRegistry(enabled=True)
        first = registry.counter("x_total", "x")
        assert registry.counter("x_total", "x") is first
        with pytest.raises(TypeError):
            registry.gauge("x_total", "x")

    def test_disabled_registry_is_inert_but_safe(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total", "x")
        counter.inc()
        assert counter.value() == 0.0
        assert registry.snapshot() == {}

    def test_env_var_gates_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "off")
        assert not MetricsRegistry().enabled
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert MetricsRegistry().enabled
        monkeypatch.delenv("REPRO_METRICS")
        assert MetricsRegistry().enabled  # metrics default on

    def test_histogram_labelled_is_the_series(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("lat_seconds", "latency")
        underlying = histogram.labelled()
        assert isinstance(underlying, LatencyHistogram)
        underlying.record(0.5)
        histogram.observe(1.5)
        assert histogram.summary()["count"] == 2

    def test_snapshot_merge_adds_counters_and_folds_histograms(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.counter("req_total", "r").inc(3.0)
        b.counter("req_total", "r").inc(4.0)
        a.histogram("lat_seconds", "l").observe(1.0)
        b.histogram("lat_seconds", "l").observe(3.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        series = merged["repro_req_total"]["series"]
        assert list(series.values()) == [7.0]
        folded = LatencyHistogram.from_state(
            next(iter(merged["repro_lat_seconds"]["series"].values())))
        assert folded.summary()["count"] == 2

    def test_relabel_keeps_snapshots_disjoint(self):
        a = MetricsRegistry(enabled=True)
        a.counter("req_total", "r").inc(2.0)
        merged = merge_snapshots([relabel_snapshot(a.snapshot(), worker="w0"),
                                  relabel_snapshot(a.snapshot(), worker="w1")])
        series = merged["repro_req_total"]["series"]
        assert len(series) == 2 and all(v == 2.0 for v in series.values())

    def test_prometheus_rendering(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("req_total", "requests").inc(5.0, code="200")
        registry.gauge("depth", "queue depth").set(3.0)
        registry.histogram("lat_seconds", "latency").observe(0.25)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_req_total counter" in text
        assert 'repro_req_total{code="200"} 5' in text
        assert "repro_depth 3" in text
        assert 'repro_lat_seconds{quantile="0.5"}' in text
        assert "repro_lat_seconds_count 1" in text

    def test_merge_rejects_cross_type_collision(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.counter("x_total", "x").inc()
        b.gauge("x_total", "x").set(1.0)
        with pytest.raises(TypeError):
            merge_snapshots([a.snapshot(), b.snapshot()])


# ---------------------------------------------------------------------- #
# tracing
# ---------------------------------------------------------------------- #
class TestTracing:
    def test_sampling_is_deterministic_and_monotone(self):
        trace_id = "deadbeef" * 4
        assert trace_is_sampled(trace_id, 1.0)
        assert not trace_is_sampled(trace_id, 0.0)
        # the same id never flips between repeated evaluations
        assert all(trace_is_sampled(trace_id, 0.7)
                   == trace_is_sampled(trace_id, 0.7) for _ in range(10))
        # monotone in the rate: sampled at r implies sampled at r' > r
        for rate in (0.1, 0.3, 0.5, 0.9):
            if trace_is_sampled(trace_id, rate):
                assert trace_is_sampled(trace_id, min(1.0, rate + 0.05))

    def test_sample_rate_env_parsing(self, monkeypatch):
        for raw, expected in (("", 0.0), ("0", 0.0), ("off", 0.0),
                              ("1", 1.0), ("on", 1.0), ("0.25", 0.25),
                              ("nonsense", 0.0)):
            monkeypatch.setenv("REPRO_TRACE", raw)
            assert default_sample_rate() == expected

    def test_span_nesting_and_attrs(self):
        trace = TraceContext("t" * 32, sampled=True)
        with trace.span("outer", kind="test"):
            with trace.span("inner"):
                pass
        outer, inner = trace.spans
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert outer["attrs"]["kind"] == "test"
        assert outer.duration >= inner.duration >= 0.0

    def test_unsampled_trace_records_nothing(self):
        trace = TraceContext("t" * 32, sampled=False)
        with trace.span("op"):
            pass
        trace.add_span("pre", duration=1.0)
        assert trace.spans == []

    def test_ambient_span_helper_noops_without_trace(self):
        assert current_trace() is None
        with span("orphan"):  # must not raise nor record anywhere
            pass

    def test_activated_scopes_the_ambient_trace(self):
        trace = TraceContext("t" * 32, sampled=True)
        with activated(trace):
            assert current_trace() is trace
            with span("ambient", tag=1):
                pass
        assert current_trace() is None
        assert [s.name for s in trace.spans] == ["ambient"]

    def test_wire_roundtrip_measures_queue_wait(self):
        trace = TraceContext("t" * 32, sampled=True, origin="fe")
        wire = trace.to_wire()
        remote = TraceContext.from_wire(wire, origin="worker-1")
        assert remote.trace_id == trace.trace_id and remote.sampled
        remote.add_span("queue_wait",
                        duration=time.monotonic() - wire["enqueued_at"])
        exported = remote.export_spans()
        # span ids from different origins never collide when adopted back
        assert exported[0]["span_id"].split("-")[1] == "worker"
        trace.adopt(exported)
        assert [s.name for s in trace.spans] == ["queue_wait"]

    def test_tracer_zero_rate_returns_none(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start() is None
        assert not tracer.enabled

    def test_buffer_ring_eviction_keeps_slow_log(self):
        tracer = Tracer(sample_rate=1.0, capacity=2)
        tracer.buffer.slow_threshold = 0.0  # everything is "slow"
        ids = []
        for _ in range(4):
            trace = tracer.start()
            ids.append(trace.trace_id)
            tracer.finish(trace)
        stats = tracer.stats()
        assert stats["stored"] == 2 and stats["evicted"] == 2
        assert tracer.buffer.get(ids[0]) is None  # evicted from the ring
        assert len(tracer.buffer.slow()) >= 2  # but slow log survives


# ---------------------------------------------------------------------- #
# event log
# ---------------------------------------------------------------------- #
class TestEventLog:
    def test_memory_ring_and_sequencing(self):
        log = EventLog(path=False, source="fe")
        log.emit("worker_death", worker="w0", incarnation=1)
        log.emit("worker_respawn", worker="w0", incarnation=2)
        events = log.events()
        assert [e["kind"] for e in events] == ["worker_death",
                                               "worker_respawn"]
        assert [e["seq"] for e in events] == [1, 2]
        assert all(e["source"] == "fe" for e in events)

    def test_file_interleaving_and_read_back(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        a = EventLog(path, source="frontend")
        b = EventLog(path, source="worker-0")
        a.emit("breaker_open", worker="w0")
        b.emit("chaos_fault", fault="crash", trace_id="abc")
        b.sync()
        a.close()
        b.close()
        records = EventLog.read_file(path)
        assert {r["kind"] for r in records} == {"breaker_open", "chaos_fault"}
        fault = next(r for r in records if r["kind"] == "chaos_fault")
        assert fault["trace_id"] == "abc" and fault["source"] == "worker-0"

    def test_read_file_skips_torn_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "ok"}\n{"kind": "torn', encoding="utf-8")
        records = EventLog.read_file(str(path))
        assert [r["kind"] for r in records] == ["ok"]

    def test_ingest_folds_foreign_events(self):
        log = EventLog(path=False)
        assert log.ingest({"kind": "worker_death", "seq": 9}) is not None
        assert log.ingest("not a record") is None
        assert log.events(kind="worker_death")[0]["seq"] == 9

    def test_on_emit_tap_failures_are_swallowed(self):
        log = EventLog(path=False)
        seen = []
        log.on_emit = seen.append
        log.emit("a")
        log.on_emit = lambda record: 1 / 0
        log.emit("b")  # must not raise
        assert seen[0]["kind"] == "a" and len(log.events()) == 2

    def test_env_var_resolution(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EVENT_LOG", "off")
        assert EventLog().path is None
        target = str(tmp_path / "e.jsonl")
        monkeypatch.setenv("REPRO_EVENT_LOG", target)
        log = EventLog()
        assert log.path == target
        log.close()

    def test_stats_reports_lag(self):
        clock = iter([10.0, 13.5]).__next__
        log = EventLog(path=False, clock=clock)
        log.emit("tick")
        assert log.stats()["last_event_age_s"] == pytest.approx(3.5)


# ---------------------------------------------------------------------- #
# engine integration: shared sweep spans under coalescing
# ---------------------------------------------------------------------- #
class TestEngineTracing:
    def test_coalesced_batch_shares_one_sweep_span(self):
        matrix, _ = _spd_system(8, 4.0, 5)
        rng = np.random.default_rng(6)
        registry = MetricsRegistry(enabled=True)
        engine = AsyncSolveEngine(max_batch_size=8, coalesce_window=0.05,
                                  metrics=registry)
        traces = [TraceContext(f"{i:032x}", sampled=True) for i in range(4)]

        async def one(trace, rhs):
            with activated(trace):
                return await engine.solve(matrix, rhs, epsilon_l=1e-2,
                                          backend="ideal", kappa=4.0)

        async def drive():
            return await asyncio.gather(*(
                one(trace, rng.normal(size=8)) for trace in traces))

        try:
            records = asyncio.run(drive())
        finally:
            engine.close()
        assert all(record.scaled_residual < 1e-2 for record in records)
        sweep_ids = set()
        for trace in traces:
            names = [s.name for s in trace.spans]
            assert "coalesce" in names and "sweep" in names
            sweep_ids.update(s.span_id for s in trace.spans
                             if s.name == "sweep")
        # ONE fused sweep, adopted by reference into every member trace
        assert len(sweep_ids) == 1
        snapshot = registry.snapshot()
        counts = snapshot["repro_engine_requests_total"]["series"]
        assert sum(counts.values()) == 4
        assert sum(snapshot["repro_engine_batches_total"]["series"].values()) == 1


# ---------------------------------------------------------------------- #
# serving tier: the hard propagation paths
# ---------------------------------------------------------------------- #
class TestServingTracePropagation:
    def test_cross_process_trace_roundtrip(self):
        with ClusterEngine(num_workers=2, respawn=False,
                           trace_sample_rate=1.0,
                           event_log_path=False) as engine:
            matrix, rhs = _spd_system(8, 4.0, 21)
            future = engine.submit(matrix, rhs, backend="ideal", kappa=4.0)
            future.result(timeout=30)
            record = engine.trace(future.trace_id)
            assert record is not None and record["status"] == "ok"
            names = [s["name"] for s in record["spans"]]
            for expected in ("route", "admit", "queue_wait", "coalesce",
                             "sweep"):
                assert expected in names, (expected, names)
            queue_wait = next(s for s in record["spans"]
                              if s["name"] == "queue_wait")
            assert queue_wait["attrs"]["worker"].startswith("worker-")
            assert queue_wait["duration"] >= 0.0

    def test_unsampled_requests_leave_no_trace(self):
        with ClusterEngine(num_workers=1, respawn=False,
                           trace_sample_rate=0.0,
                           event_log_path=False) as engine:
            matrix, rhs = _spd_system(8, 4.0, 22)
            future = engine.submit(matrix, rhs, backend="ideal", kappa=4.0)
            future.result(timeout=30)
            assert not hasattr(future, "trace_id")
            assert engine.observability.tracer.stats()["finished"] == 0

    def test_redispatch_hop_spans_after_worker_death(self):
        spec = ChaosSpec(seed=5, crash_points=((0, 0),),
                         workers=("worker-0",))
        with ClusterEngine(num_workers=2, chaos=spec,
                           trace_sample_rate=1.0, event_log_path=False,
                           supervisor_interval=0.05,
                           breaker_failure_threshold=100) as engine:
            matrices = [_spd_system(8, 4.0, seed) for seed in range(8)]
            futures = [engine.submit(m, rhs, backend="ideal", kappa=4.0)
                       for m, rhs in matrices]
            records = [f.result(timeout=30) for f in futures]
            assert all(r.scaled_residual < 1e-2 for r in records)
            tracer = engine.observability.tracer
            assert tracer.stats()["finished"] == len(futures)
            redispatched = [
                tracer.buffer.get(tid) for tid in tracer.buffer.trace_ids()
                if tracer.buffer.get(tid)["attrs"].get("redispatches", 0) > 0]
            assert redispatched, "the crash should orphan at least one request"
            for record in redispatched:
                names = [s["name"] for s in record["spans"]]
                assert "redispatch" in names
                hop = next(s for s in record["spans"]
                           if s["name"] == "redispatch")
                assert hop["attrs"]["worker_from"] == "worker-0"
            # the crash fault's queue copy is best-effort (os._exit can beat
            # the feeder thread) — durable auditing goes through the shared
            # file, covered by test_respawn_timeline_and_trace_continuity.
            # The death itself is a frontend-observed event and always lands.
            assert engine.observability.events.events(kind="worker_death")

    def test_degraded_fallback_trace_is_complete(self):
        with ClusterEngine(num_workers=1, respawn=False, max_redispatch=0,
                           trace_sample_rate=1.0,
                           event_log_path=False) as engine:
            engine._workers["worker-0"]["process"].terminate()
            _wait_until(lambda: len(engine.workers_alive) == 0,
                        message="death never detected")
            matrix, rhs = _spd_system(8, 4.0, 23)
            future = engine.submit(matrix, rhs)
            record = future.result(timeout=30)
            assert record.degraded
            trace = engine.trace(future.trace_id)
            assert trace is not None and trace["status"] == "degraded"
            names = [s["name"] for s in trace["spans"]]
            assert "degraded" in names
            assert engine.observability.events.events(
                kind="degraded_fallback")

    def test_respawn_timeline_and_trace_continuity(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        spec = ChaosSpec(seed=9, crash_points=((0, 1),),
                         workers=("worker-0",))
        with ClusterEngine(num_workers=2, chaos=spec,
                           trace_sample_rate=1.0, event_log_path=path,
                           supervisor_interval=0.05,
                           breaker_failure_threshold=100) as engine:
            matrices = [_spd_system(8, 4.0, seed) for seed in range(6)]
            futures = [engine.submit(m, rhs, backend="ideal", kappa=4.0)
                       for m, rhs in matrices]
            for future in futures:
                future.result(timeout=30)
            _wait_until(lambda: len(engine.workers_alive) == 2,
                        message="respawn never re-ringed the worker")
            # the respawned incarnation serves traced requests again
            matrix, rhs = _spd_system(8, 4.0, 77)
            future = engine.submit(matrix, rhs, backend="ideal", kappa=4.0)
            future.result(timeout=30)
            assert engine.trace(future.trace_id) is not None
        records = EventLog.read_file(path)
        kinds = [r["kind"] for r in records]
        assert "chaos_fault" in kinds
        death_index = kinds.index("worker_death")
        respawn_index = kinds.index("worker_respawn")
        assert kinds.index("chaos_fault") < death_index < respawn_index
        fault = next(r for r in records if r["kind"] == "chaos_fault")
        assert fault["worker"] == "worker-0" and fault["incarnation"] == 0
        assert fault.get("trace_id"), "fault must carry the observing trace"
        respawn = next(r for r in records if r["kind"] == "worker_respawn")
        assert respawn["incarnation"] == 1

    def test_breaker_transitions_reach_event_log(self):
        events = []
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=0.01,
            listener=lambda transition, **fields: events.append(transition))
        breaker.record_failure()
        breaker.record_failure()  # trips
        assert breaker.state == "open"
        time.sleep(0.02)
        assert breaker.allow()    # claims the half-open probe
        breaker.record_failure()  # probe fails: re-open
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_success()  # probe succeeds: close
        assert events == ["open", "half_open", "reopen", "half_open",
                          "close"]


# ---------------------------------------------------------------------- #
# cluster metrics aggregation + HTTP endpoints
# ---------------------------------------------------------------------- #
class TestClusterObservabilityAPI:
    def test_worker_metrics_merge_into_cluster_snapshot(self):
        with ClusterEngine(num_workers=2, respawn=False,
                           trace_sample_rate=0.0,
                           event_log_path=False) as engine:
            matrix, rhs = _spd_system(8, 4.0, 31)
            engine.solve(matrix, rhs, backend="ideal", kappa=4.0)
            merged = engine.metrics_snapshot()
            requests = merged["repro_engine_requests_total"]["series"]
            assert sum(requests.values()) == 1
            # worker series carry their worker label, frontend its role
            assert any("worker-" in str(key) for key in requests)
            cluster = merged["repro_cluster_requests_total"]["series"]
            assert sum(cluster.values()) == 1
            stats = engine.stats()
            assert stats["metrics"]["repro_engine_requests_total"]
            assert stats["obs"]["trace"]["sample_rate"] == 0.0

    def test_legacy_stats_keys_survive_migration(self):
        with ClusterEngine(num_workers=1, respawn=False,
                           event_log_path=False) as engine:
            matrix, rhs = _spd_system(8, 4.0, 32)
            engine.solve(matrix, rhs, backend="ideal", kappa=4.0)
            stats = engine.stats()
            assert stats["submitted"] == 1 and stats["completed"] == 1
            assert stats["latency"]["count"] == 1
            assert stats["admission"]["admitted"] == 1
            worker = stats["per_worker"]["worker-0"]
            for key in ("requests", "batches", "cache", "latency",
                        "served", "incarnation"):
                assert key in worker, key

    def test_http_metrics_trace_and_healthz(self):
        with ClusterEngine(num_workers=1, respawn=False,
                           trace_sample_rate=1.0,
                           event_log_path=False) as engine:
            with ServingHTTPServer(engine) as server:
                host, port = server.address
                base = f"http://{host}:{port}"
                matrix, rhs = _spd_system(8, 4.0, 33)
                request = urllib.request.Request(
                    f"{base}/solve",
                    data=json.dumps({"matrix": matrix.tolist(),
                                     "rhs": rhs.tolist(),
                                     "backend": "ideal",
                                     "kappa": 4.0}).encode(),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request) as response:
                    body = json.load(response)
                assert body["trace_id"]
                with urllib.request.urlopen(
                        f"{base}/trace/{body['trace_id']}") as response:
                    trace = json.load(response)
                assert trace["trace_id"] == body["trace_id"]
                assert any(s["name"] == "sweep" for s in trace["spans"])
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(f"{base}/trace/{'0' * 32}")
                assert excinfo.value.code == 404
                with urllib.request.urlopen(f"{base}/metrics") as response:
                    assert (response.headers["Content-Type"]
                            == "text/plain; version=0.0.4")
                    text = response.read().decode()
                assert "repro_engine_requests_total" in text
                assert "repro_cluster_latency_seconds_count" in text
                with urllib.request.urlopen(f"{base}/healthz") as response:
                    health = json.load(response)
                assert health["tracing"] is True
                assert health["uptime_s"] > 0.0
                assert "worker-0" in health["metrics_snapshot_age_s"]
                assert health["event_log"]["write_errors"] == 0

    def test_store_quarantine_event_is_stamped(self, tmp_path):
        spec = ChaosSpec(seed=4, corrupt_store_rate=1.0,
                         workers=("worker-0",))
        with ClusterEngine(num_workers=1, chaos=spec, respawn=False,
                           local_store_dir=str(tmp_path / "local"),
                           trace_sample_rate=1.0,
                           event_log_path=False) as engine:
            matrix, rhs = _spd_system(8, 4.0, 35)
            # first solve writes a corrupted payload, second reads it back
            engine.solve(matrix, rhs, backend="ideal", kappa=4.0)
            _wait_until(
                lambda: engine.observability.events.events(
                    kind="chaos_fault"),
                message="corruption fault never reached the frontend ring")
            faults = engine.observability.events.events(kind="chaos_fault")
            assert faults[0]["fault"] == "corrupt_store"
