"""Tests for Chebyshev utilities and the rectangle window."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qsp import (
    build_inverse_polynomial,
    chebyshev_coefficients_of_function,
    evaluate_chebyshev,
    parity_of_series,
    rectangle_polynomial,
    scale_series_to_max,
    truncate_series,
    window_inverse_polynomial,
)
from repro.qsp.chebyshev import chebyshev_nodes, enforce_parity, max_abs_on_interval


class TestEvaluation:
    def test_t0_t1_t2(self):
        x = np.linspace(-1, 1, 11)
        np.testing.assert_allclose(evaluate_chebyshev([1.0], x), np.ones_like(x))
        np.testing.assert_allclose(evaluate_chebyshev([0.0, 1.0], x), x)
        np.testing.assert_allclose(evaluate_chebyshev([0.0, 0.0, 1.0], x), 2 * x**2 - 1)

    def test_nodes_in_open_interval(self):
        nodes = chebyshev_nodes(16)
        assert np.all(np.abs(nodes) < 1.0)
        assert nodes.shape == (16,)

    def test_nodes_count_validation(self):
        with pytest.raises(ValueError):
            chebyshev_nodes(0)


class TestCoefficientExtraction:
    def test_exact_for_polynomials(self):
        coeffs = np.array([0.2, -0.3, 0.0, 0.5])
        recovered = chebyshev_coefficients_of_function(
            lambda x: evaluate_chebyshev(coeffs, x), degree=3)
        np.testing.assert_allclose(recovered, coeffs, atol=1e-12)

    def test_smooth_function_converges(self):
        coeffs = chebyshev_coefficients_of_function(np.exp, degree=20)
        x = np.linspace(-1, 1, 101)
        np.testing.assert_allclose(evaluate_chebyshev(coeffs, x), np.exp(x), atol=1e-12)

    def test_parity_filter(self):
        coeffs = chebyshev_coefficients_of_function(np.sin, degree=15, parity=1)
        assert np.all(coeffs[0::2] == 0.0)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            chebyshev_coefficients_of_function(np.exp, degree=-1)


class TestSeriesManipulation:
    def test_truncation_bound(self):
        coeffs = np.array([1.0, 0.5, 1e-8, 1e-9, 1e-10])
        truncated = truncate_series(coeffs, 1e-6)
        assert truncated.shape[0] == 2
        x = np.linspace(-1, 1, 50)
        assert np.max(np.abs(evaluate_chebyshev(coeffs, x)
                             - evaluate_chebyshev(truncated, x))) <= 1e-6

    def test_truncation_of_negligible_series(self):
        assert truncate_series([1e-12, 1e-13], 1e-6).shape[0] == 1

    def test_parity_detection(self):
        assert parity_of_series([0.0, 1.0, 0.0, 0.3]) == 1
        assert parity_of_series([0.5, 0.0, 0.2]) == 0
        assert parity_of_series([0.5, 0.5]) is None

    def test_enforce_parity(self):
        out = enforce_parity([0.5, 0.3, 0.2, 0.1], 0)
        np.testing.assert_array_equal(out, [0.5, 0.0, 0.2, 0.0])
        with pytest.raises(ValueError):
            enforce_parity([1.0], 2)

    def test_scale_to_max(self):
        coeffs = np.array([0.0, 3.0])
        scaled, factor = scale_series_to_max(coeffs, 0.9)
        assert max_abs_on_interval(scaled) == pytest.approx(0.9, rel=1e-6)
        assert factor == pytest.approx(0.3)

    @given(st.lists(st.floats(min_value=-2, max_value=2), min_size=1, max_size=12),
           st.floats(min_value=0.1, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_property_scaling_reaches_requested_max(self, coeffs, target):
        coeffs = np.asarray(coeffs)
        if np.max(np.abs(coeffs)) < 1e-6:
            coeffs = coeffs + 1.0
        scaled, _ = scale_series_to_max(coeffs, target)
        assert max_abs_on_interval(scaled) == pytest.approx(target, rel=1e-3)


class TestRectangleWindow:
    def test_shape(self):
        kappa = 5.0
        coeffs = rectangle_polynomial(kappa)
        assert parity_of_series(coeffs, tolerance=1e-9) == 0
        x_pass = np.linspace(1.2 / kappa, 1.0, 50)
        np.testing.assert_allclose(evaluate_chebyshev(coeffs, x_pass), 1.0, atol=0.05)
        assert abs(evaluate_chebyshev(coeffs, 0.0)) < 0.05

    def test_kappa_validation(self):
        with pytest.raises(ValueError):
            rectangle_polynomial(0.5)

    def test_windowed_inverse_keeps_accuracy_and_damps_gap(self):
        kappa = 8.0
        inverse = build_inverse_polynomial(kappa, 1e-3)
        windowed = window_inverse_polynomial(inverse)
        # still a good inverse on the spectral domain
        assert windowed.relative_inverse_error() < 5e-2
        # damped inside the gap compared to the raw polynomial
        gap_point = 0.2 / kappa
        assert abs(windowed.evaluate(gap_point)) < abs(inverse.evaluate(gap_point))
        # parity stays odd
        assert parity_of_series(windowed.coefficients, tolerance=1e-9) == 1
