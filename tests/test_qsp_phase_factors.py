"""Tests for the symmetric-QSP phase-factor solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PhaseFactorError
from repro.qsp import (
    build_inverse_polynomial,
    qsp_polynomial_values,
    solve_qsp_phases,
)
from repro.qsp.chebyshev import evaluate_chebyshev


def _check_phases_represent(coeffs, phases, atol=1e-9):
    x = np.linspace(-1.0, 1.0, 201)
    target = evaluate_chebyshev(coeffs, x)
    achieved = np.real(qsp_polynomial_values(phases, x))
    np.testing.assert_allclose(achieved, target, atol=atol)


class TestForwardMap:
    def test_trivial_phases_give_chebyshev(self):
        # θ = (0, ..., 0) gives ⟨0|W^d|0⟩ = T_d(x)
        for degree in (1, 2, 5):
            phases = np.zeros(degree + 1)
            x = np.linspace(-1, 1, 51)
            values = qsp_polynomial_values(phases, x)
            np.testing.assert_allclose(values.real, np.cos(degree * np.arccos(x)), atol=1e-12)

    def test_magnitude_bounded_by_one(self, rng):
        phases = rng.uniform(-np.pi, np.pi, 8)
        x = np.linspace(-1, 1, 101)
        assert np.max(np.abs(qsp_polynomial_values(phases, x))) <= 1.0 + 1e-12

    def test_scalar_input(self):
        value = qsp_polynomial_values(np.zeros(3), 0.5)
        assert np.isscalar(value) or value.shape == ()


class TestSolver:
    @pytest.mark.parametrize("coeffs", [
        [0.0, 0.5],                                   # 0.5 T_1
        [0.0, 0.3, 0.0, 0.4],                         # odd, degree 3
        [0.2, 0.0, 0.5],                              # even, degree 2
        [0.0, 0.1, 0.0, 0.2, 0.0, 0.3, 0.0, 0.25],    # odd, degree 7
    ])
    def test_small_targets(self, coeffs):
        result = solve_qsp_phases(np.array(coeffs))
        assert result.converged
        _check_phases_represent(np.array(coeffs), result.phases)

    def test_phases_are_symmetric(self):
        result = solve_qsp_phases(np.array([0.0, 0.3, 0.0, 0.4]))
        np.testing.assert_allclose(result.phases, result.phases[::-1], atol=1e-12)

    def test_inverse_polynomial_target(self):
        poly = build_inverse_polynomial(4.0, 1e-2, max_norm=0.8)
        result = solve_qsp_phases(poly.coefficients, tolerance=1e-12)
        assert result.converged
        _check_phases_represent(poly.coefficients, result.phases, atol=1e-8)

    def test_mixed_parity_rejected(self):
        with pytest.raises(PhaseFactorError):
            solve_qsp_phases(np.array([0.3, 0.4]))

    def test_unbounded_target_rejected(self):
        with pytest.raises(PhaseFactorError):
            solve_qsp_phases(np.array([0.0, 1.2]))

    def test_zero_target_rejected(self):
        with pytest.raises(PhaseFactorError):
            solve_qsp_phases(np.zeros(4))

    def test_failure_reporting_without_raise(self):
        # an impossible budget: max_iterations=0 cannot converge
        result = solve_qsp_phases(np.array([0.0, 0.4, 0.0, 0.3]), max_iterations=1,
                                  raise_on_failure=False)
        assert not result.converged
        assert result.residual > 0

    def test_failure_raises_by_default(self):
        with pytest.raises(PhaseFactorError):
            solve_qsp_phases(np.array([0.0, 0.4, 0.0, 0.3]), max_iterations=1)

    @given(st.lists(st.floats(min_value=-0.12, max_value=0.12), min_size=2, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_property_random_odd_targets(self, raw):
        coeffs = np.zeros(2 * len(raw))
        coeffs[1::2] = raw
        if np.max(np.abs(coeffs)) < 1e-3:
            coeffs[1] = 0.1
        result = solve_qsp_phases(coeffs, raise_on_failure=False)
        if result.converged:
            _check_phases_represent(coeffs, result.phases, atol=1e-7)
        else:  # pragma: no cover - extremely rare, but do not hide it
            pytest.fail(f"solver failed on {coeffs!r} with residual {result.residual}")
