"""Baseline B1 — QSVT+IR vs HHL, HHL+IR, VQLS and classical direct solves.

The introduction of the paper situates the QSVT approach among HHL and VQLS;
this benchmark runs all of them (plus fp32/fp64 LU) on the same ``N = 8``
system and reports accuracy, iteration counts and solver-specific metadata.
Expected shape: a single HHL or QSVT solve is limited to its inner accuracy,
both become arbitrarily accurate once wrapped in iterative refinement, VQLS
reaches moderate accuracy only, and the classical fp64 solve is the reference.
"""

import numpy as np
import pytest

from repro.applications import random_workload
from repro.baselines import (
    ClassicalDirectSolver,
    HHLSolver,
    VQLSSolver,
    hhl_with_refinement,
)
from repro.core import MixedPrecisionRefinement, QSVTLinearSolver
from repro.reporting import format_table

from .common import emit

_TARGET = 1e-10


def _run():
    workload = random_workload(8, 6.0, rng=99)
    matrix, rhs, x_true = workload.matrix, workload.rhs, workload.solution
    rows = []

    def relative_error(x):
        return float(np.linalg.norm(x - x_true) / np.linalg.norm(x_true))

    qsvt = QSVTLinearSolver(matrix, epsilon_l=1e-2, backend="circuit")
    record = qsvt.solve(rhs)
    rows.append({"solver": "QSVT (single solve, eps_l=1e-2)", "iterations": 0,
                 "scaled residual": record.scaled_residual,
                 "relative error": relative_error(record.x)})

    refined = MixedPrecisionRefinement(qsvt, target_accuracy=_TARGET).solve(rhs)
    rows.append({"solver": "QSVT + IR (Algorithm 2)", "iterations": refined.iterations,
                 "scaled residual": refined.scaled_residuals[-1],
                 "relative error": relative_error(refined.x)})

    hhl = HHLSolver(matrix, clock_qubits=9)
    record = hhl.solve(rhs)
    rows.append({"solver": "HHL (9 clock qubits)", "iterations": 0,
                 "scaled residual": record.scaled_residual,
                 "relative error": relative_error(record.x)})

    hhl_ir = hhl_with_refinement(matrix, rhs, clock_qubits=9, target_accuracy=_TARGET)
    rows.append({"solver": "HHL + IR (Saito et al. style)", "iterations": hhl_ir.iterations,
                 "scaled residual": hhl_ir.scaled_residuals[-1],
                 "relative error": relative_error(hhl_ir.x)})

    vqls = VQLSSolver(matrix, layers=5, max_evaluations=6000, rng=1)
    record = vqls.solve(rhs)
    rows.append({"solver": "VQLS (5 layers, COBYLA)", "iterations": 0,
                 "scaled residual": record.scaled_residual,
                 "relative error": relative_error(record.x)})

    for precision in ("fp32", "fp64"):
        record = ClassicalDirectSolver(matrix, precision=precision).solve(rhs)
        rows.append({"solver": f"classical LU @ {precision}", "iterations": 0,
                     "scaled residual": record.scaled_residual,
                     "relative error": relative_error(record.x)})
    return rows


def test_baseline_comparison(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title=(
        f"Baseline comparison on one N = 8, kappa = 6 system (target {_TARGET:g})"))
    emit("baselines_comparison", text)
    by_name = {row["solver"]: row for row in rows}
    assert by_name["QSVT + IR (Algorithm 2)"]["scaled residual"] <= _TARGET
    assert by_name["HHL + IR (Saito et al. style)"]["scaled residual"] <= _TARGET
    # refinement improves over the corresponding single solves
    assert (by_name["QSVT + IR (Algorithm 2)"]["relative error"]
            < by_name["QSVT (single solve, eps_l=1e-2)"]["relative error"])
    assert (by_name["HHL + IR (Saito et al. style)"]["relative error"]
            < by_name["HHL (9 clock qubits)"]["relative error"])
    # the fp64 direct solve remains the accuracy reference
    assert by_name["classical LU @ fp64"]["scaled residual"] < 1e-12
