"""Chaos drill — a seeded kill schedule under Zipf traffic, recovery gated.

Replays a deterministic fault schedule against the self-healing serving tier
(:mod:`repro.serving`) and gates on the recovery properties the resilience
layer promises, in two phases:

* **Healthy phase** — the same closed-loop Zipf workload as
  ``bench_serving_cluster.py``, but with the full resilience stack armed
  (supervisor, circuit breakers, redispatch).  Its throughput quantifies the
  cost of supervision on the fault-free path; in full mode it is compared
  against the recorded ``BENCH_serving_cluster.json`` baseline and must stay
  within 5%.
* **Chaos phase** — closed-loop clients solving through a client-side
  :class:`~repro.serving.resilience.RetryPolicy` while a scripted killer
  SIGTERMs the routed owner of the hottest system at fixed progress points
  (a seeded 2-kill schedule).  After each kill the driver measures the time
  until the supervisor has respawned the victim **and** the consistent-hash
  ring's ``arc_shares`` equal the pre-kill placement exactly — recovery to
  *full* capacity, not merely "something answers".

Acceptance gates (the tentpole's contract):

* every request settles — nothing in flight after the clients drain, no
  silent drops;
* >= 99% of requests succeed after retries;
* each kill recovers (ring re-converged, victim respawned) within a bound;
* exactly the scripted deaths occur — a kill must never cascade into
  collateral deaths of healthy siblings;
* non-degraded answers match single-process ground truth to 1e-10.

Results go to ``benchmarks/results/chaos.txt`` (human-readable) and
``BENCH_chaos.json`` at the repository root (machine-readable).  Run
directly for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke

which exits non-zero when any acceptance criterion regresses.
"""

import argparse
import json
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

from repro.obs import EventLog
from repro.reporting import format_table
from repro.serving import ClusterEngine, RetryPolicy

try:
    from .common import emit
    from .bench_serving_cluster import (
        _EPSILON_L,
        _ZIPF_S,
        _build_pool,
        _measure_zipf,
        _references,
        _zipf_weights,
    )
except ImportError:     # script mode: python benchmarks/bench_chaos.py
    from common import emit
    from bench_serving_cluster import (
        _EPSILON_L,
        _ZIPF_S,
        _build_pool,
        _measure_zipf,
        _references,
        _zipf_weights,
    )

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_JSON_PATH = _ROOT / "BENCH_chaos.json"
_BASELINE_PATH = _ROOT / "BENCH_serving_cluster.json"

#: non-degraded cluster answers must match single-process answers to this.
_PARITY_TOL = 1e-10
#: fraction of chaos-phase requests that must succeed after retries.
_MIN_SUCCESS_RATE = 0.99
#: seconds allowed from SIGTERM to full re-convergence (respawn + ring).
_MAX_RECOVERY_S = 10.0
#: healthy-path throughput may regress at most this much vs the recorded
#: serving-cluster baseline (full mode only; cross-machine JSONs are skipped).
_MAX_HEALTHY_REGRESSION = 0.05
#: progress fractions (of the chaos request count) at which the killer fires.
_KILL_SCHEDULE = (0.25, 0.55)


# ---------------------------------------------------------------------- #
# scripted killer
# ---------------------------------------------------------------------- #
class _Killer(threading.Thread):
    """Fires the seeded kill schedule and times each recovery.

    Each scheduled kill waits until client progress crosses its fraction,
    SIGTERMs the *current routed owner of the hottest system* (deterministic
    given the seed: routing is a pure function of fingerprint and the live
    ring), then polls until the victim has respawned and ``arc_shares``
    equal the pre-kill baseline exactly.
    """

    def __init__(self, cluster: ClusterEngine, hottest_matrix,
                 total_requests: int, progress) -> None:
        super().__init__(name="chaos-killer", daemon=True)
        self._cluster = cluster
        self._hottest = hottest_matrix
        self._total = total_requests
        self._progress = progress       # zero-arg callable -> settled count
        self.kills: list[dict] = []
        self.baseline_shares = dict(cluster.stats(
            include_workers=False)["ring"]["arc_shares"])

    def run(self) -> None:
        for fraction in _KILL_SCHEDULE:
            threshold = int(fraction * self._total)
            while self._progress() < threshold:
                time.sleep(0.005)
            victim = self._cluster.route(self._hottest)
            prior_restarts = self._cluster.stats(
                include_workers=False)["restarts"].get(victim, 0)
            killed_at = time.monotonic()
            self._cluster._workers[victim]["process"].terminate()
            recovery_s, reconverged = self._await_recovery(
                victim, prior_restarts, killed_at)
            self.kills.append({
                "at_fraction": fraction,
                "at_request": threshold,
                "victim": victim,
                "recovery_s": recovery_s,
                "reconverged": reconverged,
            })

    def _await_recovery(self, victim: str, prior_restarts: int,
                        killed_at: float) -> tuple[float, bool]:
        deadline = killed_at + _MAX_RECOVERY_S + 5.0
        while time.monotonic() < deadline:
            stats = self._cluster.stats(include_workers=False)
            if (stats["restarts"].get(victim, 0) > prior_restarts
                    and stats["ring"]["arc_shares"] == self.baseline_shares):
                return time.monotonic() - killed_at, True
            time.sleep(0.01)
        return time.monotonic() - killed_at, False


# ---------------------------------------------------------------------- #
# chaos phase: retrying closed-loop clients + the killer
# ---------------------------------------------------------------------- #
def _measure_chaos(cluster: ClusterEngine, pool: list[dict],
                   references: list[np.ndarray], *, num_requests: int,
                   clients: int, rng_seed: int = 2) -> dict:
    weights = _zipf_weights(len(pool))
    draws = np.random.default_rng(rng_seed).choice(len(pool),
                                                   size=num_requests,
                                                   p=weights)
    partitions = np.array_split(draws, clients)
    settled = {"n": 0}
    count_lock = threading.Lock()
    successes = [0] * clients
    degraded = [0] * clients
    deviations = [0.0] * clients
    retries = [0] * clients
    failures: list[str] = []

    killer = _Killer(cluster, pool[0]["matrix"], num_requests,
                     lambda: settled["n"])

    def client(index: int, indices) -> None:
        # one policy per client: retries are the client's own backoff state.
        policy = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.5,
                             rng=1000 + index)
        for pool_index in indices:
            entry = pool[pool_index]
            try:
                record = policy.execute(
                    cluster.solve, entry["matrix"], entry["rhs"],
                    epsilon_l=_EPSILON_L, backend="ideal",
                    kappa=entry["kappa"])
            except BaseException as exc:  # noqa: BLE001 - typed, counted
                failures.append(type(exc).__name__)
            else:
                successes[index] += 1
                if record.degraded:
                    degraded[index] += 1
                else:
                    deviations[index] = max(deviations[index], float(
                        np.max(np.abs(record.x - references[pool_index]))))
            finally:
                with count_lock:
                    settled["n"] += 1
        retries[index] = policy.stats()["retries"]

    threads = [threading.Thread(target=client, args=(i, partition))
               for i, partition in enumerate(partitions)]
    start = time.perf_counter()
    killer.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_time = time.perf_counter() - start
    killer.join(timeout=_MAX_RECOVERY_S + 10.0)

    stats = cluster.stats(include_workers=False)
    total_success = sum(successes)

    # span-tree completeness (the drill runs at sample rate 1.0): every
    # admitted request still in the ring — ok, degraded, redispatched or
    # failed — must carry the structural front-end spans.  Shed requests
    # never pass admission, so "route" alone is their complete tree.
    tracer = cluster.observability.tracer
    incomplete_traces = 0
    for trace_id in tracer.buffer.trace_ids():
        record = tracer.buffer.get(trace_id)
        if record["status"] == "shed":
            continue
        names = set(span["name"] for span in record["spans"])
        if not {"route", "admit"} <= names:
            incomplete_traces += 1

    return {
        "num_requests": num_requests,
        "clients": clients,
        "zipf_s": _ZIPF_S,
        "rng_seed": rng_seed,
        "kill_schedule": list(_KILL_SCHEDULE),
        "kills": killer.kills,
        "wall_time_s": wall_time,
        "throughput_rps": num_requests / wall_time,
        "successes": total_success,
        "failures": len(failures),
        "failure_types": sorted(set(failures)),
        "success_rate": total_success / num_requests,
        "client_retries": sum(retries),
        "degraded": sum(degraded),
        "max_deviation": max(deviations),
        "inflight_after_drain": stats["inflight"],
        "worker_deaths": stats["worker_deaths"],
        "restarts": stats["restarts"],
        "redispatched": stats["redispatched"],
        "workers_alive_after": stats["workers_alive"],
        "supervisor": stats["supervisor"],
        "trace": stats["obs"]["trace"],
        "incomplete_traces": incomplete_traces,
    }


# ---------------------------------------------------------------------- #
def run_benchmark(*, smoke: bool = False) -> dict:
    if smoke:
        num_workers, healthy_requests, chaos_requests, clients = 2, 40, 60, 4
    else:
        num_workers, healthy_requests, chaos_requests, clients = 2, 400, 300, 8

    pool = _build_pool(smoke)
    references = _references(pool)
    resilience_config = dict(
        num_workers=num_workers, queue_limit=256,
        respawn=True, supervisor_interval=0.05)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        # tiered store directories make every respawn a *warm* restore —
        # the new incarnation reloads compiled solvers instead of
        # re-synthesising, which is what keeps recovery inside the bound.
        stores = dict(local_store_dir=f"{tmp}/local",
                      shared_store_dir=f"{tmp}/shared")

        with ClusterEngine(**resilience_config, **stores) as cluster:
            healthy = _measure_zipf(cluster, pool, references,
                                    num_requests=healthy_requests,
                                    clients=clients)

        # the drill itself runs fully observed: every request traced
        # (sample rate 1.0) and every lifecycle event — death, redispatch,
        # respawn — appended to a shared JSONL the drill audits afterwards.
        event_path = f"{tmp}/events.jsonl"
        with ClusterEngine(**resilience_config, **stores,
                           trace_sample_rate=1.0,
                           event_log_path=event_path) as cluster:
            # warm both the per-worker caches and the store hierarchy, so
            # kill latency measures recovery, not first-touch synthesis.
            for entry, reference in zip(pool, references):
                record = cluster.solve(entry["matrix"], entry["rhs"],
                                       epsilon_l=_EPSILON_L, backend="ideal",
                                       kappa=entry["kappa"])
                deviation = float(np.max(np.abs(record.x - reference)))
                if deviation > _PARITY_TOL:
                    raise RuntimeError(f"warmup deviates by {deviation:.2e}")
            chaos = _measure_chaos(cluster, pool, references,
                                   num_requests=chaos_requests,
                                   clients=clients)

        # post-hoc timeline: the event log is the drill's audit trail, read
        # back from disk after the engine (and its workers) closed.
        records = EventLog.read_file(event_path)
        kind_counts: dict[str, int] = {}
        for record in records:
            kind_counts[record["kind"]] = kind_counts.get(record["kind"], 0) + 1
        chaos["timeline"] = {
            "events": len(records),
            "kinds": kind_counts,
            "deaths": [{"worker": r.get("worker"),
                        "incarnation": r.get("incarnation")}
                       for r in records if r["kind"] == "worker_death"],
            "respawns": [{"worker": r.get("worker"),
                          "incarnation": r.get("incarnation")}
                         for r in records if r["kind"] == "worker_respawn"],
        }

    baseline_rps = None
    regression = None
    if not smoke and _BASELINE_PATH.exists():
        baseline = json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))
        baseline_rps = float(baseline["zipf"]["throughput_rps"])
        regression = 1.0 - healthy["throughput_rps"] / baseline_rps

    summary = {
        "smoke": smoke,
        "epsilon_l": _EPSILON_L,
        "num_workers": num_workers,
        "healthy": healthy,
        "chaos": chaos,
        "baseline_rps": baseline_rps,
        "healthy_regression": regression,
    }

    kill_rows = [{"at": f"{k['at_fraction']:.0%}", "victim": k["victim"],
                  "recovery [s]": k["recovery_s"],
                  "reconverged": k["reconverged"]}
                 for k in chaos["kills"]]
    text = "\n\n".join([
        format_table(
            [{"workers": healthy["workers"],
              "requests": healthy["num_requests"],
              "req/s": healthy["throughput_rps"],
              "p99 [s]": healthy["p99_s"],
              "baseline req/s": baseline_rps if baseline_rps else "n/a",
              "regression": (f"{regression:+.1%}" if regression is not None
                             else "n/a")}],
            title="Healthy path (full resilience stack armed, no faults)"),
        format_table(kill_rows or [{"at": "-", "victim": "-",
                                    "recovery [s]": 0.0,
                                    "reconverged": False}],
                     title=f"Seeded kill schedule (Zipf s={_ZIPF_S}, "
                           f"seed={chaos['rng_seed']})"),
        format_table(
            [{"requests": chaos["num_requests"],
              "success": f"{chaos['success_rate']:.2%}",
              "retries": chaos["client_retries"],
              "redispatched": chaos["redispatched"],
              "degraded": chaos["degraded"],
              "deaths": chaos["worker_deaths"],
              "max dev": chaos["max_deviation"]}],
            title="Chaos traffic (closed loop through RetryPolicy clients)"),
        format_table(
            [{"kind": kind, "count": count}
             for kind, count in sorted(chaos["timeline"]["kinds"].items())],
            title="Event-log timeline (shared JSONL, read back post-drill)")
        + (f"\n\ntraces: {chaos['trace']['finished']} finished at sample "
           f"rate {chaos['trace']['sample_rate']}, "
           f"{chaos['incomplete_traces']} incomplete"),
    ])
    if smoke:
        # threshold gate only; never overwrite the full-run artifacts
        emit("chaos_smoke", text)
    else:
        _JSON_PATH.write_text(json.dumps(summary, indent=2, default=float)
                              + "\n", encoding="utf-8")
        emit("chaos", text + f"\n\nwritten: {_JSON_PATH}")
    return summary


def _check(summary: dict) -> list[str]:
    """Acceptance criteria of the resilience tentpole; empty = pass."""
    failures = []
    chaos = summary["chaos"]
    if chaos["inflight_after_drain"] != 0:
        failures.append(f"{chaos['inflight_after_drain']} request(s) still "
                        "in flight after the clients drained (silent drop)")
    if chaos["successes"] + chaos["failures"] != chaos["num_requests"]:
        failures.append("request accounting does not balance: "
                        f"{chaos['successes']} + {chaos['failures']} != "
                        f"{chaos['num_requests']}")
    if chaos["success_rate"] < _MIN_SUCCESS_RATE:
        failures.append(f"success rate {chaos['success_rate']:.2%} after "
                        f"retries is below {_MIN_SUCCESS_RATE:.0%} "
                        f"(failure types: {chaos['failure_types']})")
    if len(chaos["kills"]) != len(_KILL_SCHEDULE):
        failures.append(f"killer fired {len(chaos['kills'])} of "
                        f"{len(_KILL_SCHEDULE)} scheduled kills")
    for kill in chaos["kills"]:
        if not kill["reconverged"]:
            failures.append(f"ring never re-converged after killing "
                            f"{kill['victim']} at {kill['at_fraction']:.0%}")
        elif kill["recovery_s"] > _MAX_RECOVERY_S:
            failures.append(f"recovery after killing {kill['victim']} took "
                            f"{kill['recovery_s']:.2f}s "
                            f"(bound {_MAX_RECOVERY_S}s)")
    if chaos["worker_deaths"] != len(_KILL_SCHEDULE):
        failures.append(f"{chaos['worker_deaths']} worker deaths for "
                        f"{len(_KILL_SCHEDULE)} scripted kills — a kill "
                        "cascaded into collateral deaths")
    if chaos["workers_alive_after"] != summary["num_workers"]:
        failures.append(f"only {chaos['workers_alive_after']} of "
                        f"{summary['num_workers']} workers on the ring after "
                        "the drill")
    if chaos["max_deviation"] > _PARITY_TOL:
        failures.append(f"non-degraded chaos answers deviate by "
                        f"{chaos['max_deviation']:.2e} "
                        f"(tolerance {_PARITY_TOL:.0e})")
    if summary["healthy"]["max_deviation"] > _PARITY_TOL:
        failures.append(f"healthy-path answers deviate by "
                        f"{summary['healthy']['max_deviation']:.2e}")
    timeline = chaos["timeline"]
    kinds = timeline["kinds"]
    if kinds.get("worker_death", 0) != len(_KILL_SCHEDULE):
        failures.append(f"event log recorded {kinds.get('worker_death', 0)} "
                        f"worker_death events for {len(_KILL_SCHEDULE)} "
                        "scripted kills")
    if kinds.get("worker_respawn", 0) < len(_KILL_SCHEDULE):
        failures.append(f"event log recorded only "
                        f"{kinds.get('worker_respawn', 0)} worker_respawn "
                        f"events for {len(_KILL_SCHEDULE)} kills")
    for kill in chaos["kills"]:
        if not any(r["worker"] == kill["victim"]
                   for r in timeline["respawns"]):
            failures.append(f"no worker_respawn event for killed victim "
                            f"{kill['victim']} in the timeline")
    if chaos["trace"]["finished"] < chaos["num_requests"]:
        failures.append(f"only {chaos['trace']['finished']} traces finished "
                        f"for {chaos['num_requests']} requests — the drill "
                        "runs at sample rate 1.0 and must trace everything")
    if chaos["incomplete_traces"] > 0:
        failures.append(f"{chaos['incomplete_traces']} admitted request(s) "
                        "settled without the structural route/admit spans")
    regression = summary["healthy_regression"]
    if regression is not None and regression > _MAX_HEALTHY_REGRESSION:
        failures.append(f"healthy-path throughput regressed "
                        f"{regression:.1%} vs BENCH_serving_cluster.json "
                        f"(bound {_MAX_HEALTHY_REGRESSION:.0%})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration (the CI regression gate)")
    args = parser.parse_args(argv)
    summary = run_benchmark(smoke=args.smoke)
    chaos = summary["chaos"]
    recoveries = ", ".join(f"{k['victim']}@{k['at_fraction']:.0%}:"
                           f"{k['recovery_s']:.2f}s"
                           for k in chaos["kills"]) or "none"
    print(f"healthy: {summary['healthy']['throughput_rps']:.1f} req/s; "
          f"chaos: {chaos['success_rate']:.2%} success over "
          f"{chaos['num_requests']} requests with {chaos['worker_deaths']} "
          f"scripted deaths ({chaos['client_retries']} retries, "
          f"{chaos['redispatched']} redispatched, "
          f"{chaos['degraded']} degraded), recoveries: {recoveries}")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
