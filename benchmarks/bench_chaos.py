"""Chaos drill — a seeded kill schedule under Zipf traffic, recovery gated.

Replays a deterministic fault schedule against the self-healing serving tier
(:mod:`repro.serving`) and gates on the recovery properties the resilience
layer promises, in two phases:

* **Healthy phase** — the same closed-loop Zipf workload as
  ``bench_serving_cluster.py``, but with the full resilience stack armed
  (supervisor, circuit breakers, redispatch).  Its throughput quantifies the
  cost of supervision on the fault-free path; in full mode it is compared
  against the recorded ``BENCH_serving_cluster.json`` baseline and must stay
  within 5%.
* **Chaos phase** — closed-loop clients solving through a client-side
  :class:`~repro.serving.resilience.RetryPolicy` while a scripted killer
  SIGTERMs the routed owner of the hottest system at fixed progress points
  (a seeded 2-kill schedule).  After each kill the driver measures the time
  until the supervisor has respawned the victim **and** the consistent-hash
  ring's ``arc_shares`` equal the pre-kill placement exactly — recovery to
  *full* capacity, not merely "something answers".

* **Replicated drill** — a 3-worker ``R=2`` fleet whose hottest primary is
  a *gray* failure (every request stalls, the process stays alive and
  heartbeating) and is additionally SIGTERMed mid-run, while a healthy
  sibling is drained and undrained.  Hedged requests rescue the stalled
  primary's traffic within one hedge deadline, the kill fails over to warm
  replicas, and the drain cycle hands arcs over with zero disruption —
  all of it audited against the drill's own event-log timeline
  (``hedge_dispatch``, ``failover``, ``worker_drain`` /
  ``worker_drain_complete`` / ``worker_undrain``, ``worker_death``,
  ``worker_respawn``).

Acceptance gates (the tentpole's contract):

* every request settles — nothing in flight after the clients drain, no
  silent drops;
* >= 99% of requests succeed after retries;
* each kill recovers (ring re-converged, victim respawned) within a bound;
* exactly the scripted deaths occur — a kill must never cascade into
  collateral deaths of healthy siblings;
* non-degraded answers match single-process ground truth to 1e-10;
* the replicated drill sees **zero** degraded fallbacks and **zero**
  post-retry failures, with affected-request p99 bounded by one hedge
  deadline plus a dispatch margin.

Results go to ``benchmarks/results/chaos.txt`` (human-readable) and
``BENCH_chaos.json`` at the repository root (machine-readable).  Run
directly for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke

which exits non-zero when any acceptance criterion regresses.
"""

import argparse
import json
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

from repro.obs import EventLog
from repro.reporting import format_table
from repro.serving import ChaosSpec, ClusterEngine, HashRing, RetryPolicy
from repro.utils import matrix_fingerprint

try:
    from .common import emit
    from .bench_serving_cluster import (
        _EPSILON_L,
        _ZIPF_S,
        _build_pool,
        _measure_zipf,
        _references,
        _zipf_weights,
    )
except ImportError:     # script mode: python benchmarks/bench_chaos.py
    from common import emit
    from bench_serving_cluster import (
        _EPSILON_L,
        _ZIPF_S,
        _build_pool,
        _measure_zipf,
        _references,
        _zipf_weights,
    )

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_JSON_PATH = _ROOT / "BENCH_chaos.json"
_BASELINE_PATH = _ROOT / "BENCH_serving_cluster.json"

#: non-degraded cluster answers must match single-process answers to this.
_PARITY_TOL = 1e-10
#: fraction of chaos-phase requests that must succeed after retries.
_MIN_SUCCESS_RATE = 0.99
#: seconds allowed from SIGTERM to full re-convergence (respawn + ring).
_MAX_RECOVERY_S = 10.0
#: healthy-path throughput may regress at most this much vs the recorded
#: serving-cluster baseline (full mode only; cross-machine JSONs are skipped).
_MAX_HEALTHY_REGRESSION = 0.05
#: progress fractions (of the chaos request count) at which the killer fires.
_KILL_SCHEDULE = (0.25, 0.55)

#: replicated drill: hedge deadline, gray-failure stall, and the progress
#: fractions for the scripted kill and the drain/undrain cycle.
_REPL_HEDGE_AFTER = 0.2
_REPL_SLOW_SECONDS = 2.0
_REPL_KILL_FRACTION = 0.3
_REPL_DRAIN_FRACTION = 0.6
#: an affected request (primary = the stalled/killed worker) must settle
#: within one hedge deadline plus dispatch-and-solve overhead — far below
#: the stall it would otherwise pay.
_REPL_FAILOVER_MARGIN = 1.0


# ---------------------------------------------------------------------- #
# scripted killer
# ---------------------------------------------------------------------- #
class _Killer(threading.Thread):
    """Fires the seeded kill schedule and times each recovery.

    Each scheduled kill waits until client progress crosses its fraction,
    SIGTERMs the *current routed owner of the hottest system* (deterministic
    given the seed: routing is a pure function of fingerprint and the live
    ring), then polls until the victim has respawned and ``arc_shares``
    equal the pre-kill baseline exactly.
    """

    def __init__(self, cluster: ClusterEngine, hottest_matrix,
                 total_requests: int, progress) -> None:
        super().__init__(name="chaos-killer", daemon=True)
        self._cluster = cluster
        self._hottest = hottest_matrix
        self._total = total_requests
        self._progress = progress       # zero-arg callable -> settled count
        self.kills: list[dict] = []
        self.baseline_shares = dict(cluster.stats(
            include_workers=False)["ring"]["arc_shares"])

    def run(self) -> None:
        for fraction in _KILL_SCHEDULE:
            threshold = int(fraction * self._total)
            while self._progress() < threshold:
                time.sleep(0.005)
            victim = self._cluster.route(self._hottest)
            prior_restarts = self._cluster.stats(
                include_workers=False)["restarts"].get(victim, 0)
            killed_at = time.monotonic()
            self._cluster._workers[victim]["process"].terminate()
            recovery_s, reconverged = self._await_recovery(
                victim, prior_restarts, killed_at)
            self.kills.append({
                "at_fraction": fraction,
                "at_request": threshold,
                "victim": victim,
                "recovery_s": recovery_s,
                "reconverged": reconverged,
            })

    def _await_recovery(self, victim: str, prior_restarts: int,
                        killed_at: float) -> tuple[float, bool]:
        deadline = killed_at + _MAX_RECOVERY_S + 5.0
        while time.monotonic() < deadline:
            stats = self._cluster.stats(include_workers=False)
            if (stats["restarts"].get(victim, 0) > prior_restarts
                    and stats["ring"]["arc_shares"] == self.baseline_shares):
                return time.monotonic() - killed_at, True
            time.sleep(0.01)
        return time.monotonic() - killed_at, False


# ---------------------------------------------------------------------- #
# chaos phase: retrying closed-loop clients + the killer
# ---------------------------------------------------------------------- #
def _measure_chaos(cluster: ClusterEngine, pool: list[dict],
                   references: list[np.ndarray], *, num_requests: int,
                   clients: int, rng_seed: int = 2) -> dict:
    weights = _zipf_weights(len(pool))
    draws = np.random.default_rng(rng_seed).choice(len(pool),
                                                   size=num_requests,
                                                   p=weights)
    partitions = np.array_split(draws, clients)
    settled = {"n": 0}
    count_lock = threading.Lock()
    successes = [0] * clients
    degraded = [0] * clients
    deviations = [0.0] * clients
    retries = [0] * clients
    failures: list[str] = []

    killer = _Killer(cluster, pool[0]["matrix"], num_requests,
                     lambda: settled["n"])

    def client(index: int, indices) -> None:
        # one policy per client: retries are the client's own backoff state.
        policy = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.5,
                             rng=1000 + index)
        for pool_index in indices:
            entry = pool[pool_index]
            try:
                record = policy.execute(
                    cluster.solve, entry["matrix"], entry["rhs"],
                    epsilon_l=_EPSILON_L, backend="ideal",
                    kappa=entry["kappa"])
            except BaseException as exc:  # noqa: BLE001 - typed, counted
                failures.append(type(exc).__name__)
            else:
                successes[index] += 1
                if record.degraded:
                    degraded[index] += 1
                else:
                    deviations[index] = max(deviations[index], float(
                        np.max(np.abs(record.x - references[pool_index]))))
            finally:
                with count_lock:
                    settled["n"] += 1
        retries[index] = policy.stats()["retries"]

    threads = [threading.Thread(target=client, args=(i, partition))
               for i, partition in enumerate(partitions)]
    start = time.perf_counter()
    killer.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_time = time.perf_counter() - start
    killer.join(timeout=_MAX_RECOVERY_S + 10.0)

    stats = cluster.stats(include_workers=False)
    total_success = sum(successes)

    # span-tree completeness (the drill runs at sample rate 1.0): every
    # admitted request still in the ring — ok, degraded, redispatched or
    # failed — must carry the structural front-end spans.  Shed requests
    # never pass admission, so "route" alone is their complete tree.
    tracer = cluster.observability.tracer
    incomplete_traces = 0
    for trace_id in tracer.buffer.trace_ids():
        record = tracer.buffer.get(trace_id)
        if record["status"] == "shed":
            continue
        names = set(span["name"] for span in record["spans"])
        if not {"route", "admit"} <= names:
            incomplete_traces += 1

    return {
        "num_requests": num_requests,
        "clients": clients,
        "zipf_s": _ZIPF_S,
        "rng_seed": rng_seed,
        "kill_schedule": list(_KILL_SCHEDULE),
        "kills": killer.kills,
        "wall_time_s": wall_time,
        "throughput_rps": num_requests / wall_time,
        "successes": total_success,
        "failures": len(failures),
        "failure_types": sorted(set(failures)),
        "success_rate": total_success / num_requests,
        "client_retries": sum(retries),
        "degraded": sum(degraded),
        "max_deviation": max(deviations),
        "inflight_after_drain": stats["inflight"],
        "worker_deaths": stats["worker_deaths"],
        "restarts": stats["restarts"],
        "redispatched": stats["redispatched"],
        "workers_alive_after": stats["workers_alive"],
        "supervisor": stats["supervisor"],
        "trace": stats["obs"]["trace"],
        "incomplete_traces": incomplete_traces,
    }


# ---------------------------------------------------------------------- #
# replicated drill: R=2 ownership must make one death invisible
# ---------------------------------------------------------------------- #
def _measure_replicated(cluster: ClusterEngine, pool: list[dict],
                        references: list[np.ndarray], *, victim: str,
                        primaries: list[str], num_requests: int,
                        clients: int, rng_seed: int = 5) -> dict:
    """Zipf traffic against an R=2 fleet whose ``victim`` worker stalls
    every request (gray failure), is SIGTERMed mid-run, while another
    worker is drained and undrained — replication must absorb all of it:
    zero degraded fallbacks, zero post-retry failures, and every affected
    request rescued by its hedge within about one hedge deadline.
    """
    weights = _zipf_weights(len(pool))
    draws = np.random.default_rng(rng_seed).choice(len(pool),
                                                   size=num_requests,
                                                   p=weights)
    partitions = np.array_split(draws, clients)
    settled = {"n": 0}
    count_lock = threading.Lock()
    successes = [0] * clients
    degraded = [0] * clients
    deviations = [0.0] * clients
    latencies: list[list[tuple[int, float]]] = [[] for _ in range(clients)]
    failures: list[str] = []
    ops = {"kill_recovered_s": None, "drained": None, "undrained": None}

    def driver() -> None:
        kill_at = int(_REPL_KILL_FRACTION * num_requests)
        while settled["n"] < kill_at:
            time.sleep(0.005)
        prior = cluster.stats(include_workers=False)["restarts"].get(victim, 0)
        killed_at = time.monotonic()
        cluster._workers[victim]["process"].terminate()
        while time.monotonic() < killed_at + 15.0:
            if cluster.stats(include_workers=False)["restarts"] \
                    .get(victim, 0) > prior:
                ops["kill_recovered_s"] = time.monotonic() - killed_at
                break
            time.sleep(0.01)
        drain_at = int(_REPL_DRAIN_FRACTION * num_requests)
        while settled["n"] < drain_at:
            time.sleep(0.005)
        target = next(w for w in sorted(cluster.workers_alive)
                      if w != victim)
        ops["drained"] = cluster.drain(target, timeout=10.0)
        time.sleep(0.1)
        ops["undrained"] = cluster.undrain(target)

    def client(index: int, indices) -> None:
        policy = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.5,
                             rng=2000 + index)
        for pool_index in indices:
            entry = pool[pool_index]
            start = time.perf_counter()
            try:
                record = policy.execute(
                    cluster.solve, entry["matrix"], entry["rhs"],
                    epsilon_l=_EPSILON_L, backend="ideal",
                    kappa=entry["kappa"])
            except BaseException as exc:  # noqa: BLE001 - typed, counted
                failures.append(type(exc).__name__)
            else:
                successes[index] += 1
                latencies[index].append((int(pool_index),
                                         time.perf_counter() - start))
                if record.degraded:
                    degraded[index] += 1
                else:
                    deviations[index] = max(deviations[index], float(
                        np.max(np.abs(record.x - references[pool_index]))))
            finally:
                with count_lock:
                    settled["n"] += 1

    driver_thread = threading.Thread(target=driver, name="replicated-driver",
                                     daemon=True)
    threads = [threading.Thread(target=client, args=(i, partition))
               for i, partition in enumerate(partitions)]
    start = time.perf_counter()
    driver_thread.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_time = time.perf_counter() - start
    driver_thread.join(timeout=30.0)

    affected = [latency for chunk in latencies
                for pool_index, latency in chunk
                if primaries[pool_index] == victim]
    healthy = [latency for chunk in latencies
               for pool_index, latency in chunk
               if primaries[pool_index] != victim]
    stats = cluster.stats(include_workers=False)
    return {
        "num_requests": num_requests,
        "clients": clients,
        "victim": victim,
        "hedge_after": _REPL_HEDGE_AFTER,
        "slow_seconds": _REPL_SLOW_SECONDS,
        "kill_fraction": _REPL_KILL_FRACTION,
        "drain_fraction": _REPL_DRAIN_FRACTION,
        "kill_recovered_s": ops["kill_recovered_s"],
        "drained": ops["drained"],
        "undrained": ops["undrained"],
        "wall_time_s": wall_time,
        "successes": sum(successes),
        "failures": len(failures),
        "failure_types": sorted(set(failures)),
        "degraded": sum(degraded),
        "max_deviation": max(deviations),
        "affected_requests": len(affected),
        "affected_p99_s": (float(np.percentile(affected, 99))
                           if affected else None),
        "healthy_p99_s": (float(np.percentile(healthy, 99))
                          if healthy else None),
        "inflight_after_drain": stats["inflight"],
        "worker_deaths": stats["worker_deaths"],
        "failovers": stats["failovers"],
        "hedged": stats["hedged"],
        "hedge_wins": stats["hedge_wins"],
        "redispatched": stats["redispatched"],
    }


# ---------------------------------------------------------------------- #
def run_benchmark(*, smoke: bool = False) -> dict:
    if smoke:
        num_workers, healthy_requests, chaos_requests, clients = 2, 40, 60, 4
        replicated_requests = 60
    else:
        num_workers, healthy_requests, chaos_requests, clients = 2, 400, 300, 8
        replicated_requests = 240

    pool = _build_pool(smoke)
    references = _references(pool)
    # hedging off for the legacy phases: they measure pure primary dispatch
    # (and compare against a pre-replication baseline); the replicated
    # drill below exercises R=2 + hedging explicitly.
    resilience_config = dict(
        num_workers=num_workers, queue_limit=256,
        respawn=True, supervisor_interval=0.05, hedging=False)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        # tiered store directories make every respawn a *warm* restore —
        # the new incarnation reloads compiled solvers instead of
        # re-synthesising, which is what keeps recovery inside the bound.
        stores = dict(local_store_dir=f"{tmp}/local",
                      shared_store_dir=f"{tmp}/shared")

        with ClusterEngine(**resilience_config, **stores) as cluster:
            healthy = _measure_zipf(cluster, pool, references,
                                    num_requests=healthy_requests,
                                    clients=clients)

        # the drill itself runs fully observed: every request traced
        # (sample rate 1.0) and every lifecycle event — death, redispatch,
        # respawn — appended to a shared JSONL the drill audits afterwards.
        event_path = f"{tmp}/events.jsonl"
        with ClusterEngine(**resilience_config, **stores,
                           trace_sample_rate=1.0,
                           event_log_path=event_path) as cluster:
            # warm both the per-worker caches and the store hierarchy, so
            # kill latency measures recovery, not first-touch synthesis.
            for entry, reference in zip(pool, references):
                record = cluster.solve(entry["matrix"], entry["rhs"],
                                       epsilon_l=_EPSILON_L, backend="ideal",
                                       kappa=entry["kappa"])
                deviation = float(np.max(np.abs(record.x - reference)))
                if deviation > _PARITY_TOL:
                    raise RuntimeError(f"warmup deviates by {deviation:.2e}")
            chaos = _measure_chaos(cluster, pool, references,
                                   num_requests=chaos_requests,
                                   clients=clients)

        # post-hoc timeline: the event log is the drill's audit trail, read
        # back from disk after the engine (and its workers) closed.
        records = EventLog.read_file(event_path)
        kind_counts: dict[str, int] = {}
        for record in records:
            kind_counts[record["kind"]] = kind_counts.get(record["kind"], 0) + 1
        chaos["timeline"] = {
            "events": len(records),
            "kinds": kind_counts,
            "deaths": [{"worker": r.get("worker"),
                        "incarnation": r.get("incarnation")}
                       for r in records if r["kind"] == "worker_death"],
            "respawns": [{"worker": r.get("worker"),
                          "incarnation": r.get("incarnation")}
                         for r in records if r["kind"] == "worker_respawn"],
        }

        # replicated drill: a 3-worker R=2 fleet whose hottest primary is
        # both gray (stalls every request) and killed mid-run, with a
        # drain/undrain cycle on a sibling — its own event timeline.
        repl_workers = 3
        repl_ring = HashRing([f"worker-{i}" for i in range(repl_workers)])
        primaries = [repl_ring.route(matrix_fingerprint(entry["matrix"]))
                     for entry in pool]
        repl_victim = primaries[0]
        repl_event_path = f"{tmp}/replicated-events.jsonl"
        slow = ChaosSpec(slow_rate=1.0, slow_seconds=_REPL_SLOW_SECONDS,
                         workers=(repl_victim,))
        with ClusterEngine(num_workers=repl_workers, queue_limit=256,
                           replication_factor=2,
                           hedge_after=_REPL_HEDGE_AFTER,
                           supervisor_interval=0.05, chaos=slow,
                           event_log_path=repl_event_path,
                           local_store_dir=f"{tmp}/repl-local",
                           shared_store_dir=f"{tmp}/repl-shared") as cluster:
            # warm every fingerprint first (the victim's systems arrive via
            # their hedges), so the measured drill sees steady-state warm
            # replicas — affected p99 then isolates failover latency, not
            # first-touch synthesis.
            for entry in pool:
                cluster.solve(entry["matrix"], entry["rhs"],
                              epsilon_l=_EPSILON_L, backend="ideal",
                              kappa=entry["kappa"])
            replicated = _measure_replicated(
                cluster, pool, references, victim=repl_victim,
                primaries=primaries, num_requests=replicated_requests,
                clients=clients)
        repl_records = EventLog.read_file(repl_event_path)
        repl_kinds: dict[str, int] = {}
        for record in repl_records:
            repl_kinds[record["kind"]] = repl_kinds.get(record["kind"], 0) + 1
        replicated["timeline"] = {"events": len(repl_records),
                                  "kinds": repl_kinds}

    baseline_rps = None
    regression = None
    if not smoke and _BASELINE_PATH.exists():
        baseline = json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))
        baseline_rps = float(baseline["zipf"]["throughput_rps"])
        regression = 1.0 - healthy["throughput_rps"] / baseline_rps

    summary = {
        "smoke": smoke,
        "epsilon_l": _EPSILON_L,
        "num_workers": num_workers,
        "healthy": healthy,
        "chaos": chaos,
        "replicated": replicated,
        "baseline_rps": baseline_rps,
        "healthy_regression": regression,
    }

    kill_rows = [{"at": f"{k['at_fraction']:.0%}", "victim": k["victim"],
                  "recovery [s]": k["recovery_s"],
                  "reconverged": k["reconverged"]}
                 for k in chaos["kills"]]
    text = "\n\n".join([
        format_table(
            [{"workers": healthy["workers"],
              "requests": healthy["num_requests"],
              "req/s": healthy["throughput_rps"],
              "p99 [s]": healthy["p99_s"],
              "baseline req/s": baseline_rps if baseline_rps else "n/a",
              "regression": (f"{regression:+.1%}" if regression is not None
                             else "n/a")}],
            title="Healthy path (full resilience stack armed, no faults)"),
        format_table(kill_rows or [{"at": "-", "victim": "-",
                                    "recovery [s]": 0.0,
                                    "reconverged": False}],
                     title=f"Seeded kill schedule (Zipf s={_ZIPF_S}, "
                           f"seed={chaos['rng_seed']})"),
        format_table(
            [{"requests": chaos["num_requests"],
              "success": f"{chaos['success_rate']:.2%}",
              "retries": chaos["client_retries"],
              "redispatched": chaos["redispatched"],
              "degraded": chaos["degraded"],
              "deaths": chaos["worker_deaths"],
              "max dev": chaos["max_deviation"]}],
            title="Chaos traffic (closed loop through RetryPolicy clients)"),
        format_table(
            [{"kind": kind, "count": count}
             for kind, count in sorted(chaos["timeline"]["kinds"].items())],
            title="Event-log timeline (shared JSONL, read back post-drill)")
        + (f"\n\ntraces: {chaos['trace']['finished']} finished at sample "
           f"rate {chaos['trace']['sample_rate']}, "
           f"{chaos['incomplete_traces']} incomplete"),
        format_table(
            [{"requests": replicated["num_requests"],
              "victim": replicated["victim"],
              "failures": replicated["failures"],
              "degraded": replicated["degraded"],
              "hedge wins": replicated["hedge_wins"],
              "failovers": replicated["failovers"],
              "affected p99 [s]": replicated["affected_p99_s"],
              "recovered [s]": replicated["kill_recovered_s"]}],
            title=f"Replicated drill (R=2, {replicated['victim']} stalls "
                  f"{_REPL_SLOW_SECONDS}s/request, killed at "
                  f"{_REPL_KILL_FRACTION:.0%}, sibling drained at "
                  f"{_REPL_DRAIN_FRACTION:.0%})"),
        format_table(
            [{"kind": kind, "count": count}
             for kind, count in sorted(
                 replicated["timeline"]["kinds"].items())],
            title="Replicated-drill timeline"),
    ])
    if smoke:
        # threshold gate only; never overwrite the full-run artifacts
        emit("chaos_smoke", text)
    else:
        _JSON_PATH.write_text(json.dumps(summary, indent=2, default=float)
                              + "\n", encoding="utf-8")
        emit("chaos", text + f"\n\nwritten: {_JSON_PATH}")
    return summary


def _check(summary: dict) -> list[str]:
    """Acceptance criteria of the resilience tentpole; empty = pass."""
    failures = []
    chaos = summary["chaos"]
    if chaos["inflight_after_drain"] != 0:
        failures.append(f"{chaos['inflight_after_drain']} request(s) still "
                        "in flight after the clients drained (silent drop)")
    if chaos["successes"] + chaos["failures"] != chaos["num_requests"]:
        failures.append("request accounting does not balance: "
                        f"{chaos['successes']} + {chaos['failures']} != "
                        f"{chaos['num_requests']}")
    if chaos["success_rate"] < _MIN_SUCCESS_RATE:
        failures.append(f"success rate {chaos['success_rate']:.2%} after "
                        f"retries is below {_MIN_SUCCESS_RATE:.0%} "
                        f"(failure types: {chaos['failure_types']})")
    if len(chaos["kills"]) != len(_KILL_SCHEDULE):
        failures.append(f"killer fired {len(chaos['kills'])} of "
                        f"{len(_KILL_SCHEDULE)} scheduled kills")
    for kill in chaos["kills"]:
        if not kill["reconverged"]:
            failures.append(f"ring never re-converged after killing "
                            f"{kill['victim']} at {kill['at_fraction']:.0%}")
        elif kill["recovery_s"] > _MAX_RECOVERY_S:
            failures.append(f"recovery after killing {kill['victim']} took "
                            f"{kill['recovery_s']:.2f}s "
                            f"(bound {_MAX_RECOVERY_S}s)")
    if chaos["worker_deaths"] != len(_KILL_SCHEDULE):
        failures.append(f"{chaos['worker_deaths']} worker deaths for "
                        f"{len(_KILL_SCHEDULE)} scripted kills — a kill "
                        "cascaded into collateral deaths")
    if chaos["workers_alive_after"] != summary["num_workers"]:
        failures.append(f"only {chaos['workers_alive_after']} of "
                        f"{summary['num_workers']} workers on the ring after "
                        "the drill")
    if chaos["max_deviation"] > _PARITY_TOL:
        failures.append(f"non-degraded chaos answers deviate by "
                        f"{chaos['max_deviation']:.2e} "
                        f"(tolerance {_PARITY_TOL:.0e})")
    if summary["healthy"]["max_deviation"] > _PARITY_TOL:
        failures.append(f"healthy-path answers deviate by "
                        f"{summary['healthy']['max_deviation']:.2e}")
    timeline = chaos["timeline"]
    kinds = timeline["kinds"]
    if kinds.get("worker_death", 0) != len(_KILL_SCHEDULE):
        failures.append(f"event log recorded {kinds.get('worker_death', 0)} "
                        f"worker_death events for {len(_KILL_SCHEDULE)} "
                        "scripted kills")
    if kinds.get("worker_respawn", 0) < len(_KILL_SCHEDULE):
        failures.append(f"event log recorded only "
                        f"{kinds.get('worker_respawn', 0)} worker_respawn "
                        f"events for {len(_KILL_SCHEDULE)} kills")
    for kill in chaos["kills"]:
        if not any(r["worker"] == kill["victim"]
                   for r in timeline["respawns"]):
            failures.append(f"no worker_respawn event for killed victim "
                            f"{kill['victim']} in the timeline")
    if chaos["trace"]["finished"] < chaos["num_requests"]:
        failures.append(f"only {chaos['trace']['finished']} traces finished "
                        f"for {chaos['num_requests']} requests — the drill "
                        "runs at sample rate 1.0 and must trace everything")
    if chaos["incomplete_traces"] > 0:
        failures.append(f"{chaos['incomplete_traces']} admitted request(s) "
                        "settled without the structural route/admit spans")
    regression = summary["healthy_regression"]
    if regression is not None and regression > _MAX_HEALTHY_REGRESSION:
        failures.append(f"healthy-path throughput regressed "
                        f"{regression:.1%} vs BENCH_serving_cluster.json "
                        f"(bound {_MAX_HEALTHY_REGRESSION:.0%})")

    # replicated drill: one death + one gray worker + a drain cycle, all
    # invisible to clients.
    replicated = summary["replicated"]
    if replicated["failures"] != 0:
        failures.append(f"replicated drill: {replicated['failures']} "
                        f"request(s) failed after retries "
                        f"({replicated['failure_types']})")
    if replicated["degraded"] != 0:
        failures.append(f"replicated drill: {replicated['degraded']} "
                        "degraded fallback(s) — a replica should have "
                        "answered")
    if replicated["worker_deaths"] != 1:
        failures.append(f"replicated drill: {replicated['worker_deaths']} "
                        "worker deaths for 1 scripted kill")
    if replicated["kill_recovered_s"] is None:
        failures.append("replicated drill: the killed primary never "
                        "respawned")
    if replicated["hedged"] < 1 or replicated["hedge_wins"] < 1:
        failures.append("replicated drill: no hedge fired/won against the "
                        "stalled primary")
    if replicated["failovers"] < 1:
        failures.append("replicated drill: the kill produced no failover")
    if not replicated["drained"] or not replicated["undrained"]:
        failures.append("replicated drill: the drain/undrain cycle did not "
                        f"complete (drained={replicated['drained']}, "
                        f"undrained={replicated['undrained']})")
    if replicated["inflight_after_drain"] != 0:
        failures.append(f"replicated drill: "
                        f"{replicated['inflight_after_drain']} request(s) "
                        "still in flight after the clients drained")
    if replicated["max_deviation"] > _PARITY_TOL:
        failures.append(f"replicated drill: non-degraded answers deviate by "
                        f"{replicated['max_deviation']:.2e}")
    affected_p99 = replicated["affected_p99_s"]
    if affected_p99 is None:
        failures.append("replicated drill: no request hit the stalled "
                        "primary — the drill exercised nothing")
    elif affected_p99 > _REPL_HEDGE_AFTER + _REPL_FAILOVER_MARGIN:
        failures.append(f"replicated drill: affected p99 "
                        f"{affected_p99:.2f}s exceeds one hedge deadline "
                        f"({_REPL_HEDGE_AFTER}s) + margin "
                        f"({_REPL_FAILOVER_MARGIN}s) — failover is not "
                        "bounded by the hedge")
    repl_kinds = replicated["timeline"]["kinds"]
    for kind in ("hedge_dispatch", "worker_drain", "worker_drain_complete",
                 "worker_undrain", "worker_death", "worker_respawn"):
        if repl_kinds.get(kind, 0) < 1:
            failures.append(f"replicated drill timeline is missing "
                            f"{kind!r} events")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration (the CI regression gate)")
    args = parser.parse_args(argv)
    summary = run_benchmark(smoke=args.smoke)
    chaos = summary["chaos"]
    recoveries = ", ".join(f"{k['victim']}@{k['at_fraction']:.0%}:"
                           f"{k['recovery_s']:.2f}s"
                           for k in chaos["kills"]) or "none"
    replicated = summary["replicated"]
    print(f"healthy: {summary['healthy']['throughput_rps']:.1f} req/s; "
          f"chaos: {chaos['success_rate']:.2%} success over "
          f"{chaos['num_requests']} requests with {chaos['worker_deaths']} "
          f"scripted deaths ({chaos['client_retries']} retries, "
          f"{chaos['redispatched']} redispatched, "
          f"{chaos['degraded']} degraded), recoveries: {recoveries}; "
          f"replicated: {replicated['failures']} failures, "
          f"{replicated['degraded']} degraded, "
          f"{replicated['hedge_wins']} hedge wins, affected p99 "
          f"{replicated['affected_p99_s']}")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
