"""Figure 1 — CPU–QPU communication scheme of Algorithm 2.

Runs one refined solve while recording every CPU↔QPU transfer (block-encoding
circuit, phase vector, state-preparation circuits, sampled solutions) and
renders the timeline.  Expected shape: the bulk of the traffic happens at the
setup / first-solve step; each refinement iteration only uploads ``SP(r_i)``
and downloads ``x_i``.
"""

import pytest

from repro.applications import random_workload
from repro.core import MixedPrecisionRefinement, QSVTLinearSolver

from .common import emit


def _run_refinement():
    workload = random_workload(16, 10.0, rng=5)
    solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-2, backend="circuit")
    driver = MixedPrecisionRefinement(solver, target_accuracy=1e-11)
    return driver.solve(workload.rhs)


def test_fig1_communication_trace(benchmark):
    result = benchmark.pedantic(_run_refinement, rounds=1, iterations=1)
    trace = result.communication
    text = trace.render()
    text += ("\n\nper-step bytes: "
             + ", ".join(f"step {k}: {v:.0f} B" for k, v in sorted(trace.per_step_bytes().items())))
    emit("fig1_communication", text)
    assert result.converged
    # shape check: the setup step dominates the communication volume
    assert trace.setup_fraction() > 0.5
    # every refinement iteration transfers the same, small amount of data
    per_step = trace.per_step_bytes()
    iteration_volumes = [per_step[k] for k in sorted(per_step) if k >= 1]
    assert len(set(iteration_volumes)) <= 1 or max(iteration_volumes) == min(iteration_volumes)
