"""Figure 4 — scaled residual per iteration for κ = 100, 200, 300.

At these condition numbers the Eq.-(4) polynomial degree reaches the tens of
thousands, far beyond what symmetric-QSP phase solving (and the paper's own
circuit simulation) can handle; like the paper — which switches to the
estimation algorithm of Ref. [32] and lets it determine ``ε_l`` — we switch to
the ideal-polynomial backend, which applies the very same Chebyshev polynomial
to the singular values.  The achieved ``ε_l`` of the constructed polynomial is
reported and used for the Theorem III.1 envelope.

Expected shape: geometric contraction of the scaled residual for every κ,
iteration count no larger than (and usually well below) the theoretical bound.
"""

import numpy as np
import pytest

from repro.applications import random_workload
from repro.core import MixedPrecisionRefinement, QSVTLinearSolver
from repro.reporting import format_convergence_history, format_table

from .common import emit

_KAPPAS = (100.0, 200.0, 300.0)
_TARGET = 1e-11


def _run_all():
    runs = []
    for kappa in _KAPPAS:
        workload = random_workload(16, kappa, rng=int(kappa))
        solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-3, backend="ideal")
        driver = MixedPrecisionRefinement(solver, target_accuracy=_TARGET)
        result = driver.solve(workload.rhs, x_true=workload.solution)
        runs.append((kappa, solver, result))
    return runs


def test_fig4_scaled_residual_large_kappa(benchmark):
    runs = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    sections = [f"Figure 4 — scaled residual until convergence, kappa = 100, 200, 300 "
                f"(N = 16 random systems, ideal-polynomial backend, target {_TARGET:g})"]
    summary_rows = []
    for kappa, solver, result in runs:
        info = solver.describe()
        sections.append("")
        sections.append(f"kappa = {kappa:g}: polynomial degree {info['polynomial_degree']}, "
                        f"achieved epsilon_l {info['achieved_epsilon_l']:.2e}, "
                        f"bound {result.iteration_bound:g}")
        sections.append(format_convergence_history(result.scaled_residuals,
                                                   bound=result.predicted_residuals))
        summary_rows.append({
            "kappa": kappa,
            "degree": info["polynomial_degree"],
            "achieved epsilon_l": info["achieved_epsilon_l"],
            "iterations": result.iterations,
            "Thm III.1 bound": result.iteration_bound,
            "final omega": result.scaled_residuals[-1],
            "BE calls": result.total_block_encoding_calls,
        })
    sections.append("")
    sections.append(format_table(summary_rows, title="summary"))
    emit("fig4_convergence_large_kappa", "\n".join(sections))

    for kappa, _, result in runs:
        assert result.converged, f"refinement did not converge for kappa={kappa}"
        assert result.iterations <= result.iteration_bound
        assert np.all(np.diff(result.scaled_residuals) < 0)
