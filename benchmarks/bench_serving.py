"""Serving layer — shared-memory hand-off, persistent store, coalesced async.

Measures the three boundaries the zero-copy serving layer eliminates:

* **process boundary** — ``ScenarioRunner(mode="process")`` with the
  shared-memory hand-off (one segment per distinct matrix, fingerprint
  handles in the jobs) vs per-job pickling of the full ``N x N`` payload, on
  repeated-matrix workloads with a warm synthesis store (so both sides skip
  synthesis and the hand-off itself is what differs);
* **run/process lifetime boundary** — cold compile (block-encoding +
  polynomial + QSP phases + plan fusion, then spilled to the
  :class:`~repro.engine.store.SynthesisStore`) vs warm restore of the same
  solver from disk in a fresh cache, including a 1e-12 equality check of the
  restored solver's solutions;
* **request boundary** — ``K`` concurrent same-matrix requests through the
  coalescing :class:`~repro.engine.aio.AsyncSolveEngine` (one fused
  ``solve_batch`` sweep) vs the same ``K`` requests awaited sequentially
  (``K`` sweeps).

Results go to ``benchmarks/results/serving.txt`` (human-readable) and to
``BENCH_serving.json`` at the repository root (machine-readable speedups).
Run directly for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke

which exits non-zero when the serving acceptance criteria regress (store
restore must beat compilation by >= 5x, coalesced K=8 must run in under half
of 8x the sequential time, all equality checks at 1e-12; the >= 2x
shared-memory hand-off gate applies to the full run only — it needs the
large-N configurations the smoke variant skips).
"""

import argparse
import asyncio
import json
import pathlib
import sys
import tempfile
import time

import numpy as np

from repro.core import QSVTLinearSolver
from repro.engine import (
    AsyncSolveEngine,
    CompiledSolverCache,
    ScenarioRunner,
    SolveJob,
    SynthesisStore,
)
from repro.linalg import random_matrix_with_condition_number, random_rhs
from repro.reporting import format_table
from repro.utils import as_generator

try:
    from .common import emit
except ImportError:          # script mode: python benchmarks/bench_serving.py
    from common import emit

_EPSILON_L = 1e-2
_KAPPA = 10.0
_REPEATS = 3
_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: shared-memory hand-off thresholds (full run only; see module docstring)
_MIN_SHAREDMEM_SPEEDUP = 2.0
#: warm restore must be at least this many times faster than a cold compile
_MIN_STORE_SPEEDUP = 5.0
#: K coalesced requests must finish in under this fraction of K sequential
_MAX_COALESCED_FRACTION = 0.5
_EQUALITY_TOL = 1e-12


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ---------------------------------------------------------------------- #
# (1) shared-memory hand-off vs per-job pickling
# ---------------------------------------------------------------------- #
def _measure_sharedmem(dimension: int, num_jobs: int, *, workers: int,
                       repeats: int) -> dict:
    """Process-mode runner: same jobs, warm store, only the hand-off differs."""
    matrix = random_matrix_with_condition_number(dimension, _KAPPA, rng=0)
    gen = as_generator(1)
    jobs = [SolveJob(name=f"job{i}", matrix=matrix,
                     rhs=random_rhs(dimension, rng=gen),
                     epsilon_l=_EPSILON_L, backend="ideal", kappa=_KAPPA)
            for i in range(num_jobs)]
    with tempfile.TemporaryDirectory() as tmp:
        store = SynthesisStore(tmp)
        # warm the store so neither mode pays synthesis inside the workers —
        # what remains is exactly the per-job hand-off + solve.
        CompiledSolverCache(store=store).solver(
            matrix, epsilon_l=_EPSILON_L, backend="ideal", kappa=_KAPPA)

        def run(shared: bool):
            runner = ScenarioRunner(mode="process", max_workers=workers,
                                    use_shared_memory=shared, store=store)
            report = runner.run(jobs)
            failed = [r.error for r in report if not r.ok]
            if failed:
                raise RuntimeError(f"jobs failed: {failed}")
            return report

        pickle_time, pickle_report = _best_of(repeats, lambda: run(False))
        shared_time, shared_report = _best_of(repeats, lambda: run(True))
    deviation = max(
        float(np.max(np.abs(a.x - b.x)))
        for a, b in zip(shared_report, pickle_report))
    return {
        "dimension": dimension,
        "num_jobs": num_jobs,
        "workers": workers,
        "matrix_mbytes": matrix.nbytes / 1e6,
        "pickle_time_s": pickle_time,
        "shared_time_s": shared_time,
        "speedup": pickle_time / shared_time,
        "pickle_jobs_per_sec": num_jobs / pickle_time,
        "shared_jobs_per_sec": num_jobs / shared_time,
        "max_deviation": deviation,
        "segments": shared_report.summary["shared_memory"]["segments"],
        "worker_compiles": shared_report.summary["cache"]["compiles"],
    }


# ---------------------------------------------------------------------- #
# (2) cold compile vs warm store restore
# ---------------------------------------------------------------------- #
def _measure_store(dimension: int, *, repeats: int) -> dict:
    """Synthesis (circuit backend) + spill vs restore-from-disk, plus 1e-12 check."""
    matrix = random_matrix_with_condition_number(dimension, _KAPPA, rng=2025)
    rhs = random_rhs(dimension, rng=3)
    reference = QSVTLinearSolver(matrix, epsilon_l=_EPSILON_L, backend="circuit",
                                 kappa=_KAPPA)
    expected = reference.solve(rhs).x
    with tempfile.TemporaryDirectory() as tmp:
        store = SynthesisStore(tmp)

        def cold():
            cache = CompiledSolverCache(store=SynthesisStore(tmp))
            cache.store.clear()
            return cache.solver(matrix, epsilon_l=_EPSILON_L, backend="circuit",
                                kappa=_KAPPA)

        def warm():
            cache = CompiledSolverCache(store=SynthesisStore(tmp))
            solver = cache.solver(matrix, epsilon_l=_EPSILON_L,
                                  backend="circuit", kappa=_KAPPA)
            if cache.stats()["store_hits"] != 1:
                raise RuntimeError("warm lookup did not hit the store")
            return solver

        cold_time, _ = _best_of(repeats, cold)
        cold()                                      # leave a warm entry behind
        warm_time, restored = _best_of(repeats, warm)
        deviation = float(np.max(np.abs(restored.solve(rhs).x - expected)))
        entry_bytes = store.disk_bytes()
    return {
        "dimension": dimension,
        "backend": "circuit",
        "cold_compile_s": cold_time,
        "warm_restore_s": warm_time,
        "speedup": cold_time / warm_time,
        "entry_mbytes": entry_bytes / 1e6,
        "max_deviation": deviation,
    }


# ---------------------------------------------------------------------- #
# (3) coalesced vs sequential async requests
# ---------------------------------------------------------------------- #
def _measure_async(dimension: int, num_requests: int, *, repeats: int) -> dict:
    """K concurrent same-matrix requests: one fused sweep vs K sweeps.

    Everything that is not the request path — event loop, engine, executor
    threads, the one-off synthesis — is set up outside the timed sections,
    so the numbers compare exactly what a running service experiences:
    ``K`` awaits answered one sweep at a time vs one gathered burst answered
    by a single coalesced sweep.
    """
    matrix = random_matrix_with_condition_number(dimension, _KAPPA, rng=7)
    gen = as_generator(9)
    batch = [random_rhs(dimension, rng=gen) for _ in range(num_requests)]
    cache = CompiledSolverCache()
    solver = cache.solver(matrix, epsilon_l=_EPSILON_L, backend="circuit",
                          kappa=_KAPPA)          # prewarm: measure sweeps, not synthesis
    expected = [solver.solve(rhs).x for rhs in batch]

    async def measure():
        async with AsyncSolveEngine(cache=cache) as engine:
            def request(rhs):
                return engine.solve(matrix, rhs, epsilon_l=_EPSILON_L,
                                    backend="circuit", kappa=_KAPPA)

            await request(batch[0])              # warm the executor threads

            sequential_time = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                for rhs in batch:
                    await request(rhs)
                sequential_time = min(sequential_time,
                                      time.perf_counter() - start)
            batches_before = engine.stats()["batches"]

            coalesced_time = float("inf")
            records = None
            for _ in range(repeats):
                start = time.perf_counter()
                records = await asyncio.gather(*[request(rhs)
                                                 for rhs in batch])
                coalesced_time = min(coalesced_time,
                                     time.perf_counter() - start)
            batches_per_burst = ((engine.stats()["batches"] - batches_before)
                                 / repeats)
            return sequential_time, coalesced_time, records, batches_per_burst

    sequential_time, coalesced_time, records, batches_per_burst = asyncio.run(
        measure())
    if batches_per_burst != 1:
        raise RuntimeError(
            f"gathered burst split into {batches_per_burst} batches")
    deviation = max(
        float(np.max(np.abs(record.x - exact)))
        for record, exact in zip(records, expected))
    return {
        "dimension": dimension,
        "num_requests": num_requests,
        "backend": "circuit",
        "sequential_time_s": sequential_time,
        "coalesced_time_s": coalesced_time,
        "speedup": sequential_time / coalesced_time,
        "coalesced_fraction": coalesced_time / sequential_time,
        "coalesced_batches": int(batches_per_burst),
        "max_deviation": deviation,
    }


# ---------------------------------------------------------------------- #
def run_benchmark(*, smoke: bool = False) -> dict:
    """Run every configuration, emit tables and write ``BENCH_serving.json``."""
    if smoke:
        sharedmem_configs = [(64, 8)]
        store_dims = [16]
        async_configs = [(16, 8)]
        workers, repeats = 2, 1
    else:
        sharedmem_configs = [(64, 32), (256, 32), (512, 32), (1024, 48)]
        store_dims = [8, 16]
        async_configs = [(16, 8), (16, 32)]
        workers, repeats = 2, _REPEATS

    sharedmem = [_measure_sharedmem(n, jobs, workers=workers, repeats=repeats)
                 for n, jobs in sharedmem_configs]
    store = [_measure_store(n, repeats=repeats) for n in store_dims]
    coalescing = [_measure_async(n, k, repeats=repeats)
                  for n, k in async_configs]

    summary = {
        "epsilon_l": _EPSILON_L,
        "kappa": _KAPPA,
        "smoke": smoke,
        "sharedmem": {
            "cases": sharedmem,
            "best_speedup": max(c["speedup"] for c in sharedmem),
            "best_speedup_dimension": max(
                sharedmem, key=lambda c: c["speedup"])["dimension"],
            "max_deviation": max(c["max_deviation"] for c in sharedmem),
        },
        "store": {
            "cases": store,
            "min_speedup": min(c["speedup"] for c in store),
            "max_deviation": max(c["max_deviation"] for c in store),
        },
        "async": {
            "cases": coalescing,
            "min_speedup": min(c["speedup"] for c in coalescing),
            "max_coalesced_fraction": max(c["coalesced_fraction"]
                                          for c in coalescing),
            "max_deviation": max(c["max_deviation"] for c in coalescing),
        },
    }

    text = "\n\n".join([
        format_table(
            [{"N": c["dimension"], "jobs": c["num_jobs"],
              "matrix [MB]": c["matrix_mbytes"],
              "pickle [s]": c["pickle_time_s"], "shared [s]": c["shared_time_s"],
              "speedup": c["speedup"], "max dev": c["max_deviation"]}
             for c in sharedmem],
            title=("Shared-memory hand-off vs per-job pickling "
                   f"(process mode, {workers} workers, warm store, "
                   "repeated-matrix workload)")),
        format_table(
            [{"N": c["dimension"], "cold compile [s]": c["cold_compile_s"],
              "warm restore [s]": c["warm_restore_s"], "speedup": c["speedup"],
              "entry [MB]": c["entry_mbytes"], "max dev": c["max_deviation"]}
             for c in store],
            title="Persistent synthesis store: cold compile vs warm restore "
                  "(circuit backend)"),
        format_table(
            [{"N": c["dimension"], "K": c["num_requests"],
              "sequential [s]": c["sequential_time_s"],
              "coalesced [s]": c["coalesced_time_s"], "speedup": c["speedup"],
              "batches": int(c["coalesced_batches"]),
              "max dev": c["max_deviation"]}
             for c in coalescing],
            title="Async front end: K coalesced same-matrix requests vs "
                  "K sequential (one fused sweep vs K sweeps)"),
    ])
    if smoke:
        # the smoke gate only checks thresholds; never overwrite the full
        # benchmark artifacts (README/ROADMAP cite their numbers).
        emit("serving_smoke", text)
    else:
        _JSON_PATH.write_text(json.dumps(summary, indent=2) + "\n",
                              encoding="utf-8")
        emit("serving", text + f"\n\nwritten: {_JSON_PATH}")
    return summary


def _check(summary: dict) -> list[str]:
    """Acceptance criteria of the serving tentpole; empty list = pass."""
    failures = []
    if not summary["smoke"]:
        # the hand-off advantage needs payloads big enough to dominate the
        # (machine-dependent) fixed pool costs; the smoke config is too small
        # to gate on it meaningfully.
        if summary["sharedmem"]["best_speedup"] < _MIN_SHAREDMEM_SPEEDUP:
            failures.append(
                f"shared-memory hand-off speedup "
                f"{summary['sharedmem']['best_speedup']:.2f}x is below the "
                f"required {_MIN_SHAREDMEM_SPEEDUP:.1f}x")
    if summary["sharedmem"]["max_deviation"] > _EQUALITY_TOL:
        failures.append(
            f"shared-memory results deviate from pickled results by "
            f"{summary['sharedmem']['max_deviation']:.2e}")
    if summary["store"]["min_speedup"] < _MIN_STORE_SPEEDUP:
        failures.append(
            f"warm store restore is only {summary['store']['min_speedup']:.2f}x "
            f"faster than a cold compile (required {_MIN_STORE_SPEEDUP:.1f}x)")
    if summary["store"]["max_deviation"] > _EQUALITY_TOL:
        failures.append(
            f"restored-from-store solutions deviate by "
            f"{summary['store']['max_deviation']:.2e} (tolerance {_EQUALITY_TOL:.0e})")
    if summary["async"]["max_coalesced_fraction"] > _MAX_COALESCED_FRACTION:
        failures.append(
            f"coalesced burst took {summary['async']['max_coalesced_fraction']:.2f} "
            f"of the sequential time (required < {_MAX_COALESCED_FRACTION:.2f})")
    if summary["async"]["max_deviation"] > _EQUALITY_TOL:
        failures.append(
            f"coalesced results deviate from sequential solves by "
            f"{summary['async']['max_deviation']:.2e}")
    return failures


def test_serving(benchmark):
    summary = benchmark.pedantic(run_benchmark, rounds=1, iterations=1,
                                 kwargs={"smoke": True})
    failures = _check(summary)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration (the CI regression gate)")
    args = parser.parse_args(argv)
    summary = run_benchmark(smoke=args.smoke)
    print(f"shared-memory hand-off {summary['sharedmem']['best_speedup']:.2f}x "
          f"(N={summary['sharedmem']['best_speedup_dimension']}), "
          f"store restore {summary['store']['min_speedup']:.0f}x, "
          f"coalesced burst {summary['async']['min_speedup']:.2f}x, "
          f"max deviation {max(summary[k]['max_deviation'] for k in ('sharedmem', 'store', 'async')):.2e}")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
