"""Ablation A6 — classical preconditioning of the hybrid solver.

The paper names preconditioning as the classical lever against the condition
number that drives every quantum cost (Sec. I, Sec. III-C4).  This ablation
solves badly row-scaled systems with and without classical row-equilibration
/ Jacobi preconditioning and reports the condition number seen by the QPU, the
resulting Eq.-(4) polynomial degree (block-encoding calls per solve) and the
refinement behaviour.

Expected shape: equilibration collapses the condition number of badly scaled
systems by orders of magnitude, shrinking the per-solve polynomial degree
accordingly, while the refined accuracy is unchanged.
"""

import numpy as np
import pytest

from repro.core import preconditioned_refine
from repro.linalg import random_matrix_with_condition_number, random_rhs
from repro.qsp import inverse_polynomial_degree
from repro.reporting import format_table

from .common import emit

_EPSILON_L = 1e-2
_TARGET = 1e-9
_SCALING_DECADES = (0.0, 2.0, 4.0)


def _scaled_system(decades: float, rng):
    base = random_matrix_with_condition_number(16, 3.0, rng=rng)
    scales = np.logspace(0.0, decades, 16)
    return scales[:, None] * base, random_rhs(16, rng=rng)


def _run():
    rows = []
    rng = np.random.default_rng(8)
    for decades in _SCALING_DECADES:
        matrix, rhs = _scaled_system(decades, rng)
        solution = np.linalg.solve(matrix, rhs)
        for kind in ("identity", "jacobi", "row-equilibration"):
            kappa_seen = None
            if kind == "identity" and decades >= 4.0:
                # running the unpreconditioned kappa ~ 3e4 case is possible but
                # slow; report its polynomial degree from the cost model only.
                from repro.linalg import condition_number

                kappa_seen = condition_number(matrix)
                rows.append({
                    "row scaling decades": decades, "preconditioner": kind,
                    "kappa seen by QPU": kappa_seen,
                    "degree / solve": inverse_polynomial_degree(
                        kappa_seen, _EPSILON_L / (2 * kappa_seen)),
                    "iterations": float("nan"), "final omega": float("nan"),
                    "forward error": float("nan"), "note": "cost model only",
                })
                continue
            result = preconditioned_refine(matrix, rhs, preconditioner=kind,
                                           epsilon_l=_EPSILON_L, backend="ideal",
                                           target_accuracy=_TARGET)
            error = float(np.linalg.norm(result.x - solution) / np.linalg.norm(solution))
            rows.append({
                "row scaling decades": decades, "preconditioner": kind,
                "kappa seen by QPU": result.solver_info["kappa_preconditioned"],
                "degree / solve": result.history[0].cumulative_block_encoding_calls,
                "iterations": result.iterations,
                "final omega": result.scaled_residuals[-1],
                "forward error": error, "note": "",
            })
    return rows


def test_ablation_preconditioning(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title=(
        f"Ablation A6 — classical preconditioning (epsilon_l = {_EPSILON_L:g}, "
        f"target {_TARGET:g}, N = 16, base kappa = 3)"))
    emit("ablation_preconditioning", text)
    # equilibration keeps the effective condition number (and the degree) flat
    # regardless of the row scaling, and the refined solution stays accurate.
    equilibrated = [row for row in rows if row["preconditioner"] == "row-equilibration"]
    degrees = [row["degree / solve"] for row in equilibrated]
    assert max(degrees) <= 3 * min(degrees)
    assert all(row["forward error"] < 1e-6 for row in equilibrated)
    # while the unpreconditioned degree explodes with the scaling
    identity_rows = [row for row in rows if row["preconditioner"] == "identity"]
    assert identity_rows[-1]["degree / solve"] > 100 * identity_rows[0]["degree / solve"]
