"""Serving cluster — Zipf traffic over problem families, plus a 10x overload.

Exercises the sharded serving tier (:mod:`repro.serving`) the way a service
actually meets load, in two phases:

* **Zipf phase** — closed-loop clients draw matrices from a pool of problem
  families (Poisson, convection–diffusion, Helmholtz, graph Laplacians,
  prescribed-spectrum) with Zipf(s=1.1) popularity — a few hot systems, a
  long warm tail, the distribution consistent-hash routing and the tiered
  cache hierarchy are built for.  Records sustained requests/second and
  client-observed p50/p99, verifies **every** response against a
  single-process :class:`~repro.core.qsvt_solver.QSVTLinearSolver` at
  1e-12, and checks routing stickiness (each matrix served by exactly one
  worker).
* **Overload phase** — an open-loop storm offering >= 10x the measured
  sustained throughput against deliberately small per-worker queues.  The
  acceptance criteria are the serving tier's whole point: excess load is
  rejected *explicitly* (``QueueFullError`` / ``QuotaExceededError``, all
  retriable), every admitted request completes with bounded latency, no
  exception of any other type escapes, and no worker dies.

Results go to ``benchmarks/results/serving_cluster.txt`` (human-readable)
and ``BENCH_serving_cluster.json`` at the repository root (machine-readable).
Run directly for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_serving_cluster.py --smoke

which exits non-zero when any acceptance criterion regresses.
"""

import argparse
import json
import pathlib
import sys
import threading
import time

import numpy as np

from repro.core import QSVTLinearSolver
from repro.exceptions import AdmissionError, QueueFullError, QuotaExceededError
from repro.problems import PROBLEM_FAMILIES
from repro.reporting import format_table
from repro.serving import ClusterEngine

try:
    from .common import emit
except ImportError:     # script mode: python benchmarks/bench_serving_cluster.py
    from common import emit

_EPSILON_L = 1e-2
_ZIPF_S = 1.1
_JSON_PATH = (pathlib.Path(__file__).resolve().parent.parent
              / "BENCH_serving_cluster.json")

#: cluster answers must match single-process answers to this tolerance.
_EQUALITY_TOL = 1e-12
#: the storm must offer at least this multiple of the sustained throughput.
_MIN_OVERLOAD_RATIO = 10.0
#: admitted-under-overload latency p99 must stay below this bound (bounded
#: queues mean queueing delay is queue_limit * service time, not open-ended).
_MAX_OVERLOAD_P99_S = 2.0


# ---------------------------------------------------------------------- #
# workload pool
# ---------------------------------------------------------------------- #
def _build_pool(smoke: bool) -> list[dict]:
    """Distinct systems from the problem-family registry, hot-first.

    Each entry carries the family workload's matrix, rhs, and its pinned
    condition number (analytic where the family knows it), so the cluster
    and the single-process reference compile identical solvers.
    """
    # assembly="dense" is pinned everywhere: the serving wire format ships
    # concrete arrays (inline or via shared memory), so the pool must not
    # pick up the problem registry's structured/matrix-free default.
    selections = [
        ("poisson-2d", {"grid_points": 4, "assembly": "dense"}),
        ("convection-diffusion", {"num_points": 16, "peclet": 0.8,
                                  "assembly": "dense"}),
        ("graph-laplacian", {"topology": "path", "num_nodes": 16,
                             "assembly": "dense"}),
    ]
    if not smoke:
        selections += [
            ("helmholtz", {"num_points": 16, "assembly": "dense"}),
            ("prescribed-spectrum", {"dimension": 16,
                                     "condition_number": 30.0}),
            ("poisson-3d", {"grid_points": 2, "assembly": "dense"}),
            ("convection-diffusion", {"num_points": 16, "peclet": 0.3,
                                      "assembly": "dense"}),
            ("graph-laplacian", {"topology": "cycle", "num_nodes": 16,
                                 "assembly": "dense"}),
        ]
    pool = []
    for name, params in selections:
        workload = PROBLEM_FAMILIES[name].workloads(**params)[0]
        kappa = float(workload.condition_number)
        pool.append({
            "family": name,
            "name": workload.name,
            "matrix": np.ascontiguousarray(workload.matrix, dtype=float),
            "rhs": np.asarray(workload.rhs, dtype=float),
            "kappa": kappa,
            "dimension": int(workload.dimension),
        })
    return pool


def _zipf_weights(count: int, s: float = _ZIPF_S) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-s)
    return weights / weights.sum()


def _references(pool: list[dict]) -> list[np.ndarray]:
    """Single-process ground truth, one compiled solver per distinct system."""
    references = []
    for entry in pool:
        solver = QSVTLinearSolver(entry["matrix"], epsilon_l=_EPSILON_L,
                                  backend="ideal", kappa=entry["kappa"])
        references.append(solver.solve(entry["rhs"]).x)
    return references


# ---------------------------------------------------------------------- #
# phase 1: Zipf-distributed closed-loop traffic
# ---------------------------------------------------------------------- #
def _measure_zipf(cluster: ClusterEngine, pool: list[dict],
                  references: list[np.ndarray], *, num_requests: int,
                  clients: int, rng_seed: int = 0) -> dict:
    weights = _zipf_weights(len(pool))
    draws = np.random.default_rng(rng_seed).choice(len(pool),
                                                   size=num_requests,
                                                   p=weights)
    partitions = np.array_split(draws, clients)
    latencies: list[list[float]] = [[] for _ in range(clients)]
    deviations = [0.0] * clients
    owners: list[dict[int, set]] = [{} for _ in range(clients)]
    errors: list[BaseException] = []

    def client(worker_index: int, indices) -> None:
        for pool_index in indices:
            entry = pool[pool_index]
            start = time.perf_counter()
            try:
                future = cluster.submit(entry["matrix"], entry["rhs"],
                                        epsilon_l=_EPSILON_L, backend="ideal",
                                        kappa=entry["kappa"])
                record = future.result()
            except BaseException as exc:  # noqa: BLE001 - report, don't die
                errors.append(exc)
                return
            latencies[worker_index].append(time.perf_counter() - start)
            deviations[worker_index] = max(
                deviations[worker_index],
                float(np.max(np.abs(record.x - references[pool_index]))))
            owners[worker_index].setdefault(int(pool_index),
                                            set()).add(future.worker_id)

    threads = [threading.Thread(target=client, args=(i, partition))
               for i, partition in enumerate(partitions)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_time = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"zipf phase raised: {errors[:3]!r}")

    merged_owners: dict[int, set] = {}
    for table in owners:
        for pool_index, workers in table.items():
            merged_owners.setdefault(pool_index, set()).update(workers)
    all_latencies = np.array([value for chunk in latencies for value in chunk])
    per_worker = cluster.worker_stats()
    stats = cluster.stats(include_workers=False)
    return {
        "num_requests": num_requests,
        "clients": clients,
        "zipf_s": _ZIPF_S,
        "pool": [{"family": e["family"], "name": e["name"],
                  "dimension": e["dimension"], "kappa": e["kappa"],
                  "weight": float(w)}
                 for e, w in zip(pool, _zipf_weights(len(pool)))],
        "wall_time_s": wall_time,
        "throughput_rps": num_requests / wall_time,
        "p50_s": float(np.percentile(all_latencies, 50)),
        "p99_s": float(np.percentile(all_latencies, 99)),
        "max_deviation": max(deviations),
        "workers": len(cluster.workers_alive),
        "sticky_routing": all(len(w) == 1 for w in merged_owners.values()),
        "coalesced_requests": sum(
            w.get("coalesced_requests", 0) for w in per_worker.values()),
        "cache_hits": sum(
            w.get("cache", {}).get("hits", 0) for w in per_worker.values()),
        "served_per_worker": {wid: w.get("served", 0)
                              for wid, w in per_worker.items()},
        "engine_latency": stats["latency"],
    }


# ---------------------------------------------------------------------- #
# phase 2: 10x overload storm
# ---------------------------------------------------------------------- #
def _measure_overload(cluster: ClusterEngine, pool: list[dict],
                      references: list[np.ndarray], *,
                      sustained_rps: float, storm_requests: int,
                      rng_seed: int = 1) -> dict:
    """Open-loop storm: fire requests far faster than the fleet can serve.

    Half the traffic carries a tenant label so the quota bucket sheds too;
    the other half is anonymous and bounded by the queue watermark alone.
    """
    weights = _zipf_weights(len(pool))
    draws = np.random.default_rng(rng_seed).choice(len(pool),
                                                   size=storm_requests,
                                                   p=weights)
    futures = []
    rejected_queue_full = 0
    rejected_quota = 0
    unexpected_submit_errors = 0
    submit_start = time.perf_counter()
    for sequence, pool_index in enumerate(draws):
        entry = pool[pool_index]
        tenant = "storm-tenant" if sequence % 2 else None
        try:
            futures.append((pool_index, time.perf_counter(),
                            cluster.submit(entry["matrix"], entry["rhs"],
                                           epsilon_l=_EPSILON_L,
                                           backend="ideal",
                                           kappa=entry["kappa"],
                                           tenant=tenant)))
        except QueueFullError:
            rejected_queue_full += 1
        except QuotaExceededError:
            rejected_quota += 1
        except BaseException:  # noqa: BLE001 - anything else breaks the gate
            unexpected_submit_errors += 1
    submit_time = time.perf_counter() - submit_start
    offered_rps = storm_requests / max(submit_time, 1e-9)

    completed = 0
    unexpected_errors = unexpected_submit_errors
    max_deviation = 0.0
    admitted_latencies = []
    for pool_index, submitted_at, future in futures:
        try:
            record = future.result(timeout=60.0)
        except AdmissionError:
            # a worker death mid-storm would surface here; count it as
            # unexpected — the storm must not kill workers.
            unexpected_errors += 1
            continue
        except BaseException:  # noqa: BLE001
            unexpected_errors += 1
            continue
        completed += 1
        admitted_latencies.append(time.perf_counter() - submitted_at)
        max_deviation = max(max_deviation, float(
            np.max(np.abs(record.x - references[pool_index]))))

    # the fleet must still be fully serviceable after the storm
    post = pool[0]
    post_record = cluster.solve(post["matrix"], post["rhs"],
                                epsilon_l=_EPSILON_L, backend="ideal",
                                kappa=post["kappa"])
    post_storm_ok = bool(
        np.max(np.abs(post_record.x - references[0])) <= _EQUALITY_TOL)
    stats = cluster.stats(include_workers=False)
    rejected = rejected_queue_full + rejected_quota
    return {
        "storm_requests": storm_requests,
        "offered_rps": offered_rps,
        "sustained_rps": sustained_rps,
        "offered_ratio": offered_rps / max(sustained_rps, 1e-9),
        "admitted": len(futures),
        "completed": completed,
        "rejected": rejected,
        "rejected_queue_full": rejected_queue_full,
        "rejected_quota": rejected_quota,
        "unexpected_errors": unexpected_errors,
        "admitted_p50_s": (float(np.percentile(admitted_latencies, 50))
                           if admitted_latencies else 0.0),
        "admitted_p99_s": (float(np.percentile(admitted_latencies, 99))
                           if admitted_latencies else 0.0),
        "max_deviation": max_deviation,
        "worker_deaths": stats["worker_deaths"],
        "workers_alive_after": stats["workers_alive"],
        "post_storm_ok": post_storm_ok,
        "shed_fraction": rejected / storm_requests,
    }


# ---------------------------------------------------------------------- #
def run_benchmark(*, smoke: bool = False) -> dict:
    if smoke:
        num_workers, zipf_requests, clients, storm_requests = 2, 40, 2, 80
    else:
        num_workers, zipf_requests, clients, storm_requests = 2, 400, 8, 1500

    pool = _build_pool(smoke)
    references = _references(pool)

    # Zipf phase: generous queues, no quotas — measure what the fleet
    # sustains when everything is admitted.  Hedging is off: this phase
    # gates on sticky routing (one worker per fingerprint), and a derived
    # hedge winning a race would register as a second server.
    with ClusterEngine(num_workers=num_workers, queue_limit=256,
                       hedging=False) as cluster:
        zipf = _measure_zipf(cluster, pool, references,
                             num_requests=zipf_requests, clients=clients)

    # Overload phase: fresh fleet with deliberately small queues and a
    # tenant quota, so both shedding mechanisms fire under the storm.
    with ClusterEngine(num_workers=num_workers, queue_limit=8,
                       tenant_rate=20.0, tenant_burst=40.0,
                       hedging=False) as cluster:
        # warm the per-worker caches so storm latency measures queueing +
        # solving, not one-off synthesis.
        for entry, reference in zip(pool, references):
            record = cluster.solve(entry["matrix"], entry["rhs"],
                                   epsilon_l=_EPSILON_L, backend="ideal",
                                   kappa=entry["kappa"])
            deviation = float(np.max(np.abs(record.x - reference)))
            if deviation > _EQUALITY_TOL:
                raise RuntimeError(f"warmup deviates by {deviation:.2e}")
        overload = _measure_overload(cluster, pool, references,
                                     sustained_rps=zipf["throughput_rps"],
                                     storm_requests=storm_requests)

    summary = {
        "smoke": smoke,
        "epsilon_l": _EPSILON_L,
        "num_workers": num_workers,
        "zipf": zipf,
        "overload": overload,
    }

    text = "\n\n".join([
        format_table(
            [{"family": p["family"], "N": p["dimension"],
              "kappa": p["kappa"], "zipf weight": p["weight"]}
             for p in zipf["pool"]],
            title=(f"Zipf(s={_ZIPF_S}) workload pool "
                   f"({len(pool)} problem-family systems)")),
        format_table(
            [{"workers": zipf["workers"], "clients": zipf["clients"],
              "requests": zipf["num_requests"],
              "req/s": zipf["throughput_rps"],
              "p50 [s]": zipf["p50_s"], "p99 [s]": zipf["p99_s"],
              "coalesced": zipf["coalesced_requests"],
              "max dev": zipf["max_deviation"]}],
            title="Sustained Zipf traffic (closed-loop clients, "
                  "every response checked against single-process solves)"),
        format_table(
            [{"offered/sustained": overload["offered_ratio"],
              "admitted": overload["admitted"],
              "rejected": overload["rejected"],
              "queue-full": overload["rejected_queue_full"],
              "quota": overload["rejected_quota"],
              "admitted p99 [s]": overload["admitted_p99_s"],
              "deaths": overload["worker_deaths"],
              "unexpected": overload["unexpected_errors"]}],
            title="Overload storm (open loop, bounded queues + tenant quota; "
                  "rejections are explicit and retriable)"),
    ])
    if smoke:
        # threshold gate only; never overwrite the full-run artifacts
        emit("serving_cluster_smoke", text)
    else:
        _JSON_PATH.write_text(json.dumps(summary, indent=2, default=float)
                              + "\n", encoding="utf-8")
        emit("serving_cluster", text + f"\n\nwritten: {_JSON_PATH}")
    return summary


def _check(summary: dict) -> list[str]:
    """Acceptance criteria of the serving-cluster tentpole; empty = pass."""
    failures = []
    zipf, overload = summary["zipf"], summary["overload"]
    if zipf["workers"] < 2:
        failures.append(f"zipf phase ran on {zipf['workers']} worker(s); "
                        "the tier must sustain >= 2")
    if zipf["max_deviation"] > _EQUALITY_TOL:
        failures.append(f"cluster answers deviate from single-process solves "
                        f"by {zipf['max_deviation']:.2e} "
                        f"(tolerance {_EQUALITY_TOL:.0e})")
    if not zipf["sticky_routing"]:
        failures.append("a matrix was served by more than one worker "
                        "(consistent-hash routing is not sticky)")
    if zipf["throughput_rps"] <= 0:
        failures.append("no sustained throughput measured")
    if not summary["smoke"] and overload["offered_ratio"] < _MIN_OVERLOAD_RATIO:
        failures.append(f"storm offered only {overload['offered_ratio']:.1f}x "
                        f"the sustained rate (need >= {_MIN_OVERLOAD_RATIO}x)")
    if overload["rejected"] == 0:
        failures.append("overload shed nothing: queues absorbed a storm that "
                        "must exceed them")
    if overload["unexpected_errors"] > 0:
        failures.append(f"{overload['unexpected_errors']} request(s) failed "
                        "with something other than an explicit admission "
                        "rejection")
    if overload["completed"] != overload["admitted"]:
        failures.append(f"only {overload['completed']} of "
                        f"{overload['admitted']} admitted requests completed")
    if overload["admitted_p99_s"] > _MAX_OVERLOAD_P99_S:
        failures.append(f"admitted-under-overload p99 "
                        f"{overload['admitted_p99_s']:.2f}s exceeds the "
                        f"{_MAX_OVERLOAD_P99_S}s bound")
    if overload["max_deviation"] > _EQUALITY_TOL:
        failures.append(f"overload answers deviate by "
                        f"{overload['max_deviation']:.2e}")
    if overload["worker_deaths"] > 0 or not overload["post_storm_ok"]:
        failures.append("the storm killed a worker or left the fleet "
                        "unserviceable")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration (the CI regression gate)")
    args = parser.parse_args(argv)
    summary = run_benchmark(smoke=args.smoke)
    zipf, overload = summary["zipf"], summary["overload"]
    print(f"zipf: {zipf['throughput_rps']:.1f} req/s on {zipf['workers']} "
          f"workers (p50 {zipf['p50_s'] * 1e3:.1f} ms, "
          f"p99 {zipf['p99_s'] * 1e3:.1f} ms, "
          f"max dev {zipf['max_deviation']:.2e}); "
          f"overload: {overload['offered_ratio']:.0f}x offered, "
          f"{overload['rejected']} rejected "
          f"({overload['rejected_queue_full']} queue-full / "
          f"{overload['rejected_quota']} quota), "
          f"admitted p99 {overload['admitted_p99_s'] * 1e3:.0f} ms, "
          f"{overload['worker_deaths']} deaths")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
