"""Figure 2 — circuit for the block-encoding of the tridiagonal matrix.

Builds the adder-based (circulant) block-encoding circuit of the ``N = 16``
tridiagonal stencil, renders it as an ASCII diagram, verifies its encoding
error, and reports its fault-tolerant resource estimate.  The Dirichlet
boundary correction used by the exact ``TridiagonalBlockEncoding`` is reported
alongside (number of LCU terms and subnormalisation).
"""

import pytest

from repro.blockencoding import (
    CirculantBlockEncoding,
    TridiagonalBlockEncoding,
    block_encoding_error,
)
from repro.quantum import draw_circuit, estimate_circuit_resources

from .common import emit


def _build():
    circulant = CirculantBlockEncoding(4)           # N = 16
    dirichlet = TridiagonalBlockEncoding(4)
    circuit = circulant.circuit()
    resources = estimate_circuit_resources(circuit)
    return circulant, dirichlet, circuit, resources


def test_fig2_tridiagonal_block_encoding_circuit(benchmark):
    circulant, dirichlet, circuit, resources = benchmark(_build)
    lines = [
        "Figure 2 — block-encoding circuit of the tridiagonal (Poisson) matrix, N = 16",
        "",
        f"circulant construction : {circulant.describe()}",
        f"  encoding error       : {block_encoding_error(circulant):.2e}",
        f"  gate counts          : {circuit.count_gates()}",
        f"  logical depth        : {circuit.depth()}",
        "",
        "fault-tolerant resources of one block-encoding call:",
        resources.summary(),
        "",
        f"Dirichlet variant (exact Eq. 7 matrix): {dirichlet.describe()}, "
        f"{dirichlet.num_terms} LCU terms",
        "",
        "ASCII circuit (ancillas a0,a1 then data qubits d0..d3):",
        draw_circuit(circuit, qubit_labels=["a0", "a1", "d0", "d1", "d2", "d3"],
                     max_width=1200),
    ]
    emit("fig2_tridiagonal_circuit", "\n".join(lines))
    assert block_encoding_error(circulant) < 1e-10
    assert block_encoding_error(dirichlet) < 1e-10
