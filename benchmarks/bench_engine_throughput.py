"""Engine throughput — batched multi-RHS QSVT solve and compiled-solver cache.

Two claims of the engine subsystem are measured on the paper's ``N = 16``
setting:

1. **Batching**: solving ``B`` right-hand sides through
   :meth:`~repro.core.qsvt_solver.QSVTLinearSolver.solve_batch` (one circuit
   sweep over a ``(B, 2**n)`` amplitude stack, see
   :mod:`repro.engine.batched`) is at least 2x faster than a Python loop of
   ``B`` independent :meth:`solve` calls.
2. **Caching**: a second request for the same ``(matrix, epsilon_l, backend)``
   through :class:`~repro.engine.cache.CompiledSolverCache` performs **zero**
   re-synthesis (the compile counter does not move and the hit is orders of
   magnitude faster than the compilation it skips).
"""

import time

import numpy as np

from repro.applications import random_workload
from repro.core import QSVTLinearSolver
from repro.engine import CompiledSolverCache
from repro.linalg import random_rhs
from repro.reporting import format_table
from repro.utils import as_generator

from .common import emit

_DIMENSION = 16
_KAPPA = 10.0
_EPSILON_L = 1e-2
_BATCH_SIZE = 8
_REPEATS = 3


def _best_of(repeats, fn):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _run():
    workload = random_workload(_DIMENSION, _KAPPA, rng=2025)
    gen = as_generator(7)
    rhs_batch = np.stack([random_rhs(_DIMENSION, rng=gen) for _ in range(_BATCH_SIZE)])

    solver = QSVTLinearSolver(workload.matrix, epsilon_l=_EPSILON_L, backend="circuit")

    # warm-up both paths once (numpy buffers, phase conversion, ...)
    solver.solve(rhs_batch[0])
    solver.solve_batch(rhs_batch[:2])

    looped_time, looped = _best_of(
        _REPEATS, lambda: [solver.solve(rhs) for rhs in rhs_batch])
    batched_time, batched = _best_of(
        _REPEATS, lambda: solver.solve_batch(rhs_batch))
    speedup = looped_time / batched_time
    max_deviation = max(
        float(np.max(np.abs(lo.x - ba.x))) for lo, ba in zip(looped, batched))

    # ---- compiled-solver cache: second solve -> zero re-synthesis -------- #
    cache = CompiledSolverCache()
    first_time, first = _best_of(
        1, lambda: cache.solver(workload.matrix, epsilon_l=_EPSILON_L,
                                backend="circuit"))
    compiles_after_first = cache.compiles
    second_time, second = _best_of(
        1, lambda: cache.solver(workload.matrix, epsilon_l=_EPSILON_L,
                                backend="circuit"))
    resyntheses = cache.compiles - compiles_after_first

    rows = [
        {"path": f"looped solve x{_BATCH_SIZE}", "wall time [s]": looped_time,
         "per rhs [s]": looped_time / _BATCH_SIZE},
        {"path": f"solve_batch (B={_BATCH_SIZE})", "wall time [s]": batched_time,
         "per rhs [s]": batched_time / _BATCH_SIZE},
        {"path": "first cache.solver (compile)", "wall time [s]": first_time,
         "per rhs [s]": float("nan")},
        {"path": "second cache.solver (hit)", "wall time [s]": second_time,
         "per rhs [s]": float("nan")},
    ]
    summary = {
        "rows": rows,
        "speedup": speedup,
        "max_deviation": max_deviation,
        "cache_hit_same_object": second is first,
        "resyntheses_on_second_solve": resyntheses,
        "cache_stats": cache.stats(),
    }
    return summary


def test_engine_throughput(benchmark):
    summary = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(summary["rows"], title=(
        f"Engine throughput — N = {_DIMENSION}, kappa = {_KAPPA:g}, "
        f"epsilon_l = {_EPSILON_L:g}, circuit backend"))
    lines = [
        text,
        "",
        f"batched vs looped speedup over B = {_BATCH_SIZE} right-hand sides: "
        f"{summary['speedup']:.2f}x",
        f"max |x_batched - x_looped| across the batch: {summary['max_deviation']:.2e}",
        f"second identical-matrix solve: cache hit = "
        f"{summary['cache_hit_same_object']}, re-syntheses = "
        f"{summary['resyntheses_on_second_solve']}",
        f"cache stats: {summary['cache_stats']}",
    ]
    emit("engine_throughput", "\n".join(lines))

    # acceptance criteria of the engine subsystem
    assert summary["speedup"] >= 2.0, (
        f"batched solve only {summary['speedup']:.2f}x faster than the loop")
    assert summary["max_deviation"] < 1e-10
    assert summary["cache_hit_same_object"]
    assert summary["resyntheses_on_second_solve"] == 0
