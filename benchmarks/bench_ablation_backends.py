"""Ablation A2 — circuit-level vs ideal-polynomial vs exact-inverse backends.

The circuit backend is the faithful simulation; the ideal-polynomial backend
is the substitution used at large κ (see DESIGN.md); the exact-inverse
surrogate realises the Theorem III.1 hypothesis exactly.  This ablation runs
the same refined solve through all three and compares convergence histories,
iteration counts and wall-clock time, substantiating the claim that the
substitution preserves the behaviour that Figures 3–5 measure.
"""

import numpy as np
import pytest

from repro.applications import random_workload
from repro.core import (
    ExactInverseBackend,
    MixedPrecisionRefinement,
    QSVTLinearSolver,
)
from repro.reporting import format_table

from .common import emit

_KAPPA = 8.0
_EPSILON_L = 2e-2
_TARGET = 1e-10


def _run():
    workload = random_workload(8, _KAPPA, rng=77)
    configurations = [
        ("circuit", "circuit"),
        ("ideal", "ideal"),
        ("exact-surrogate", ExactInverseBackend(rng=0)),
    ]
    rows = []
    histories = {}
    for name, backend in configurations:
        solver = QSVTLinearSolver(workload.matrix, epsilon_l=_EPSILON_L, backend=backend)
        result = MixedPrecisionRefinement(solver, target_accuracy=_TARGET).solve(
            workload.rhs, x_true=workload.solution)
        histories[name] = result.scaled_residuals
        rows.append({
            "backend": name,
            "iterations": result.iterations,
            "bound": result.iteration_bound,
            "final omega": result.scaled_residuals[-1],
            "final forward error": result.forward_errors[-1],
            "preparation time [s]": solver.preparation_time,
            "solve time [s]": sum(record.wall_time for record in result.history),
            "converged": result.converged,
        })
    return rows, histories


def test_ablation_backend_comparison(benchmark):
    rows, histories = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title=(
        f"Ablation A2 — backend comparison (N = 8, kappa = {_KAPPA:g}, "
        f"epsilon_l = {_EPSILON_L:g}, target {_TARGET:g})"))
    lines = [text, "", "scaled residual histories:"]
    for name, history in histories.items():
        lines.append(f"  {name:16s}: " + "  ".join(f"{value:.2e}" for value in history))
    emit("ablation_backends", "\n".join(lines))

    assert all(row["converged"] for row in rows)
    # circuit and ideal backends implement the same polynomial: their initial
    # solves agree to well within the inner accuracy
    assert abs(histories["circuit"][0] - histories["ideal"][0]) < _EPSILON_L
