"""Problem suite + autotuner — per-family throughput, chain reuse, tuned ε_l.

Exercises the :mod:`repro.problems` workload families end-to-end through the
engine and measures the three claims of the subsystem:

* **family throughput** — every registered family builds through
  ``build_scenario`` and runs through ``ScenarioRunner``; per-family
  jobs/sec, compiled-solver cache hit rate and the maximum forward error
  against each workload's classically computed exact solution;
* **time-stepping reuse** — a heat-equation chain of ``T`` implicit-Euler
  steps against one fixed operator performs exactly **one** synthesis: the
  compiled-solver cache hit rate in ``RunReport.summary`` is ``(T-1)/T``;
* **adaptive autotuning** — per-family ε_l from the
  :class:`~repro.engine.autotune.Autotuner` (cost-model seed, then
  telemetry-driven hill climb) versus a fixed one-size-fits-all ε_l that a
  static deployment would have to provision for its worst-conditioned
  family.  The first (pure cost-model) choice must equal
  :func:`repro.core.cost_model.optimal_epsilon_l` on the Poisson family,
  and the adapted configurations must beat the fixed baseline on total
  measured block-encoding calls over the workload stream.

Results go to ``benchmarks/results/problems.txt`` and — full runs only — to
``BENCH_problems.json`` at the repository root.  Run directly for the CI
smoke gate::

    PYTHONPATH=src python benchmarks/bench_problems.py --smoke
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time
from dataclasses import replace

import numpy as np

from repro.core.cost_model import optimal_epsilon_l
from repro.engine import Autotuner, ScenarioRunner, build_scenario
from repro.problems import PROBLEM_FAMILIES, workload_jobs
from repro.reporting import format_table

try:
    from .common import emit
except ImportError:          # script mode: python benchmarks/bench_problems.py
    from common import emit

_TARGET = 1e-8
#: one-size-fits-all baseline ε_l: the largest value that keeps the
#: Theorem III.1 contraction ε_l κ < 1 safe for every family in the stream
#: (worst κ ≈ 117 for the N=16 1-D Poisson member).
_FIXED_EPSILON_L = 1e-3
#: forward-error ceiling against the classical exact solutions (κ·ε ≈ 1e-6
#: for the worst family; an order of magnitude of slack on top).
_MAX_FORWARD_ERROR = 1e-4
#: required aggregate advantage of adapted ε_l over the fixed baseline.
_MIN_AUTOTUNE_ADVANTAGE = 1.05
_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_problems.json"


def _family_configs(smoke: bool) -> list[tuple[str, dict]]:
    """Per-family build parameters (kept quantum-sized: N a power of two)."""
    rhs = 2 if smoke else 8
    return [
        ("poisson-2d", {"num_rhs": rhs}),
        ("poisson-3d", {"num_rhs": rhs}),
        ("heat-chain", {"num_steps": 16}),
        ("convection-diffusion", {"num_rhs": rhs}),
        ("helmholtz", {"num_rhs": rhs}),
        ("graph-laplacian", {"num_rhs": rhs}),
        ("graph-laplacian", {"topology": "random-regular", "num_rhs": rhs}),
        ("prescribed-spectrum", {"num_rhs": rhs}),
    ]


def _forward_error(results, workloads) -> float:
    """Max relative forward error of the solves against the exact solutions."""
    worst = 0.0
    for result, workload in zip(results, workloads):
        error = (np.linalg.norm(result.x - workload.solution)
                 / np.linalg.norm(workload.solution))
        worst = max(worst, float(error))
    return worst


# ---------------------------------------------------------------------- #
# (1) per-family throughput + correctness
# ---------------------------------------------------------------------- #
def _measure_family(name: str, params: dict) -> dict:
    # build the workloads once and wrap them: the solves are validated
    # against exactly the solutions generated here, with no reliance on a
    # second generation pass being bit-identical
    workloads = PROBLEM_FAMILIES[name].workloads(**params)
    jobs = workload_jobs(workloads, target_accuracy=_TARGET, backend="ideal",
                         family=name)
    runner = ScenarioRunner(mode="serial")
    start = time.perf_counter()
    report = runner.run(jobs)
    wall = time.perf_counter() - start
    failed = [r.error for r in report if not r.ok]
    if failed:
        raise RuntimeError(f"{name} jobs failed: {failed}")
    cache = report.summary["cache"]
    label = name if "topology" not in params else f"{name}:{params['topology']}"
    return {
        "family": label,
        "jobs": len(report),
        "dimension": int(workloads[0].dimension),
        "kappa": float(jobs[0].kappa),
        "epsilon_l": float(jobs[0].epsilon_l),
        "wall_time_s": wall,
        "jobs_per_sec": len(report) / wall if wall > 0 else 0.0,
        "cache_hit_rate": cache["hit_rate"],
        "compiles": cache["compiles"],
        "converged": all(r.converged for r in report),
        "max_forward_error": _forward_error(report, workloads),
        "total_block_encoding_calls": int(sum(r.block_encoding_calls
                                              for r in report)),
    }


# ---------------------------------------------------------------------- #
# (2) heat-chain reuse: one synthesis for T steps
# ---------------------------------------------------------------------- #
def _measure_chain(num_steps: int) -> dict:
    chain = PROBLEM_FAMILIES["heat-chain"].chain(num_steps=num_steps)
    workloads = chain.workloads
    report = ScenarioRunner(mode="serial").run(
        chain.jobs(backend="ideal", target_accuracy=_TARGET))
    failed = [r.error for r in report if not r.ok]
    if failed:
        raise RuntimeError(f"heat-chain steps failed: {failed}")
    cache = report.summary["cache"]
    return {
        "num_steps": num_steps,
        "compiles": cache["compiles"],
        "cache_hit_rate": cache["hit_rate"],
        "required_hit_rate": (num_steps - 1) / num_steps,
        "converged": all(r.converged for r in report),
        "max_forward_error": _forward_error(report, workloads),
    }


# ---------------------------------------------------------------------- #
# (3) autotuned vs fixed ε_l
# ---------------------------------------------------------------------- #
def _autotune_family(name: str, params: dict, *, rounds: int,
                     profile_dir: str) -> dict:
    """Explore ``rounds`` observe/run cycles, then replay the measured best."""
    tuner = Autotuner(path=pathlib.Path(profile_dir) / f"{name}.json",
                      target_accuracy=_TARGET)
    build = dict(params)
    build.pop("topology", None)  # autotune section uses default topologies
    first_epsilon_l = None
    kappa = None
    for _ in range(rounds):
        scenario = tuner.tune_scenario(name, target_accuracy=_TARGET, **build)
        jobs = [replace(job, backend="ideal") for job in scenario.jobs]
        if first_epsilon_l is None:
            first_epsilon_l = float(jobs[0].epsilon_l)
            kappa = float(jobs[0].kappa)
        # fresh runner per round: the telemetry observe() persists must
        # describe this round's cache behaviour, not the whole session's
        report = ScenarioRunner(mode="serial").run(jobs)
        tuner.observe(name, report, kappa=jobs[0].kappa,
                      epsilon_l=jobs[0].epsilon_l)
    profile = tuner.profile(name)
    best_epsilon_l = float(profile.best_epsilon_l)
    if not np.isfinite(best_epsilon_l):
        raise RuntimeError(
            f"{name}: no adaptation round converged — the autotuner never "
            "anchored a best epsilon_l (see the profile's converged_fraction)")
    tuned_jobs = [replace(job, epsilon_l=best_epsilon_l, backend="ideal")
                  for job in build_scenario(name, target_accuracy=_TARGET,
                                            **build).jobs]
    tuned_report = ScenarioRunner(mode="serial").run(tuned_jobs)
    fixed_jobs = [replace(job, epsilon_l=_FIXED_EPSILON_L, backend="ideal")
                  for job in build_scenario(name, target_accuracy=_TARGET,
                                            **build).jobs]
    fixed_report = ScenarioRunner(mode="serial").run(fixed_jobs)
    tuned_calls = int(sum(r.block_encoding_calls for r in tuned_report))
    fixed_calls = int(sum(r.block_encoding_calls for r in fixed_report))
    return {
        "family": name,
        "kappa": kappa,
        "rounds": rounds,
        "cost_model_epsilon_l": float(optimal_epsilon_l(kappa, _TARGET)),
        "first_epsilon_l": first_epsilon_l,
        "adapted_epsilon_l": best_epsilon_l,
        "fixed_epsilon_l": _FIXED_EPSILON_L,
        "tuned_block_encoding_calls": tuned_calls,
        "fixed_block_encoding_calls": fixed_calls,
        "advantage": fixed_calls / tuned_calls if tuned_calls else float("nan"),
        "tuned_converged": all(r.converged for r in tuned_report),
        "fixed_converged": all(r.converged for r in fixed_report),
    }


# ---------------------------------------------------------------------- #
def run_benchmark(*, smoke: bool = False) -> dict:
    """Run every section, emit tables and (full runs) BENCH_problems.json."""
    configs = _family_configs(smoke)
    families = [_measure_family(name, params) for name, params in configs]
    chain = _measure_chain(16)
    rounds = 3 if smoke else 6
    autotune_names = (["poisson-multi-rhs", "heat-chain"] if smoke else
                      ["poisson-multi-rhs", "poisson-2d", "heat-chain",
                       "helmholtz", "prescribed-spectrum"])
    autotune_params = {
        "poisson-multi-rhs": {"num_points": 16,
                              "num_rhs": 2 if smoke else 8, "rng": 5},
        "poisson-2d": {"num_rhs": 8},
        "heat-chain": {"num_steps": 16},
        "helmholtz": {"num_rhs": 8},
        "prescribed-spectrum": {"num_rhs": 8},
    }
    with tempfile.TemporaryDirectory() as profile_dir:
        autotune = [_autotune_family(name, autotune_params[name],
                                     rounds=rounds, profile_dir=profile_dir)
                    for name in autotune_names]
    poisson = next(c for c in autotune if c["family"] == "poisson-multi-rhs")
    summary = {
        "smoke": smoke,
        "target_accuracy": _TARGET,
        "families": families,
        "chain": chain,
        "autotune": {
            "cases": autotune,
            "fixed_epsilon_l": _FIXED_EPSILON_L,
            "poisson_matches_cost_model": (poisson["first_epsilon_l"]
                                           == poisson["cost_model_epsilon_l"]),
            "total_tuned_calls": sum(c["tuned_block_encoding_calls"]
                                     for c in autotune),
            "total_fixed_calls": sum(c["fixed_block_encoding_calls"]
                                     for c in autotune),
        },
    }
    summary["autotune"]["aggregate_advantage"] = (
        summary["autotune"]["total_fixed_calls"]
        / summary["autotune"]["total_tuned_calls"])

    text = "\n\n".join([
        format_table(
            [{"family": c["family"], "N": c["dimension"], "jobs": c["jobs"],
              "kappa": c["kappa"], "eps_l": c["epsilon_l"],
              "jobs/s": c["jobs_per_sec"], "hit rate": c["cache_hit_rate"],
              "compiles": c["compiles"], "fwd err": c["max_forward_error"]}
             for c in families],
            title="Problem families through ScenarioRunner (serial, ideal "
                  "backend, refined to 1e-8, validated against classical "
                  "exact solutions)"),
        format_table(
            [{"T": chain["num_steps"], "compiles": chain["compiles"],
              "hit rate": chain["cache_hit_rate"],
              "required": chain["required_hit_rate"],
              "fwd err": chain["max_forward_error"]}],
            title="Heat-equation chain: T ordered solves, one synthesis"),
        format_table(
            [{"family": c["family"], "kappa": c["kappa"],
              "eps_l model": c["cost_model_epsilon_l"],
              "eps_l adapted": c["adapted_epsilon_l"],
              "BE tuned": c["tuned_block_encoding_calls"],
              "BE fixed": c["fixed_block_encoding_calls"],
              "advantage": c["advantage"]}
             for c in autotune],
            title=f"Autotuned vs fixed eps_l={_FIXED_EPSILON_L:g} "
                  f"(total block-encoding calls, {rounds} adaptation rounds)"),
    ])
    if smoke:
        # the smoke gate only checks thresholds; never overwrite the full
        # benchmark artifacts (README/ROADMAP cite their numbers).
        emit("problems_smoke", text)
    else:
        _JSON_PATH.write_text(json.dumps(summary, indent=2) + "\n",
                              encoding="utf-8")
        emit("problems", text + f"\n\nwritten: {_JSON_PATH}")
    return summary


def _check(summary: dict) -> list[str]:
    """Acceptance criteria of the problem-suite tentpole; empty list = pass."""
    failures = []
    for case in summary["families"]:
        if not case["converged"]:
            failures.append(f"{case['family']}: not all jobs converged")
        if case["max_forward_error"] > _MAX_FORWARD_ERROR:
            failures.append(
                f"{case['family']}: forward error {case['max_forward_error']:.2e} "
                f"exceeds {_MAX_FORWARD_ERROR:.0e} against the exact solution")
    chain = summary["chain"]
    if chain["compiles"] != 1:
        failures.append(
            f"heat chain performed {chain['compiles']} syntheses (expected 1)")
    if chain["cache_hit_rate"] < chain["required_hit_rate"]:
        failures.append(
            f"heat chain cache hit rate {chain['cache_hit_rate']:.3f} below "
            f"(T-1)/T = {chain['required_hit_rate']:.3f}")
    autotune = summary["autotune"]
    if not autotune["poisson_matches_cost_model"]:
        failures.append(
            "autotuner's first Poisson choice deviates from the cost-model "
            "optimum")
    if autotune["aggregate_advantage"] < _MIN_AUTOTUNE_ADVANTAGE:
        failures.append(
            f"adapted eps_l only saves {autotune['aggregate_advantage']:.2f}x "
            f"block-encoding calls vs fixed (required "
            f">= {_MIN_AUTOTUNE_ADVANTAGE:.2f}x)")
    for case in autotune["cases"]:
        if not (case["tuned_converged"] and case["fixed_converged"]):
            failures.append(f"autotune {case['family']}: non-converged jobs")
    return failures


def test_problems(benchmark):
    summary = benchmark.pedantic(run_benchmark, rounds=1, iterations=1,
                                 kwargs={"smoke": True})
    failures = _check(summary)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration (the CI regression gate)")
    args = parser.parse_args(argv)
    summary = run_benchmark(smoke=args.smoke)
    autotune = summary["autotune"]
    print(f"{len(summary['families'])} family configs, chain hit rate "
          f"{summary['chain']['cache_hit_rate']:.3f} "
          f"({summary['chain']['compiles']} synthesis), autotune advantage "
          f"{autotune['aggregate_advantage']:.2f}x "
          f"(poisson matches cost model: {autotune['poisson_matches_cost_model']})")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
