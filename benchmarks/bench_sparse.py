"""Structured-operator fast path — assembly, memory, and solve throughput.

Measures the PR-5 claims of the structured-operator layer
(:mod:`repro.linalg.operators`) against the dense baseline it replaces:

* **assembly** — building the 2-D Poisson system at ``N = 4096``
  (``grid_points = 64``) as a Kronecker-sum operator versus the dense
  ``np.kron`` assembly; the structured path must be ≥ 10x faster;
* **memory** — resident bytes of the structured storage (``nnz_bytes``,
  which is also what cache eviction and the shared-memory registry now
  charge) versus the dense ``N²·8``; ≥ 10x smaller on the refinement path;
* **solve throughput** — full mixed-precision refinement (Algorithm 2,
  exact-inverse inner solver so both paths measure the *classical*
  structured-vs-dense machinery: assembly, fingerprints, cache, residual
  matvecs, structure-exploiting vs dense direct solves) at ``N = 4096``;
* **agreement** — at an overlapping size the structured and dense paths
  produce identical solutions to 1e-12, and the matrix-free QSVT route of
  the ideal backend matches the dense SVD route to 1e-12;
* **kernels** — the vectorised wide-batch ``CSROperator.matmat`` (one
  ``reduceat`` contraction) against the pre-vectorisation per-column loop
  at ``N = 65536``, ``B = 64``; must be ≥ 5x faster;
* **scale** — the ``poisson-2d`` scenario end-to-end at ``N ≥ 32768``
  (``grid_points = 182``, ``N = 33124``) through the engine — a size where
  the dense path *refuses* (its assembly alone would need ≥ 8.8 GiB; see
  the dense wall in :mod:`repro.problems.base`).  The QSVT inner solve at
  that κ ≈ 1.4e4 would cost ~8e5 block-encoding calls per sweep — the
  paper's κ-scaling point — so the scale demonstration drives the
  refinement with the exact-inverse surrogate while every structured-path
  component (operator assembly, fingerprinting, compiled-solver cache,
  matrix-free residuals, Kronecker fast-diagonalisation solves) runs for
  real; the matrix-free QSVT route itself is validated at the overlapping
  sizes above;
* **scaling curve** — ``poisson-2d`` and ``graph-laplacian`` end-to-end
  through the engine over a ladder of sizes up to ``N = 2²⁰ ≥ 10⁶``.
  The graph-laplacian rungs run the *ideal-backend matrix-free QSVT
  polynomial for real* at every size (the ridge keeps κ small, so the
  degree stays benign at a million rows); the poisson-2d rungs keep the
  exact-inverse surrogate (their κ ≈ N makes the polynomial degree the
  paper's scaling obstacle, not the memory).  Every rung asserts the peak
  traced-allocation proxy stays within a constant factor of the operator's
  ``nnz_bytes`` — resident memory is ``O(nnz)``, never ``O(N²)`` — and
  that dense assembly refuses at that size.

Results go to ``benchmarks/results/sparse.txt`` and to ``BENCH_sparse.json``
at the repository root.  Run directly for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_sparse.py --smoke
"""

import argparse
import json
import pathlib
import sys
import time
import tracemalloc

import numpy as np

from repro.core.qsvt_solver import QSVTLinearSolver
from repro.core.refinement import MixedPrecisionRefinement
from repro.engine import ScenarioRunner, build_scenario
from repro.linalg import BandedOperator
from repro.problems.graphs import graph_laplacian_operator
from repro.problems.pde import _assemble_laplacian
from repro.reporting import format_table

try:
    from .common import emit
except ImportError:          # script mode: python benchmarks/bench_sparse.py
    from common import emit

_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sparse.json"

#: grid size of the headline comparison (N = 4096, the old dense wall).
_GRID = 64
#: grid size of the beyond-the-wall demonstration (N = 33124 ≥ 32768).
_BIG_GRID = 182
_TARGET = 1e-8
#: acceptance floors asserted by the smoke gate.
_MIN_ASSEMBLY_SPEEDUP = 10.0
_MIN_MEMORY_REDUCTION = 10.0
_MIN_MATMAT_SPEEDUP = 5.0
_AGREEMENT_ATOL = 1e-12
#: scaling-curve ladders (dimension N): both end at N = 2²⁰ ≥ 10⁶.
_SCALING_GRIDS = [128, 256, 512, 1024]          # poisson-2d: N = grid²
_SCALING_NODES = [16384, 65536, 262144, 1048576]  # graph-laplacian cycle
#: the capped rung --smoke runs (N = 262144 for both families).
_SMOKE_GRID = 512
_SMOKE_NODES = 262144
#: peak-RSS proxy must stay within this factor of the structured storage
#: (nnz_bytes, itself O(N) for these families — versus the O(N²) dense
#: footprint, which is ~10⁶x above this budget at N = 2²⁰).
_RSS_FACTOR = 64.0


def _timed(fn, repeats: int = 1):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _peak_bytes(fn):
    """(result, peak traced allocation) — the resident-memory proxy."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, int(peak)


def _assembly_comparison(n: int) -> dict:
    structured, t_structured = _timed(
        lambda: _assemble_laplacian(n, 2, scale=float((n + 1) ** 2),
                                    assembly="structured", family="bench"),
        repeats=3)
    dense, t_dense = _timed(
        lambda: _assemble_laplacian(n, 2, scale=float((n + 1) ** 2),
                                    assembly="dense", family="bench"))
    return {
        "dimension": n * n,
        "structured_seconds": t_structured,
        "dense_seconds": t_dense,
        "assembly_speedup": t_dense / max(t_structured, 1e-12),
        "structured_bytes": structured.nnz_bytes(),
        "dense_bytes": int(dense.nbytes),
        "memory_reduction": dense.nbytes / max(structured.nnz_bytes(), 1),
        "_structured": structured,
        "_dense": dense,
    }


def _refinement_throughput(structured, dense, rhs: np.ndarray) -> dict:
    """Full Algorithm-2 refinement on both paths, with peak-memory proxies.

    The exact-inverse surrogate keeps the inner solve classical on both
    sides, so the comparison isolates the structured-vs-dense machinery:
    dense O(N³) solves + O(N²) matvecs versus fast diagonalisation + O(nnz)
    matvecs.
    """

    def run(matrix):
        solver = QSVTLinearSolver(matrix, epsilon_l=1e-2, backend="exact",
                                  rng=0)
        driver = MixedPrecisionRefinement(solver, target_accuracy=_TARGET)
        return driver.solve(rhs)

    (res_structured, peak_structured), t_structured = _timed(
        lambda: _peak_bytes(lambda: run(structured)))
    (res_dense, peak_dense), t_dense = _timed(
        lambda: _peak_bytes(lambda: run(dense)))
    assert res_structured.converged and res_dense.converged
    return {
        "structured_solve_seconds": t_structured,
        "dense_solve_seconds": t_dense,
        "solve_speedup": t_dense / max(t_structured, 1e-12),
        "structured_peak_rss_proxy": peak_structured,
        "dense_peak_rss_proxy": peak_dense,
        "peak_memory_reduction": peak_dense / max(peak_structured, 1),
        "solution_diff": float(np.linalg.norm(res_structured.x - res_dense.x)),
    }


def _agreement(n: int) -> dict:
    """Structured vs dense end-to-end agreement at an overlapping size."""
    structured_jobs = build_scenario("poisson-2d", grid_points=n,
                                     backend="ideal",
                                     target_accuracy=1e-12).jobs
    dense_jobs = build_scenario("poisson-2d", grid_points=n, backend="ideal",
                                target_accuracy=1e-12,
                                assembly="dense").jobs
    runner = ScenarioRunner(mode="serial")
    structured_report = runner.run(structured_jobs)
    dense_report = runner.run(dense_jobs)
    diffs = [float(np.linalg.norm(s.x - d.x))
             for s, d in zip(structured_report, dense_report)]
    assert all(r.ok and r.converged for r in structured_report)
    assert all(r.ok and r.converged for r in dense_report)
    return {"grid_points": n, "dimension": n * n,
            "max_solution_diff": max(diffs)}


def _beyond_the_wall(grid: int) -> dict:
    """poisson-2d end-to-end at N ≥ 32768 through the structured path."""
    build, t_build = _timed(lambda: build_scenario(
        "poisson-2d", grid_points=grid, backend="exact",
        target_accuracy=_TARGET))
    runner = ScenarioRunner(mode="serial")
    report, t_solve = _timed(lambda: runner.run(build.jobs))
    assert all(result.ok and result.converged for result in report)
    operator = build.jobs[0].matrix
    # the dense path refuses at this size (documented wall)
    try:
        build_scenario("poisson-2d", grid_points=grid, assembly="dense")
        refused = False
    except ValueError:
        refused = True
    return {
        "grid_points": grid,
        "dimension": grid * grid,
        "build_seconds": t_build,
        "solve_seconds": t_solve,
        "structured_bytes": operator.nnz_bytes(),
        "dense_bytes_would_be": grid**4 * 8,
        "dense_path_refuses": refused,
        "cache_compiles": report.summary["cache"]["compiles"],
    }


def _kernel_throughput() -> dict:
    """Wide-batch matmat kernels against the pre-vectorisation loop."""
    n, batch = 65536, 64
    operator = graph_laplacian_operator("cycle", n)
    gen = np.random.default_rng(1)
    block = gen.standard_normal((n, batch))
    fast, t_fast = _timed(lambda: operator.matmat(block), repeats=3)
    slow, t_slow = _timed(lambda: operator._matmat_loop(block))
    assert np.allclose(fast, slow, atol=1e-10)
    banded = BandedOperator.toeplitz(n, {0: 2.5, 1: -1.0, -1: -1.0})
    _, t_banded = _timed(lambda: banded.matmat(block), repeats=3)
    return {
        "dimension": n,
        "batch": batch,
        "csr_matmat_seconds": t_fast,
        "csr_loop_seconds": t_slow,
        "csr_matmat_speedup": t_slow / max(t_fast, 1e-12),
        "banded_matmat_seconds": t_banded,
    }


def _scaling_point(name: str, *, backend: str, **params) -> dict:
    """One rung of the scaling ladder: engine end-to-end, RSS-budgeted.

    Builds the scenario (workload assembly + classical reference solutions),
    runs it through :class:`ScenarioRunner` under ``tracemalloc``, and
    checks the peak traced allocation against the ``O(nnz)`` budget plus the
    dense-assembly refusal at the same size.
    """
    build, t_build = _timed(lambda: build_scenario(
        name, backend=backend, target_accuracy=_TARGET, **params))
    runner = ScenarioRunner(mode="serial")
    (report, peak), t_solve = _timed(
        lambda: _peak_bytes(lambda: runner.run(build.jobs)))
    assert all(result.ok and result.converged for result in report)
    operator = build.jobs[0].matrix
    dimension = operator.shape[0]
    rss_budget = _RSS_FACTOR * max(operator.nnz_bytes(), 8 * dimension)
    try:
        build_scenario(name, assembly="dense", **params)
        refused = False
    except ValueError:
        refused = True
    point = {
        "dimension": dimension,
        "backend": backend,
        "kappa": float(build.jobs[0].kappa),
        "build_seconds": t_build,
        "solve_seconds": t_solve,
        "nnz_bytes": operator.nnz_bytes(),
        "dense_bytes_would_be": dimension * dimension * 8,
        "peak_rss_proxy": peak,
        "rss_over_nnz": peak / max(operator.nnz_bytes(), 1),
        "dense_path_refuses": refused,
    }
    assert peak <= rss_budget, point
    assert refused, point
    return point


def _scaling_curve(smoke: bool) -> dict:
    """poisson-2d and graph-laplacian ladders up to ``N = 2²⁰``.

    The graph-laplacian rungs run the ideal backend's matrix-free QSVT
    polynomial genuinely at every size (ridge γ = 1 keeps κ = 5, so the
    Chebyshev degree is flat across the ladder); poisson-2d keeps the
    exact-inverse surrogate since its κ ≈ N drives the degree — not the
    memory — beyond reach, exactly the paper's κ-scaling point.
    """
    grids = [_SMOKE_GRID] if smoke else _SCALING_GRIDS
    nodes = [_SMOKE_NODES] if smoke else _SCALING_NODES
    return {
        "poisson-2d": [
            _scaling_point("poisson-2d", backend="exact", grid_points=grid)
            for grid in grids],
        "graph-laplacian": [
            _scaling_point("graph-laplacian", backend="ideal",
                           topology="cycle", num_nodes=n, regularization=1.0)
            for n in nodes],
    }


def run_benchmark(smoke: bool) -> dict:
    # the assembly/memory acceptance numbers are pinned at N = 4096 even in
    # smoke mode (the dense assembly costs ~0.6 s); the refinement timing —
    # whose dense side costs ~28 s at N = 4096 — shrinks to grid 48
    # (N = 2304) under --smoke, where the ≥10x floors still hold by decades.
    assembly = _assembly_comparison(_GRID)
    assembly.pop("_structured")
    assembly.pop("_dense")
    grid = 48 if smoke else _GRID
    structured = _assemble_laplacian(grid, 2, scale=float((grid + 1) ** 2),
                                     assembly="structured", family="bench")
    dense = _assemble_laplacian(grid, 2, scale=float((grid + 1) ** 2),
                                assembly="dense", family="bench")
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal(grid * grid)
    refinement = _refinement_throughput(structured, dense, rhs)
    refinement["dimension"] = grid * grid
    kernels = _kernel_throughput()
    agreement = _agreement(6 if smoke else 10)
    big = _beyond_the_wall(_BIG_GRID)
    scaling = _scaling_curve(smoke)

    results = {
        "assembly": assembly,
        "refinement": refinement,
        "kernels": kernels,
        "agreement": agreement,
        "beyond_wall": big,
        "scaling": scaling,
    }

    rows = [
        {"metric": "assembly speedup (N=4096)",
         "value": f"{assembly['assembly_speedup']:.1f}x"},
        {"metric": "memory reduction (N=4096)",
         "value": f"{assembly['memory_reduction']:.0f}x"},
        {"metric": f"refinement solve speedup (N={refinement['dimension']})",
         "value": f"{refinement['solve_speedup']:.1f}x"},
        {"metric": "peak-RSS proxy reduction",
         "value": f"{refinement['peak_memory_reduction']:.0f}x"},
        {"metric": "structured vs dense agreement",
         "value": f"{agreement['max_solution_diff']:.2e}"},
        {"metric": f"poisson-2d N={big['dimension']} wall time",
         "value": f"{big['solve_seconds']:.2f}s"},
        {"metric": "dense path at that size",
         "value": "refuses" if big["dense_path_refuses"] else "allowed"},
        {"metric": f"CSR matmat speedup (N={kernels['dimension']}, "
                   f"B={kernels['batch']})",
         "value": f"{kernels['csr_matmat_speedup']:.1f}x"},
    ]
    top_poisson = scaling["poisson-2d"][-1]
    top_graph = scaling["graph-laplacian"][-1]
    rows.append({
        "metric": f"poisson-2d N={top_poisson['dimension']} "
                  "(exact surrogate) RSS/nnz",
        "value": f"{top_poisson['solve_seconds']:.2f}s / "
                 f"{top_poisson['rss_over_nnz']:.1f}x"})
    rows.append({
        "metric": f"graph-laplacian N={top_graph['dimension']} "
                  "(matrix-free QSVT) RSS/nnz",
        "value": f"{top_graph['solve_seconds']:.2f}s / "
                 f"{top_graph['rss_over_nnz']:.1f}x"})
    emit("sparse", format_table(rows, columns=["metric", "value"],
                                title="Structured-operator fast path"))

    # ---- acceptance assertions (the CI smoke gate) -------------------- #
    assert assembly["assembly_speedup"] >= _MIN_ASSEMBLY_SPEEDUP, assembly
    assert assembly["memory_reduction"] >= _MIN_MEMORY_REDUCTION, assembly
    assert refinement["peak_memory_reduction"] >= _MIN_MEMORY_REDUCTION, refinement
    assert kernels["csr_matmat_speedup"] >= _MIN_MATMAT_SPEEDUP, kernels
    assert agreement["max_solution_diff"] <= _AGREEMENT_ATOL, agreement
    assert big["dimension"] >= 32768 and big["dense_path_refuses"], big
    # every scaling rung already asserted O(nnz) RSS + dense refusal; the
    # full ladder must reach a million rows
    if not smoke:
        assert top_poisson["dimension"] >= 10**6, top_poisson
        assert top_graph["dimension"] >= 10**6, top_graph
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI (acceptance floors still "
                             "asserted at N = 4096 and N = 33124)")
    args = parser.parse_args(argv)
    results = run_benchmark(smoke=args.smoke)
    if not args.smoke or not _JSON_PATH.exists():
        _JSON_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                              + "\n", encoding="utf-8")
        print(f"wrote {_JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
