"""Table I — quantum cost of QSVT-only versus QSVT + iterative refinement.

Regenerates both columns of Table I (number of solves, block-encoding calls
per solve, measurement samples per solve, and their product) for a grid of
``(κ, ε, ε_l)`` triples, using the *concrete* degree of the Eq. (4) polynomial
rather than only the asymptotic expressions.  The expected shape: the
refinement column wins by orders of magnitude whenever ``ε ≪ ε_l``, and the
two columns coincide at ``ε = ε_l``.
"""

import pytest

from repro.core import quantum_cost_table
from repro.reporting import format_table

from .common import emit

_GRID = [
    # (kappa, epsilon, epsilon_l)
    (2.0, 1e-6, 2.5e-1),
    (2.0, 1e-10, 2.5e-1),
    (10.0, 1e-8, 1e-2),
    (10.0, 1e-12, 1e-2),
    (100.0, 1e-8, 1e-3),
    (100.0, 1e-12, 1e-3),
    (1000.0, 1e-10, 1e-4),
]


def _build_table():
    rows = []
    for kappa, epsilon, epsilon_l in _GRID:
        direct, refined = quantum_cost_table(kappa, epsilon, epsilon_l)
        for breakdown in (direct, refined):
            row = {"kappa": kappa, "epsilon": epsilon, "epsilon_l": epsilon_l}
            row.update(breakdown.as_row())
            row["advantage"] = direct.total / refined.total
            rows.append(row)
    return rows


def test_table1_quantum_cost(benchmark):
    rows = benchmark(_build_table)
    text = format_table(
        rows,
        columns=["kappa", "epsilon", "epsilon_l", "method", "# solves",
                 "BE calls / solve", "# samples / solve", "total", "advantage"],
        title="Table I — quantum cost: QSVT only vs QSVT + iterative refinement")
    emit("table1_quantum_cost", text)
    # sanity of the reproduced shape: refinement always wins when eps << eps_l
    for i in range(0, len(rows), 2):
        direct, refined = rows[i], rows[i + 1]
        if direct["epsilon"] < direct["epsilon_l"] / 10:
            assert refined["total"] < direct["total"]
