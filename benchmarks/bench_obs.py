"""Observability overhead — the Zipf serving workload at three sample rates.

Quantifies what the :mod:`repro.obs` layer costs on the hot path by running
the same closed-loop Zipf workload as ``bench_serving_cluster.py`` against
three otherwise-identical clusters:

* ``rate 0.0`` — tracing off.  :meth:`Tracer.start` returns ``None`` so the
  request path skips every trace touch; this is the zero-overhead contract,
  and in full mode its throughput/p50 are gated within 5% of the recorded
  ``BENCH_serving_cluster.json`` baseline (which ran without the knob at
  all).
* ``rate 0.1`` — production-style sampling.  Every request carries a
  trace_id, the deterministic :func:`trace_is_sampled` fraction records
  spans.
* ``rate 1.0`` — everything traced.  Every settled request must land in the
  ring with a complete span tree (route, admit, queue-wait, coalesce,
  sweep); the relative overhead vs rate 0 is recorded.

The metrics registry is on throughout (its cost rides along in every
phase): each run also cross-checks the merged cluster snapshot — the
``repro_cluster_requests_total`` completed-series must equal the request
count —
and that the Prometheus rendering carries the merged latency summary.

Results go to ``benchmarks/results/obs.txt`` (human-readable) and
``BENCH_obs.json`` at the repository root (machine-readable).  Run
directly for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke

which exits non-zero when any acceptance criterion regresses.
"""

import argparse
import json
import pathlib
import sys

from repro.serving import ClusterEngine
from repro.reporting import format_table

try:
    from .common import emit
    from .bench_serving_cluster import (
        _EQUALITY_TOL,
        _build_pool,
        _measure_zipf,
        _references,
    )
except ImportError:     # script mode: python benchmarks/bench_obs.py
    from common import emit
    from bench_serving_cluster import (
        _EQUALITY_TOL,
        _build_pool,
        _measure_zipf,
        _references,
    )

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_JSON_PATH = _ROOT / "BENCH_obs.json"
_BASELINE_PATH = _ROOT / "BENCH_serving_cluster.json"

#: the three sample rates the acceptance criteria name.
_SAMPLE_RATES = (0.0, 0.1, 1.0)
#: spans every fully-traced request must carry (refinement/store spans are
#: conditional; these five are structural).
_REQUIRED_SPANS = frozenset(
    {"route", "admit", "queue_wait", "coalesce", "sweep"})
#: rate-0 throughput may regress at most this much vs the recorded
#: serving-cluster baseline (full mode only; cross-machine JSONs are skipped).
_MAX_DISABLED_REGRESSION = 0.05
#: at rate 0.1, the sampled fraction must land in this band (full mode; the
#: trace ids are uuid4 draws, so this is ~8 sigma of Binomial(400, 0.1)).
_PARTIAL_BAND = (0.03, 0.25)


def _counter_sum(merged: dict, name: str, **labels) -> float:
    """Sum one counter family's series matching ``labels`` (subset match)."""
    family = merged.get(name)
    if not family:
        return 0.0
    want = set((str(k), str(v)) for k, v in labels.items())
    return float(sum(value for key, value in family["series"].items()
                     if want <= set(key)))


def _measure_rate(rate: float, pool, references, *, num_requests: int,
                  clients: int, num_workers: int) -> dict:
    with ClusterEngine(num_workers=num_workers, queue_limit=256,
                       trace_sample_rate=rate,
                       event_log_path=False) as cluster:
        zipf = _measure_zipf(cluster, pool, references,
                             num_requests=num_requests, clients=clients)
        tracer = cluster.observability.tracer
        trace_stats = tracer.stats()

        # span-tree completeness over everything the ring holds: at rate 1.0
        # that is every settled request (capacity outlives the run).
        incomplete = 0
        for trace_id in tracer.buffer.trace_ids():
            record = tracer.buffer.get(trace_id)
            names = set(span["name"] for span in record["spans"])
            if not _REQUIRED_SPANS <= names:
                incomplete += 1

        merged = cluster.metrics_snapshot()
        prometheus = cluster.prometheus_metrics()
    return {
        "sample_rate": rate,
        "num_requests": num_requests,
        "clients": clients,
        "throughput_rps": zipf["throughput_rps"],
        "p50_s": zipf["p50_s"],
        "p99_s": zipf["p99_s"],
        "max_deviation": zipf["max_deviation"],
        "traced": trace_stats["finished"],
        "stored": trace_stats["stored"],
        "evicted": trace_stats["evicted"],
        "sampled_fraction": trace_stats["finished"] / num_requests,
        "incomplete_traces": incomplete,
        "metrics_completed_requests": _counter_sum(
            merged, "repro_cluster_requests_total", outcome="completed"),
        "metrics_families": len(merged),
        "prometheus_has_latency": "repro_cluster_latency_seconds" in prometheus,
    }


# ---------------------------------------------------------------------- #
def run_benchmark(*, smoke: bool = False) -> dict:
    if smoke:
        num_workers, num_requests, clients = 2, 40, 2
    else:
        # full mode mirrors the serving-cluster Zipf phase exactly, so the
        # rate-0 run is an apples-to-apples read of the recorded baseline.
        num_workers, num_requests, clients = 2, 400, 8

    pool = _build_pool(smoke)
    references = _references(pool)

    rates = [_measure_rate(rate, pool, references,
                           num_requests=num_requests, clients=clients,
                           num_workers=num_workers)
             for rate in _SAMPLE_RATES]

    disabled = rates[0]
    for entry in rates:
        entry["overhead_vs_disabled"] = (
            1.0 - entry["throughput_rps"] / disabled["throughput_rps"])

    baseline_rps = None
    disabled_regression = None
    if not smoke and _BASELINE_PATH.exists():
        baseline = json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))
        baseline_rps = float(baseline["zipf"]["throughput_rps"])
        disabled_regression = 1.0 - disabled["throughput_rps"] / baseline_rps

    summary = {
        "smoke": smoke,
        "num_workers": num_workers,
        "rates": rates,
        "baseline_rps": baseline_rps,
        "disabled_regression": disabled_regression,
    }

    text = format_table(
        [{"rate": entry["sample_rate"],
          "req/s": entry["throughput_rps"],
          "p50 [ms]": entry["p50_s"] * 1e3,
          "p99 [ms]": entry["p99_s"] * 1e3,
          "overhead": f"{entry['overhead_vs_disabled']:+.1%}",
          "traced": entry["traced"],
          "incomplete": entry["incomplete_traces"]}
         for entry in rates],
        title=(f"Tracing overhead on the Zipf serving workload "
               f"({num_requests} requests, {clients} clients, "
               f"{num_workers} workers; metrics registry on throughout)"))
    if baseline_rps is not None:
        text += (f"\n\nrate-0 vs BENCH_serving_cluster.json: "
                 f"{disabled_regression:+.1%} "
                 f"(baseline {baseline_rps:.1f} req/s)")
    if smoke:
        # threshold gate only; never overwrite the full-run artifacts
        emit("obs_smoke", text)
    else:
        _JSON_PATH.write_text(json.dumps(summary, indent=2, default=float)
                              + "\n", encoding="utf-8")
        emit("obs", text + f"\n\nwritten: {_JSON_PATH}")
    return summary


def _check(summary: dict) -> list[str]:
    """Acceptance criteria of the observability tentpole; empty = pass."""
    failures = []
    by_rate = {entry["sample_rate"]: entry for entry in summary["rates"]}
    for entry in summary["rates"]:
        if entry["max_deviation"] > _EQUALITY_TOL:
            failures.append(f"rate {entry['sample_rate']}: answers deviate "
                            f"by {entry['max_deviation']:.2e} — "
                            "instrumentation must not perturb results")
        if entry["metrics_completed_requests"] < entry["num_requests"]:
            failures.append(f"rate {entry['sample_rate']}: merged metrics "
                            f"count {entry['metrics_completed_requests']:.0f} "
                            f"completed requests of "
                            f"{entry['num_requests']} served")
        if not entry["prometheus_has_latency"]:
            failures.append(f"rate {entry['sample_rate']}: Prometheus "
                            "rendering lacks the cluster latency summary")
    disabled, full = by_rate[0.0], by_rate[1.0]
    if disabled["traced"] != 0:
        failures.append(f"rate 0.0 recorded {disabled['traced']} traces; "
                        "disabled tracing must touch nothing")
    if full["traced"] < full["num_requests"]:
        failures.append(f"rate 1.0 finished only {full['traced']} traces "
                        f"for {full['num_requests']} requests")
    if full["incomplete_traces"] > 0:
        failures.append(f"rate 1.0: {full['incomplete_traces']} trace(s) "
                        f"missing structural spans {sorted(_REQUIRED_SPANS)}")
    partial = by_rate[0.1]
    if partial["traced"] > partial["num_requests"]:
        failures.append(f"rate 0.1 recorded {partial['traced']} traces for "
                        f"{partial['num_requests']} requests")
    if not summary["smoke"]:
        low, high = _PARTIAL_BAND
        if not (low <= partial["sampled_fraction"] <= high):
            failures.append(f"rate 0.1 sampled "
                            f"{partial['sampled_fraction']:.1%} of requests "
                            f"(expected {low:.0%}..{high:.0%})")
        regression = summary["disabled_regression"]
        if regression is not None and regression > _MAX_DISABLED_REGRESSION:
            failures.append(f"disabled-tracing throughput regressed "
                            f"{regression:.1%} vs BENCH_serving_cluster.json "
                            f"(bound {_MAX_DISABLED_REGRESSION:.0%})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration (the CI regression gate)")
    args = parser.parse_args(argv)
    summary = run_benchmark(smoke=args.smoke)
    print("; ".join(
        f"rate {entry['sample_rate']}: {entry['throughput_rps']:.1f} req/s "
        f"({entry['overhead_vs_disabled']:+.1%}, {entry['traced']} traced)"
        for entry in summary["rates"]))
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
