"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper; the rendered
text is both printed (visible with ``pytest -s`` / in benchmark logs) and
written to ``benchmarks/results/<name>.txt`` so that EXPERIMENTS.md can point
at concrete artefacts.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> str:
    """Print ``text`` and persist it under ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====\n{text}\n")
    return str(path)
