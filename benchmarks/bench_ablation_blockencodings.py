"""Ablation A4 — block-encoding constructions.

The subnormalisation ``α`` of the block-encoding determines the effective
condition number ``α/σ_min`` seen by the inverse polynomial and therefore its
degree — i.e. the per-solve quantum cost.  This ablation compares the four
implemented constructions (dilation, Pauli-LCU, FABLE, banded/tridiagonal) on
a random matrix and on the Poisson matrix: subnormalisation, ancilla count,
encoding error, fault-tolerant resources of one call, and the polynomial
degree each construction would impose for a fixed ``ε_l``.
"""

import numpy as np
import pytest

from repro.applications import random_workload
from repro.blockencoding import (
    DilationBlockEncoding,
    FABLEBlockEncoding,
    LCUBlockEncoding,
    TridiagonalBlockEncoding,
    block_encoding_error,
)
from repro.linalg import poisson_1d_matrix
from repro.qsp import inverse_polynomial_degree
from repro.quantum import estimate_circuit_resources
from repro.reporting import format_table

from .common import emit

_EPSILON_L = 1e-2


def _study(matrix, name, encodings):
    sigma_min = float(np.linalg.svd(matrix, compute_uv=False).min())
    rows = []
    for encoding in encodings:
        kappa_eff = encoding.alpha / sigma_min
        resources = estimate_circuit_resources(encoding.circuit())
        rows.append({
            "matrix": name,
            "encoding": encoding.name,
            "ancillas": encoding.num_ancillas,
            "alpha": encoding.alpha,
            "effective kappa": kappa_eff,
            "polynomial degree": inverse_polynomial_degree(kappa_eff, _EPSILON_L / (2 * kappa_eff)),
            "encoding error": block_encoding_error(encoding),
            "T count / call": resources.t_count,
            "CNOTs / call": resources.cnot_count,
        })
    return rows


def _run():
    workload = random_workload(8, 5.0, rng=13)
    random_rows = _study(workload.matrix, "random-n8-k5", [
        DilationBlockEncoding(workload.matrix),
        LCUBlockEncoding(workload.matrix),
        FABLEBlockEncoding(workload.matrix),
    ])
    poisson = poisson_1d_matrix(16, scaled=False)
    poisson_rows = _study(poisson, "poisson-n16", [
        DilationBlockEncoding(poisson),
        LCUBlockEncoding(poisson),
        FABLEBlockEncoding(poisson),
        TridiagonalBlockEncoding(4),
    ])
    return random_rows + poisson_rows


def test_ablation_block_encodings(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title=(
        f"Ablation A4 — block-encoding constructions (epsilon_l = {_EPSILON_L:g})"))
    emit("ablation_blockencodings", text)
    # every construction must be a valid encoding of its matrix
    assert all(row["encoding error"] < 1e-8 for row in rows)
    # dilation has the smallest possible subnormalisation (= spectral norm),
    # hence the smallest polynomial degree, for each matrix
    for name in ("random-n8-k5", "poisson-n16"):
        group = [row for row in rows if row["matrix"] == name]
        dilation = next(row for row in group if row["encoding"] == "dilation")
        assert all(dilation["alpha"] <= row["alpha"] + 1e-9 for row in group)
        assert all(dilation["polynomial degree"] <= row["polynomial degree"] for row in group)
