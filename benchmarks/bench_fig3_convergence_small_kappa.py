"""Figure 3 — scaled residual per refinement iteration, κ = 10, ε = 1e-11.

Reproduces the paper's small-condition-number experiment with the *faithful
circuit-level pipeline*: tree state preparation, dilation block-encoding of
``A†``, Eq.-(4) inverse polynomial, symmetric-QSP phase factors, alternating
phase modulation, ancilla post-selection, classical de-normalisation and
mixed-precision refinement.  Three values of ``ε_l`` are run; for each one the
scaled residual history is reported next to the ``(ε_l κ)^{i+1}`` envelope of
Theorem III.1 and the iteration bound ``⌈log ε / log(ε_l κ)⌉``.

Expected shape (as in the paper): geometric contraction of the residual at
rate ≈ ``ε_l κ`` per iteration, convergence below ``ε = 1e-11`` within the
Theorem III.1 bound, fewer iterations for smaller ``ε_l``.
"""

import numpy as np
import pytest

from repro.applications import random_workload
from repro.core import MixedPrecisionRefinement, QSVTLinearSolver
from repro.reporting import format_convergence_history, format_table

from .common import emit

_KAPPA = 10.0
_TARGET = 1e-11
_EPSILON_L_VALUES = (5e-2, 1e-2, 1e-3)


def _run_all():
    workload = random_workload(16, _KAPPA, rng=2025)
    runs = []
    for epsilon_l in _EPSILON_L_VALUES:
        solver = QSVTLinearSolver(workload.matrix, epsilon_l=epsilon_l, backend="circuit")
        driver = MixedPrecisionRefinement(solver, target_accuracy=_TARGET)
        result = driver.solve(workload.rhs, x_true=workload.solution)
        runs.append((epsilon_l, solver, result))
    return workload, runs


def test_fig3_scaled_residual_small_kappa(benchmark):
    workload, runs = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    sections = [f"Figure 3 — scaled residual until convergence, kappa = {_KAPPA:g}, "
                f"target epsilon = {_TARGET:g} (N = 16 random system, circuit-level QSVT)"]
    summary_rows = []
    for epsilon_l, solver, result in runs:
        info = solver.describe()
        sections.append("")
        sections.append(
            f"epsilon_l = {epsilon_l:g} (achieved {info['achieved_epsilon_l']:.2e}, "
            f"polynomial degree {info['polynomial_degree']}, "
            f"iteration bound {result.iteration_bound:g})")
        sections.append(format_convergence_history(result.scaled_residuals,
                                                   bound=result.predicted_residuals))
        summary_rows.append({
            "epsilon_l": epsilon_l,
            "achieved epsilon_l": info["achieved_epsilon_l"],
            "degree": info["polynomial_degree"],
            "iterations": result.iterations,
            "Thm III.1 bound": result.iteration_bound,
            "final omega": result.scaled_residuals[-1],
            "final forward error": result.forward_errors[-1],
            "BE calls": result.total_block_encoding_calls,
        })
    sections.append("")
    sections.append(format_table(summary_rows, title="summary"))
    emit("fig3_convergence_small_kappa", "\n".join(sections))

    for epsilon_l, _, result in runs:
        assert result.converged
        assert result.scaled_residuals[-1] <= _TARGET
        assert result.iterations <= result.iteration_bound
        # geometric contraction: every iteration reduces the residual
        assert np.all(np.diff(result.scaled_residuals) < 0)
    # fewer refinement iterations for the more accurate inner solver
    iterations = [result.iterations for _, _, result in runs]
    assert iterations[-1] <= iterations[0]
