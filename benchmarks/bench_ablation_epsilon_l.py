"""Ablation A1 — choice of the inner accuracy ε_l.

Sec. III-C of the paper discusses the trade-off behind ``ε_l``: a looser inner
accuracy makes every QSVT solve cheaper (lower polynomial degree, fewer
samples) but increases the number of refinement iterations.  This ablation
sweeps ``ε_l`` for several condition numbers and reports the measured
iteration count, the per-solve degree and the resulting total cost (circuit
calls × samples), locating the sweet spot the paper's ``ε_l ≈ 1/κ`` heuristic
aims at.
"""

import pytest

from repro.applications import random_workload
from repro.core import MixedPrecisionRefinement, QSVTLinearSolver, samples_for_accuracy
from repro.reporting import format_table

from .common import emit

_TARGET = 1e-10
_SWEEP = {
    2.0: (0.4, 0.25, 0.1, 1e-2, 1e-3),
    10.0: (5e-2, 1e-2, 1e-3, 1e-4),
    50.0: (1e-2, 1e-3, 1e-4, 1e-5),
}


def _run():
    rows = []
    for kappa, epsilon_ls in _SWEEP.items():
        workload = random_workload(16, kappa, rng=int(kappa) + 1)
        for epsilon_l in epsilon_ls:
            solver = QSVTLinearSolver(workload.matrix, epsilon_l=epsilon_l, backend="ideal")
            result = MixedPrecisionRefinement(solver, target_accuracy=_TARGET).solve(
                workload.rhs)
            degree = solver.describe()["polynomial_degree"]
            total = result.total_block_encoding_calls * samples_for_accuracy(epsilon_l)
            rows.append({
                "kappa": kappa,
                "epsilon_l": epsilon_l,
                "degree": degree,
                "iterations": result.iterations,
                "converged": result.converged,
                "circuit BE calls": result.total_block_encoding_calls,
                "total calls (with samples)": total,
            })
    return rows


def test_ablation_epsilon_l_choice(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title=(
        f"Ablation A1 — effect of the inner accuracy epsilon_l (target {_TARGET:g})"))
    emit("ablation_epsilon_l", text)
    # all convergent configurations must converge (epsilon_l * kappa < 1 here)
    assert all(row["converged"] for row in rows)
    # within each kappa, a tighter epsilon_l never increases the iteration count
    for kappa in _SWEEP:
        iterations = [row["iterations"] for row in rows if row["kappa"] == kappa]
        assert all(b <= a for a, b in zip(iterations, iterations[1:]))
