"""Table II — complexity breakdown for the 1-D Poisson use case.

Regenerates the classical/quantum complexity rows of Table II (first solve and
per-iteration phases) and complements them with a concrete fault-tolerant
T-gate estimate obtained from the gate-level pieces (adder-based tridiagonal
block-encoding, projector phases, decomposed tree state preparation).
"""

import pytest

from repro.core import poisson_complexity_table, poisson_tgate_estimate
from repro.reporting import format_table

from .common import emit


def _build_tables():
    asymptotic = poisson_complexity_table(4, epsilon=1e-10, epsilon_l=1e-2)
    concrete = [poisson_tgate_estimate(n, epsilon_l=1e-2, num_solves=4)
                for n in range(2, 7)]
    return asymptotic, concrete


def test_table2_poisson_complexity(benchmark):
    asymptotic, concrete = benchmark(_build_tables)
    text = format_table(
        asymptotic,
        columns=["task", "phase", "classical_formula", "classical_estimate",
                 "quantum_formula", "quantum_estimate"],
        title="Table II — complexity of the Poisson solve (n = 4 data qubits, "
              "epsilon = 1e-10, epsilon_l = 1e-2)")
    text += "\n\n" + format_table(
        concrete,
        columns=["num_qubits", "kappa", "polynomial_degree", "t_count_block_encoding",
                 "t_count_state_preparation", "t_count_per_solve", "t_count_total"],
        title="Concrete T-gate estimates (4 solves, epsilon_l = 1e-2)")
    emit("table2_poisson_complexity", text)
    # expected shape: the per-solve quantum cost grows with the register size
    per_solve = [row["t_count_per_solve"] for row in concrete]
    assert all(b > a for a, b in zip(per_solve, per_solve[1:]))
