"""Replication benchmark — what R=2 ownership buys, and what it costs.

Three phases over the same Zipf workload pool, measuring the replicated
serving tier (:mod:`repro.serving`) against its single-owner baseline:

* **Healthy cost** — identical closed-loop Zipf runs at ``R=1`` and
  ``R=2``.  Replication is not free: every first-touch synthesis is warmed
  onto the next replica (one advisory ``warm`` message per fingerprint per
  incarnation) and every submit walks the ring for ``R`` owners instead of
  one.  The gate bounds that cost: R=2 throughput must stay within 10% of
  R=1 on the fault-free path (full mode; smoke boxes are too noisy to hold
  a throughput ratio).
* **Slow-fault p99** — one worker is chaos-scripted to stall every request
  (an async ``slow_seconds`` sleep, the classic gray failure: alive,
  heartbeating, slow).  At ``R=1`` the stall is unavoidable — affected
  requests pay the full sleep, and p99 shows it.  At ``R=2`` with a
  ``hedge_after`` deadline the front end speculatively doubles the request
  onto the warm replica and takes the first answer: p99 collapses to about
  the hedge deadline.  The gate requires R=2 p99 to be at least 2x better.
* **Replicated kill** — a scripted SIGTERM of the hottest system's primary
  mid-traffic at ``R=2``.  In-flight work on the dead owner either has a
  live hedge already (promoted: zero extra dispatch) or is redispatched to
  its warm replica.  The gates are absolute: zero post-retry failures and
  zero degraded fallbacks — replication means a single death is invisible.

Results go to ``benchmarks/results/replication.txt`` (human-readable) and
``BENCH_replication.json`` at the repository root (machine-readable).  Run
directly for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_replication.py --smoke

which exits non-zero when any acceptance criterion regresses.
"""

import argparse
import json
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

from repro.serving import ChaosSpec, ClusterEngine, RetryPolicy

try:
    from .common import emit
    from .bench_serving_cluster import (
        _EPSILON_L,
        _ZIPF_S,
        _build_pool,
        _measure_zipf,
        _references,
        _zipf_weights,
    )
except ImportError:     # script mode: python benchmarks/bench_replication.py
    from common import emit
    from bench_serving_cluster import (
        _EPSILON_L,
        _ZIPF_S,
        _build_pool,
        _measure_zipf,
        _references,
        _zipf_weights,
    )

from repro.reporting import format_table

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_JSON_PATH = _ROOT / "BENCH_replication.json"

#: non-degraded answers must match single-process ground truth to this.
_PARITY_TOL = 1e-10
#: R=2 may cost at most this fraction of R=1 healthy-path throughput.
_MAX_HEALTHY_COST = 0.10
#: R=2 p99 under the slow fault must be at least this factor better.
_MIN_P99_RATIO = 2.0
#: the gray-failure script: every request on the victim stalls this long.
_SLOW_SECONDS = 0.4
#: hedge deadline used in the replicated (R=2) fault runs.
_HEDGE_AFTER = 0.05
#: progress fraction at which the kill-phase SIGTERM fires.
_KILL_FRACTION = 0.4


# ---------------------------------------------------------------------- #
# kill phase: retrying closed-loop clients + one scripted kill
# ---------------------------------------------------------------------- #
def _measure_kill(cluster: ClusterEngine, pool: list[dict],
                  references: list[np.ndarray], *, num_requests: int,
                  clients: int, rng_seed: int = 7) -> dict:
    weights = _zipf_weights(len(pool))
    draws = np.random.default_rng(rng_seed).choice(len(pool),
                                                   size=num_requests,
                                                   p=weights)
    partitions = np.array_split(draws, clients)
    settled = {"n": 0}
    count_lock = threading.Lock()
    successes = [0] * clients
    degraded = [0] * clients
    deviations = [0.0] * clients
    failures: list[str] = []
    kill = {"victim": None, "recovered_s": None}

    def killer() -> None:
        threshold = int(_KILL_FRACTION * num_requests)
        while settled["n"] < threshold:
            time.sleep(0.005)
        victim = cluster.route(pool[0]["matrix"])
        prior = cluster.stats(include_workers=False)["restarts"].get(victim, 0)
        killed_at = time.monotonic()
        cluster._workers[victim]["process"].terminate()
        kill["victim"] = victim
        deadline = killed_at + 15.0
        while time.monotonic() < deadline:
            stats = cluster.stats(include_workers=False)
            if stats["restarts"].get(victim, 0) > prior:
                kill["recovered_s"] = time.monotonic() - killed_at
                return
            time.sleep(0.01)

    def client(index: int, indices) -> None:
        policy = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.5,
                             rng=500 + index)
        for pool_index in indices:
            entry = pool[pool_index]
            try:
                record = policy.execute(
                    cluster.solve, entry["matrix"], entry["rhs"],
                    epsilon_l=_EPSILON_L, backend="ideal",
                    kappa=entry["kappa"])
            except BaseException as exc:  # noqa: BLE001 - typed, counted
                failures.append(type(exc).__name__)
            else:
                successes[index] += 1
                if record.degraded:
                    degraded[index] += 1
                else:
                    deviations[index] = max(deviations[index], float(
                        np.max(np.abs(record.x - references[pool_index]))))
            finally:
                with count_lock:
                    settled["n"] += 1

    killer_thread = threading.Thread(target=killer, name="replication-killer",
                                     daemon=True)
    threads = [threading.Thread(target=client, args=(i, partition))
               for i, partition in enumerate(partitions)]
    start = time.perf_counter()
    killer_thread.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_time = time.perf_counter() - start
    killer_thread.join(timeout=20.0)

    stats = cluster.stats(include_workers=False)
    return {
        "num_requests": num_requests,
        "clients": clients,
        "kill_fraction": _KILL_FRACTION,
        "victim": kill["victim"],
        "recovered_s": kill["recovered_s"],
        "wall_time_s": wall_time,
        "successes": sum(successes),
        "failures": len(failures),
        "failure_types": sorted(set(failures)),
        "degraded": sum(degraded),
        "max_deviation": max(deviations),
        "inflight_after_drain": stats["inflight"],
        "worker_deaths": stats["worker_deaths"],
        "failovers": stats["failovers"],
        "hedged": stats["hedged"],
        "hedge_wins": stats["hedge_wins"],
        "redispatched": stats["redispatched"],
    }


# ---------------------------------------------------------------------- #
def run_benchmark(*, smoke: bool = False) -> dict:
    if smoke:
        num_workers, zipf_requests, slow_requests, kill_requests, clients = \
            2, 40, 40, 30, 4
    else:
        num_workers, zipf_requests, slow_requests, kill_requests, clients = \
            2, 300, 120, 120, 8

    pool = _build_pool(smoke)
    references = _references(pool)
    # every request on worker-0 stalls: the deterministic gray failure.
    slow_chaos = ChaosSpec(slow_rate=1.0, slow_seconds=_SLOW_SECONDS,
                           workers=("worker-0",))

    with tempfile.TemporaryDirectory(prefix="repro-replication-") as tmp:
        def stores(name: str) -> dict:
            # each phase gets a fresh store hierarchy: later phases must
            # not look fast because an earlier engine populated the disk.
            return dict(local_store_dir=f"{tmp}/{name}/local",
                        shared_store_dir=f"{tmp}/{name}/shared")

        # -- healthy cost: R=1 vs R=2 on the fault-free path ------------ #
        with ClusterEngine(num_workers=num_workers, queue_limit=256,
                           replication_factor=1, hedging=False,
                           **stores("healthy-r1")) as cluster:
            healthy_r1 = _measure_zipf(cluster, pool, references,
                                       num_requests=zipf_requests,
                                       clients=clients)
        with ClusterEngine(num_workers=num_workers, queue_limit=256,
                           replication_factor=2,
                           **stores("healthy-r2")) as cluster:
            healthy_r2 = _measure_zipf(cluster, pool, references,
                                       num_requests=zipf_requests,
                                       clients=clients)
            healthy_r2["warmed"] = sum(
                w.get("warmed", 0) for w in cluster.worker_stats().values())
        healthy_cost = 1.0 - (healthy_r2["throughput_rps"]
                              / healthy_r1["throughput_rps"])

        # -- slow fault: p99 with and without a hedging replica --------- #
        with ClusterEngine(num_workers=num_workers, queue_limit=256,
                           replication_factor=1, hedging=False,
                           chaos=slow_chaos,
                           **stores("slow-r1")) as cluster:
            slow_r1 = _measure_zipf(cluster, pool, references,
                                    num_requests=slow_requests,
                                    clients=clients, rng_seed=3)
        with ClusterEngine(num_workers=num_workers, queue_limit=256,
                           replication_factor=2, hedge_after=_HEDGE_AFTER,
                           chaos=slow_chaos,
                           **stores("slow-r2")) as cluster:
            slow_r2 = _measure_zipf(cluster, pool, references,
                                    num_requests=slow_requests,
                                    clients=clients, rng_seed=3)
            slow_r2_stats = cluster.stats(include_workers=False)
            slow_r2["hedged"] = slow_r2_stats["hedged"]
            slow_r2["hedge_wins"] = slow_r2_stats["hedge_wins"]
        p99_ratio = slow_r1["p99_s"] / max(slow_r2["p99_s"], 1e-9)

        # -- replicated kill: one scripted death must be invisible ------ #
        with ClusterEngine(num_workers=num_workers, queue_limit=256,
                           replication_factor=2, hedge_after=0.2,
                           supervisor_interval=0.05,
                           **stores("kill")) as cluster:
            # warm caches and stores so failover correctness is exercised
            # against warm replicas (the production steady state).
            for entry in pool:
                cluster.solve(entry["matrix"], entry["rhs"],
                              epsilon_l=_EPSILON_L, backend="ideal",
                              kappa=entry["kappa"])
            kill = _measure_kill(cluster, pool, references,
                                 num_requests=kill_requests, clients=clients)

    summary = {
        "smoke": smoke,
        "epsilon_l": _EPSILON_L,
        "zipf_s": _ZIPF_S,
        "num_workers": num_workers,
        "healthy": {"r1": healthy_r1, "r2": healthy_r2,
                    "cost": healthy_cost},
        "slow_fault": {"slow_seconds": _SLOW_SECONDS,
                       "hedge_after": _HEDGE_AFTER,
                       "victim": "worker-0",
                       "r1": slow_r1, "r2": slow_r2,
                       "p99_ratio": p99_ratio},
        "kill": kill,
    }

    text = "\n\n".join([
        format_table(
            [{"R": 1, "req/s": healthy_r1["throughput_rps"],
              "p50 [s]": healthy_r1["p50_s"], "p99 [s]": healthy_r1["p99_s"]},
             {"R": 2, "req/s": healthy_r2["throughput_rps"],
              "p50 [s]": healthy_r2["p50_s"], "p99 [s]": healthy_r2["p99_s"]}],
            title=f"Healthy path ({zipf_requests} requests, Zipf s={_ZIPF_S}; "
                  f"R=2 cost {healthy_cost:+.1%})"),
        format_table(
            [{"R": 1, "hedge": "off", "p99 [s]": slow_r1["p99_s"],
              "p50 [s]": slow_r1["p50_s"]},
             {"R": 2, "hedge": f"{_HEDGE_AFTER}s", "p99 [s]": slow_r2["p99_s"],
              "p50 [s]": slow_r2["p50_s"]}],
            title=f"Gray failure (worker-0 stalls {_SLOW_SECONDS}s/request; "
                  f"p99 ratio {p99_ratio:.1f}x, "
                  f"{slow_r2['hedged']} hedges, "
                  f"{slow_r2['hedge_wins']} wins)"),
        format_table(
            [{"requests": kill["num_requests"],
              "victim": kill["victim"],
              "failures": kill["failures"],
              "degraded": kill["degraded"],
              "failovers": kill["failovers"],
              "hedge wins": kill["hedge_wins"],
              "recovered [s]": kill["recovered_s"],
              "max dev": kill["max_deviation"]}],
            title="Replicated kill (R=2, primary of the hottest system "
                  f"SIGTERMed at {_KILL_FRACTION:.0%} progress)"),
    ])
    if smoke:
        # threshold gate only; never overwrite the full-run artifacts
        emit("replication_smoke", text)
    else:
        _JSON_PATH.write_text(json.dumps(summary, indent=2, default=float)
                              + "\n", encoding="utf-8")
        emit("replication", text + f"\n\nwritten: {_JSON_PATH}")
    return summary


def _check(summary: dict) -> list[str]:
    """Acceptance criteria of the replication tentpole; empty = pass."""
    failures = []
    healthy = summary["healthy"]
    slow = summary["slow_fault"]
    kill = summary["kill"]
    if not summary["smoke"] and healthy["cost"] > _MAX_HEALTHY_COST:
        failures.append(f"R=2 costs {healthy['cost']:.1%} of healthy-path "
                        f"throughput (bound {_MAX_HEALTHY_COST:.0%})")
    if slow["p99_ratio"] < _MIN_P99_RATIO:
        failures.append(f"R=2 p99 under the slow fault is only "
                        f"{slow['p99_ratio']:.2f}x better than R=1 "
                        f"(bound {_MIN_P99_RATIO:.1f}x)")
    if slow["r2"]["hedged"] < 1 or slow["r2"]["hedge_wins"] < 1:
        failures.append("no hedge fired/won during the slow-fault phase — "
                        "the p99 ratio is not evidence of hedging")
    if kill["failures"] != 0:
        failures.append(f"{kill['failures']} request(s) failed after retries "
                        f"in the replicated kill phase "
                        f"({kill['failure_types']})")
    if kill["degraded"] != 0:
        failures.append(f"{kill['degraded']} degraded fallback(s) in the "
                        "replicated kill phase — a replica should have "
                        "answered")
    if kill["worker_deaths"] != 1:
        failures.append(f"{kill['worker_deaths']} worker deaths for 1 "
                        "scripted kill")
    if kill["inflight_after_drain"] != 0:
        failures.append(f"{kill['inflight_after_drain']} request(s) still in "
                        "flight after the kill-phase clients drained")
    if kill["recovered_s"] is None:
        failures.append("the killed primary never respawned")
    for phase_name, phase in (("healthy R=1", healthy["r1"]),
                              ("healthy R=2", healthy["r2"]),
                              ("slow R=1", slow["r1"]),
                              ("slow R=2", slow["r2"]),
                              ("kill", kill)):
        if phase["max_deviation"] > _PARITY_TOL:
            failures.append(f"{phase_name} answers deviate by "
                            f"{phase['max_deviation']:.2e} "
                            f"(tolerance {_PARITY_TOL:.0e})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration (the CI regression gate)")
    args = parser.parse_args(argv)
    summary = run_benchmark(smoke=args.smoke)
    healthy = summary["healthy"]
    slow = summary["slow_fault"]
    kill = summary["kill"]
    print(f"healthy: R=1 {healthy['r1']['throughput_rps']:.1f} req/s vs "
          f"R=2 {healthy['r2']['throughput_rps']:.1f} req/s "
          f"(cost {healthy['cost']:+.1%}); slow fault: p99 "
          f"{slow['r1']['p99_s']*1e3:.0f}ms -> {slow['r2']['p99_s']*1e3:.0f}ms "
          f"({slow['p99_ratio']:.1f}x, {slow['r2']['hedged']} hedges); kill: "
          f"{kill['failures']} failures, {kill['degraded']} degraded, "
          f"{kill['failovers']} failovers")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
