"""Ablation A5 — measurement samples vs reachable accuracy.

Table I charges ``O(1/ε²)`` measurement samples per solve.  This ablation
measures the empirical counterpart: the accuracy actually reached by a single
QSVT solve when its read-out uses a finite number of samples (Gaussian
amplitude-estimation model and multinomial model), confirming the ``1/√shots``
error floor and therefore the quadratic sample cost.
"""

import numpy as np
import pytest

from repro.applications import random_workload
from repro.core import QSVTLinearSolver, SamplingModel
from repro.reporting import format_table

from .common import emit

_SHOTS = (10**2, 10**3, 10**4, 10**5, 10**6)


def _run():
    workload = random_workload(16, 5.0, rng=21)
    rows = []
    for mode in ("gaussian", "multinomial"):
        for shots in _SHOTS:
            sampling = SamplingModel(mode=mode, shots=shots, rng=3)
            solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-6, backend="ideal",
                                      sampling=sampling)
            errors = []
            for trial in range(5):
                record = solver.solve(workload.rhs)
                errors.append(np.linalg.norm(record.x - workload.solution)
                              / np.linalg.norm(workload.solution))
            rows.append({"read-out": mode, "shots": shots,
                         "median relative error": float(np.median(errors)),
                         "1/sqrt(shots)": 1.0 / np.sqrt(shots)})
    return rows


def test_ablation_sampling_noise(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title="Ablation A5 — read-out samples vs reachable accuracy "
                                    "(single solve, inner polynomial error 1e-6)")
    emit("ablation_sampling", text)
    # the error decreases with the number of shots and tracks 1/sqrt(shots)
    for mode in ("gaussian", "multinomial"):
        series = [row for row in rows if row["read-out"] == mode]
        errors = [row["median relative error"] for row in series]
        assert errors[-1] < errors[0]
        assert errors[-1] < 50.0 / np.sqrt(_SHOTS[-1])
