"""Ablation A3 — classical mixed-precision refinement vs the quantum scheme.

Algorithm 1 (LU factorisation at ``u_l`` + refinement at ``u``) and
Algorithm 2 (QSVT at ``ε_l`` + refinement at ``u``) share the same driver in
this code base; this ablation runs both on the same systems and compares the
convergence profiles, illustrating the paper's point that the quantum solver
simply plays the role of the low-precision factorisation.
"""

import pytest

from repro.applications import random_workload
from repro.core import (
    MixedPrecisionRefinement,
    QSVTLinearSolver,
    mixed_precision_lu_refinement,
)
from repro.reporting import format_table

from .common import emit

_TARGET = 1e-12
_KAPPAS = (5.0, 50.0, 500.0)
_LOW_PRECISIONS = ("fp32", "fp16", "bf16")


def _run():
    rows = []
    for kappa in _KAPPAS:
        workload = random_workload(16, kappa, rng=int(kappa) + 3)
        for low in _LOW_PRECISIONS:
            result = mixed_precision_lu_refinement(workload.matrix, workload.rhs,
                                                   low_precision=low,
                                                   target_accuracy=_TARGET)
            rows.append({"solver": f"LU @ {low}", "kappa": kappa,
                         "iterations": result.iterations,
                         "final omega": result.scaled_residuals[-1],
                         "converged": result.converged})
        solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-3, backend="ideal")
        result = MixedPrecisionRefinement(solver, target_accuracy=_TARGET).solve(workload.rhs)
        rows.append({"solver": "QSVT @ eps_l=1e-3", "kappa": kappa,
                     "iterations": result.iterations,
                     "final omega": result.scaled_residuals[-1],
                     "converged": result.converged})
    return rows


def test_ablation_classical_vs_quantum_refinement(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(rows, title=(
        f"Ablation A3 — classical (Algorithm 1) vs quantum (Algorithm 2) refinement, "
        f"target {_TARGET:g}"))
    emit("ablation_classical_ir", text)
    # fp32 LU refinement and the QSVT refinement must both converge everywhere;
    # fp16/bf16 are expected to struggle only at the largest condition number.
    for row in rows:
        if row["solver"] in ("LU @ fp32", "QSVT @ eps_l=1e-3"):
            assert row["converged"], row
        if row["kappa"] <= 50.0:
            assert row["converged"], row
