"""Gate fusion — fused execution plans vs the unfused per-gate reference.

Measures, across problem size ``N`` and batch size ``B``, what the compiled
execution-plan IR (:mod:`repro.quantum.plan`) buys on the QSVT solve circuit:

* **contractions per sweep** — the fused :class:`~repro.qsp.qsvt_circuit.QSVTProgram`
  performs far fewer ``tensordot`` contractions than the per-gate loop (the
  QSVT alternation of block-encoding layers and ancilla-diagonal projector
  phases collapses into nested-set fusions);
* **sweep wall time** — replaying the fused plans vs the ``fusion="none"``
  reference program on the same right-hand sides;
* **correctness** — both paths agree to 1e-12 (this is the correctness
  oracle of the IR).

Results go to ``benchmarks/results/fusion.txt`` (human-readable) and to
``BENCH_fusion.json`` at the repository root (machine-readable speedups).
Run directly for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_fusion.py --smoke

which exits non-zero when the fusion acceptance criteria regress
(contraction reduction >= 1.5x and fused sweeps no slower than unfused).
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.applications import random_workload
from repro.core.backends import CircuitQSVTBackend
from repro.linalg import random_rhs
from repro.reporting import format_table
from repro.utils import as_generator

try:
    from .common import emit
except ImportError:          # script mode: python benchmarks/bench_fusion.py
    from common import emit

_EPSILON_L = 1e-2
_KAPPA = 10.0
_REPEATS = 3
_MIN_CONTRACTION_RATIO = 1.5
_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fusion.json"


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_case(dimension: int, batch_size: int, *, repeats: int = _REPEATS) -> dict:
    """Fused vs unfused QSVT sweep on one ``(N, B)`` configuration."""
    workload = random_workload(dimension, _KAPPA, rng=2025)
    gen = as_generator(11)
    rhs = np.stack([random_rhs(dimension, rng=gen) for _ in range(batch_size)])

    fused = CircuitQSVTBackend()
    fused.prepare(workload.matrix, epsilon_l=_EPSILON_L)
    unfused = CircuitQSVTBackend(fusion="none")
    unfused.prepare(workload.matrix, epsilon_l=_EPSILON_L)

    def run(backend):
        if batch_size == 1:
            return [backend.apply_inverse(rhs[0])]
        return backend.apply_inverse_batch(rhs)

    # warm-up (numpy buffers, plan cache)
    run(fused), run(unfused)
    fused_time = _best_of(repeats, lambda: run(fused))
    unfused_time = _best_of(repeats, lambda: run(unfused))
    deviation = max(
        float(np.max(np.abs(a.direction - b.direction)))
        for a, b in zip(run(fused), run(unfused)))

    contractions = fused.program.contractions_per_sweep
    gates = unfused.program.contractions_per_sweep   # one contraction per gate
    return {
        "dimension": dimension,
        "batch_size": batch_size,
        "gates_per_sweep": gates,
        "contractions_per_sweep": contractions,
        "contraction_ratio": gates / max(contractions, 1),
        "fused_time_s": fused_time,
        "unfused_time_s": unfused_time,
        "speedup": unfused_time / fused_time,
        "max_deviation": deviation,
    }


def run_benchmark(*, smoke: bool = False) -> dict:
    """Run every configuration, emit the table and write ``BENCH_fusion.json``."""
    if smoke:
        configurations = [(16, 4)]
        repeats = 1
    else:
        configurations = [(8, 1), (8, 8), (16, 1), (16, 8), (16, 32)]
        repeats = _REPEATS
    cases = [_measure_case(n, b, repeats=repeats) for n, b in configurations]

    rows = [
        {"N": c["dimension"], "B": c["batch_size"],
         "gates/sweep": c["gates_per_sweep"],
         "contractions/sweep": c["contractions_per_sweep"],
         "contraction x": c["contraction_ratio"],
         "fused [s]": c["fused_time_s"], "unfused [s]": c["unfused_time_s"],
         "speedup": c["speedup"], "max dev": c["max_deviation"]}
        for c in cases
    ]
    summary = {
        "epsilon_l": _EPSILON_L,
        "kappa": _KAPPA,
        "smoke": smoke,
        "cases": cases,
        "min_contraction_ratio": min(c["contraction_ratio"] for c in cases),
        "min_speedup": min(c["speedup"] for c in cases),
        "max_deviation": max(c["max_deviation"] for c in cases),
    }
    text = format_table(rows, title=(
        f"Gate fusion — QSVT solve circuit, kappa = {_KAPPA:g}, "
        f"epsilon_l = {_EPSILON_L:g} (fused greedy plan vs per-gate loop)"))
    if smoke:
        # the smoke gate only checks thresholds; never overwrite the full
        # benchmark artifacts (README/ROADMAP cite their numbers).
        emit("fusion_smoke", text)
    else:
        _JSON_PATH.write_text(json.dumps(summary, indent=2) + "\n",
                              encoding="utf-8")
        emit("fusion", text + f"\n\nwritten: {_JSON_PATH}")
    return summary


def _check(summary: dict) -> list[str]:
    """Acceptance criteria of the fusion tentpole; empty list = pass."""
    failures = []
    if summary["min_contraction_ratio"] < _MIN_CONTRACTION_RATIO:
        failures.append(
            f"contraction reduction {summary['min_contraction_ratio']:.2f}x is "
            f"below the required {_MIN_CONTRACTION_RATIO:.1f}x")
    if summary["min_speedup"] < 1.0:
        failures.append(
            f"fused sweep is slower than the per-gate loop "
            f"(speedup {summary['min_speedup']:.2f}x)")
    if summary["max_deviation"] > 1e-12:
        failures.append(
            f"fused/unfused deviation {summary['max_deviation']:.2e} "
            f"exceeds 1e-12")
    return failures


def test_fusion(benchmark):
    summary = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    failures = _check(summary)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="single fast configuration (the CI regression gate)")
    args = parser.parse_args(argv)
    summary = run_benchmark(smoke=args.smoke)
    print(f"contraction reduction >= {summary['min_contraction_ratio']:.1f}x, "
          f"sweep speedup >= {summary['min_speedup']:.2f}x, "
          f"max deviation {summary['max_deviation']:.2e}")
    failures = _check(summary)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
