"""Figure 5 — block-encoding calls vs target accuracy, κ = 2.

Compares the total number of calls to the block-encoding of ``A†`` needed to
reach a target accuracy ``ε``.  As in the paper, a "call" accounts for the
fact that the quantum circuit must be re-run for every measurement sample, so
the total is ``#solves × degree × #samples`` (the three factors of Table I):

* **QSVT only** — one solve whose polynomial is built for ``ε`` directly and
  which needs ``O(1/ε²)`` samples; like in the paper this curve is evaluated
  from the cost model (running it is intractable precisely because of that
  sample count);
* **QSVT + iterative refinement** — the number of solves and the polynomial
  degree are *measured* by running Algorithm 2 with ``ε_l ≈ 1/(2κ)``
  (ideal-polynomial backend); each solve needs only ``O(1/ε_l²)`` samples.

Expected shape: the two curves are comparable at ``ε ≈ ε_l`` and the
refinement curve wins by a factor that grows rapidly as ``ε`` decreases
(the sample factor dominates); the per-solve circuit work of the refinement
stays constant while the QSVT-only degree keeps growing.
"""

import numpy as np
import pytest

from repro.applications import random_workload
from repro.core import (
    MixedPrecisionRefinement,
    QSVTLinearSolver,
    block_encoding_calls_per_solve,
    samples_for_accuracy,
)
from repro.reporting import format_series, format_table

from .common import emit

_KAPPA = 2.0
_EPSILON_L = 0.25          # ≈ 1/(2κ): epsilon_l * kappa = 0.5 < 1
_TARGETS = tuple(10.0**-k for k in range(2, 13, 2))


def _run_sweep():
    workload = random_workload(16, _KAPPA, rng=31)
    solver = QSVTLinearSolver(workload.matrix, epsilon_l=_EPSILON_L, backend="ideal")
    measured = []
    for epsilon in _TARGETS:
        driver = MixedPrecisionRefinement(solver, target_accuracy=epsilon)
        result = driver.solve(workload.rhs)
        measured.append((epsilon, result))
    return solver, measured


def test_fig5_block_encoding_calls(benchmark):
    solver, measured = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    samples_ir = samples_for_accuracy(_EPSILON_L)
    direct_total = []
    ir_total = []
    rows = []
    for epsilon, result in measured:
        direct_degree = block_encoding_calls_per_solve(_KAPPA, epsilon)
        direct = direct_degree * samples_for_accuracy(epsilon)
        refined = result.total_block_encoding_calls * samples_ir
        direct_total.append(direct)
        ir_total.append(refined)
        rows.append({
            "epsilon": epsilon,
            "QSVT-only degree": direct_degree,
            "QSVT-only total calls (extrapolated)": direct,
            "QSVT+IR circuit calls (measured)": result.total_block_encoding_calls,
            "QSVT+IR total calls": refined,
            "iterations": result.iterations,
            "advantage": direct / refined,
        })
    text = format_table(rows, title=(
        f"Figure 5 — calls to the block-encoding vs target accuracy, kappa = {_KAPPA:g}, "
        f"epsilon_l = {_EPSILON_L:g} (IR polynomial degree "
        f"{solver.describe()['polynomial_degree']}, {samples_ir:.0f} samples per solve)"))
    text += "\n\n" + format_series(
        {"qsvt_only": direct_total, "qsvt_with_ir": ir_total},
        x_values=list(_TARGETS), x_label="epsilon")
    emit("fig5_blockencoding_calls", text)

    # shape checks: every refined run converged; the refinement wins for
    # epsilon << epsilon_l and the advantage grows as epsilon decreases.
    assert all(result.converged for _, result in measured)
    advantages = [row["advantage"] for row in rows]
    assert advantages[-1] > advantages[0]
    assert ir_total[-1] < direct_total[-1]
    # the measured per-solve circuit work of the refinement stays constant
    degrees = {result.history[0].cumulative_block_encoding_calls for _, result in measured}
    assert len(degrees) == 1
