"""ASCII circuit rendering.

Figure 2 of the paper shows the block-encoding circuit of the tridiagonal
Poisson matrix; since this repository has no graphical output, circuits are
rendered as ASCII wire diagrams — one text row per qubit, one column per gate
(gates acting on disjoint qubits are *not* packed into the same column, which
keeps the renderer simple and the output unambiguous).
"""

from __future__ import annotations

from .circuit import QuantumCircuit

__all__ = ["draw_circuit"]


def _gate_label(name: str, params) -> str:
    if not params:
        return name.upper()
    formatted = ",".join(f"{p:.3g}" for p in params)
    return f"{name.upper()}({formatted})"


def draw_circuit(circuit: QuantumCircuit, *, max_width: int = 2000,
                 qubit_labels: list[str] | None = None) -> str:
    """Render ``circuit`` as an ASCII diagram.

    Parameters
    ----------
    circuit:
        Circuit to draw.
    max_width:
        Truncate the drawing after this many characters per line (an ellipsis
        is appended); protects against accidentally printing megabyte-sized
        diagrams for deep QSVT circuits.
    qubit_labels:
        Optional custom labels (default ``q0:``, ``q1:``, ...).
    """
    n = circuit.num_qubits
    labels = qubit_labels if qubit_labels is not None else [f"q{i}" for i in range(n)]
    if len(labels) != n:
        raise ValueError("qubit_labels length must match the number of qubits")
    label_width = max(len(lbl) for lbl in labels) + 2
    rows = [list(f"{lbl:<{label_width}}") for lbl in labels]

    for gate in circuit:
        label = _gate_label(gate.name, gate.params)
        # column content per qubit
        column: dict[int, str] = {}
        for q, state in zip(gate.controls, gate.control_states):
            column[q] = "●" if state else "○"
        if gate.name == "x" and gate.controls and len(gate.targets) == 1:
            column[gate.targets[0]] = "⊕"
        elif gate.name == "swap" and len(gate.targets) == 2:
            column[gate.targets[0]] = "x"
            column[gate.targets[1]] = "x"
        else:
            for q in gate.targets:
                column[q] = f"[{label}]"
        width = max(len(s) for s in column.values()) + 2
        touched = sorted(gate.qubits)
        lo, hi = touched[0], touched[-1]
        for q in range(n):
            if q in column:
                cell = column[q].center(width, "─")
            elif lo < q < hi:
                cell = "│".center(width, "─")
            else:
                cell = "─" * width
            rows[q].append(cell)

    lines = []
    for row in rows:
        line = "".join(row)
        if len(line) > max_width:
            line = line[:max_width] + "…"
        lines.append(line)
    return "\n".join(lines)
