"""Pauli strings and the tree-approach Pauli decomposition.

The LCU block-encoding (Sec. II-A1 of the paper) writes a general matrix as a
weighted sum of unitaries; the natural unitary basis for qubit systems is the
Pauli basis ``{I, X, Y, Z}^{⊗n}``.  Reference [25] of the paper (by the same
authors) introduces a *tree-approach* decomposition that recursively splits
the matrix into its four quadrant combinations and prunes branches whose
coefficient block vanishes; the implementation below follows that scheme,
giving ``O(N² log N)`` work in the dense worst case and much less for sparse
or structured matrices (e.g. the Poisson matrix).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from ..exceptions import DimensionError
from ..utils import check_power_of_two, check_square

__all__ = ["PauliString", "pauli_matrix", "pauli_decompose", "pauli_reconstruct"]

_SINGLE = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class PauliString:
    """A tensor product of single-qubit Paulis with a complex coefficient.

    ``label[0]`` acts on qubit 0 (the most significant qubit).
    """

    label: str
    coefficient: complex = 1.0

    def __post_init__(self) -> None:
        if not self.label or any(ch not in _SINGLE for ch in self.label):
            raise DimensionError(f"invalid Pauli label {self.label!r}")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the string acts on."""
        return len(self.label)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return sum(1 for ch in self.label if ch != "I")

    def matrix(self) -> np.ndarray:
        """Dense matrix ``coefficient * P_{label}``."""
        return self.coefficient * pauli_matrix(self.label)

    def unitary(self) -> np.ndarray:
        """Dense matrix of the Pauli operator *without* the coefficient."""
        return pauli_matrix(self.label)


def pauli_matrix(label: str) -> np.ndarray:
    """Kronecker product of the single-qubit Paulis named by ``label``."""
    if not label:
        raise DimensionError("empty Pauli label")
    mats = [_SINGLE[ch] for ch in label]
    return reduce(np.kron, mats)


def pauli_decompose(matrix, *, tolerance: float = 1e-12) -> list[PauliString]:
    """Tree-approach Pauli decomposition of a ``2**n x 2**n`` matrix.

    Returns the list of :class:`PauliString` terms with non-negligible
    coefficients such that ``sum(term.matrix() for term in result) == matrix``.

    Parameters
    ----------
    matrix:
        Square matrix with power-of-two dimension (real or complex).
    tolerance:
        Branches whose coefficient block has max-norm below this threshold are
        pruned (this is what makes the tree approach cheap on structured
        matrices).
    """
    mat = check_square(np.asarray(matrix, dtype=complex), name="matrix")
    check_power_of_two(mat.shape[0], name="matrix dimension")
    terms: list[PauliString] = []
    _decompose_recursive(mat, "", terms, tolerance)
    # deterministic ordering: lexicographic on the label
    terms.sort(key=lambda t: t.label)
    return terms


def _decompose_recursive(block: np.ndarray, prefix: str, out: list[PauliString],
                         tolerance: float) -> None:
    n = block.shape[0]
    if n == 1:
        coeff = complex(block[0, 0])
        if abs(coeff) > tolerance:
            out.append(PauliString(label=prefix, coefficient=coeff))
        return
    half = n // 2
    a00 = block[:half, :half]
    a01 = block[:half, half:]
    a10 = block[half:, :half]
    a11 = block[half:, half:]
    children = {
        "I": (a00 + a11) / 2.0,
        "Z": (a00 - a11) / 2.0,
        "X": (a01 + a10) / 2.0,
        "Y": 1j * (a01 - a10) / 2.0,
    }
    for label, child in children.items():
        if np.max(np.abs(child)) > tolerance:
            _decompose_recursive(child, prefix + label, out, tolerance)


def pauli_reconstruct(terms: list[PauliString], num_qubits: int | None = None) -> np.ndarray:
    """Rebuild the dense matrix from a list of Pauli terms (inverse of
    :func:`pauli_decompose`)."""
    if not terms:
        if num_qubits is None:
            raise DimensionError("cannot infer dimension from an empty term list")
        dim = 2**num_qubits
        return np.zeros((dim, dim), dtype=complex)
    n = terms[0].num_qubits
    if any(t.num_qubits != n for t in terms):
        raise DimensionError("all Pauli strings must act on the same number of qubits")
    dim = 2**n
    out = np.zeros((dim, dim), dtype=complex)
    for term in terms:
        out += term.matrix()
    return out
