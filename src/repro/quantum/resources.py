"""Fault-tolerant resource estimation.

The paper expresses the quantum cost of the Poisson use-case (Table II) in
T-gate counts because QSVT circuits are far too deep for NISQ devices and
require error correction (Sec. III-C4).  The :class:`ResourceCounter` below
translates a :class:`~repro.quantum.circuit.QuantumCircuit` into Clifford+T
resources using a configurable cost model:

* Toffoli gates cost ``toffoli_t_count`` T gates (7 in the textbook
  decomposition, 4 with measurement-assisted tricks);
* a multi-controlled X with ``k`` controls costs ``2k - 3`` Toffolis using a
  clean-ancilla V-chain (Ref. [24] of the paper lowers the constants further;
  the model is configurable to reflect that);
* arbitrary-angle rotations are synthesised into ``ceil(a·log2(1/ε) + b)``
  T gates (Ross–Selinger style), with the synthesis accuracy ``ε`` a model
  parameter;
* arbitrary multi-qubit ``unitary`` blocks fall back to a generic
  ``O(4^k)``-rotation compilation estimate, so the numbers stay meaningful
  even for circuits that keep some blocks un-decomposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ResourceModelError
from .circuit import QuantumCircuit
from .gates import Gate

__all__ = ["ResourceCounter", "ResourceEstimate", "estimate_circuit_resources"]

_CLIFFORD_NAMES = {"i", "x", "y", "z", "h", "s", "sdg", "sx", "swap", "cx", "cz"}
_T_NAMES = {"t", "tdg"}
_ROTATION_NAMES = {"rx", "ry", "rz", "p", "phase", "u", "gphase"}


@dataclass(frozen=True)
class ResourceEstimate:
    """Aggregated fault-tolerant cost of one circuit."""

    #: total number of T gates after compilation.
    t_count: float
    #: number of Toffoli gates before conversion to T gates.
    toffoli_count: float
    #: number of CNOT gates (including those produced by decompositions).
    cnot_count: float
    #: number of arbitrary-angle rotations (each synthesised into T gates).
    rotation_count: float
    #: number of explicit T/T† gates in the input circuit.
    explicit_t_count: float
    #: circuit depth of the *logical* circuit (before decomposition).
    logical_depth: int
    #: number of qubits of the circuit.
    num_qubits: int
    #: histogram of logical gate names.
    gate_counts: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"qubits            : {self.num_qubits}",
            f"logical depth     : {self.logical_depth}",
            f"T count           : {self.t_count:.3g}",
            f"Toffoli count     : {self.toffoli_count:.3g}",
            f"CNOT count        : {self.cnot_count:.3g}",
            f"rotation count    : {self.rotation_count:.3g}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class ResourceCounter:
    """Cost model translating logical gates into Clifford+T resources.

    Parameters
    ----------
    toffoli_t_count:
        T gates per Toffoli (7 textbook, 4 with measurement/uncompute tricks).
    rotation_synthesis_epsilon:
        Target accuracy of single-qubit rotation synthesis.
    rotation_synthesis_slope / rotation_synthesis_offset:
        T-count of one rotation ``= slope * log2(1/epsilon) + offset``
        (Ross–Selinger gives slope ≈ 3).
    mcx_toffoli_factor / mcx_toffoli_offset:
        Toffolis for a ``k``-controlled X ``= factor*k + offset`` (defaults to
        the clean-ancilla V-chain ``2k - 3``).
    """

    toffoli_t_count: float = 7.0
    rotation_synthesis_epsilon: float = 1e-10
    rotation_synthesis_slope: float = 3.0
    rotation_synthesis_offset: float = 1.0
    mcx_toffoli_factor: float = 2.0
    mcx_toffoli_offset: float = -3.0

    # ------------------------------------------------------------------ #
    def rotation_t_count(self) -> float:
        """T gates needed to synthesise one arbitrary-angle rotation."""
        eps = self.rotation_synthesis_epsilon
        if not 0.0 < eps < 1.0:
            raise ResourceModelError("rotation_synthesis_epsilon must be in (0, 1)")
        return float(np.ceil(self.rotation_synthesis_slope * np.log2(1.0 / eps)
                             + self.rotation_synthesis_offset))

    def mcx_toffolis(self, num_controls: int) -> float:
        """Toffoli count of a multi-controlled X with ``num_controls`` controls."""
        if num_controls < 0:
            raise ResourceModelError("num_controls must be non-negative")
        if num_controls <= 1:
            return 0.0
        if num_controls == 2:
            return 1.0
        return float(self.mcx_toffoli_factor * num_controls + self.mcx_toffoli_offset)

    # ------------------------------------------------------------------ #
    def count_gate(self, gate: Gate) -> dict[str, float]:
        """Resource contribution of a single logical gate.

        Returns a dict with keys ``t``, ``toffoli``, ``cnot``, ``rotation``,
        ``explicit_t``.
        """
        name = gate.name.lower()
        k = len(gate.controls)
        out = {"t": 0.0, "toffoli": 0.0, "cnot": 0.0, "rotation": 0.0, "explicit_t": 0.0}

        def add_rotations(count: float) -> None:
            out["rotation"] += count
            out["t"] += count * self.rotation_t_count()

        if name in _T_NAMES and k == 0:
            out["explicit_t"] += 1
            out["t"] += 1
            return out
        if name in _CLIFFORD_NAMES and k == 0:
            return out
        if name == "x" and k == 1:
            out["cnot"] += 1
            return out
        if name in {"z", "y"} and k == 1:
            out["cnot"] += 1  # CZ/CY are Clifford: one CNOT + single-qubit Cliffords
            return out
        if name == "x" and k >= 2:
            toffolis = self.mcx_toffolis(k)
            out["toffoli"] += toffolis
            out["t"] += toffolis * self.toffoli_t_count
            out["cnot"] += 2 * max(k - 1, 0)  # chain plumbing
            return out
        if name in {"z", "p", "phase"} and k >= 2:
            # multi-controlled phase: same Toffoli ladder + one rotation
            toffolis = self.mcx_toffolis(k)
            out["toffoli"] += toffolis
            out["t"] += toffolis * self.toffoli_t_count
            add_rotations(1.0)
            return out
        if name in _ROTATION_NAMES and k == 0:
            add_rotations(1.0)
            return out
        if name in _ROTATION_NAMES and k >= 1:
            # controlled rotation = 2 rotations + 2 (multi-controlled) X
            add_rotations(2.0)
            if k == 1:
                out["cnot"] += 2
            else:
                toffolis = 2 * self.mcx_toffolis(k)
                out["toffoli"] += toffolis
                out["t"] += toffolis * self.toffoli_t_count
            return out
        if name in _CLIFFORD_NAMES and k >= 1:
            # controlled Clifford: decompose into a controlled X sandwich
            toffolis = self.mcx_toffolis(k + 1)
            if k == 1:
                out["cnot"] += 2
            else:
                out["toffoli"] += toffolis
                out["t"] += toffolis * self.toffoli_t_count
            return out
        # generic unitary block on m = k + len(targets) qubits: standard
        # compilation needs O(4^m) CNOTs and rotations; we charge 4^m of each.
        m = gate.num_qubits
        generic = float(4**m)
        out["cnot"] += generic
        add_rotations(generic)
        return out

    # ------------------------------------------------------------------ #
    def estimate(self, circuit: QuantumCircuit) -> ResourceEstimate:
        """Estimate the resources of a whole circuit."""
        totals = {"t": 0.0, "toffoli": 0.0, "cnot": 0.0, "rotation": 0.0, "explicit_t": 0.0}
        for gate in circuit:
            contribution = self.count_gate(gate)
            for key, value in contribution.items():
                totals[key] += value
        return ResourceEstimate(
            t_count=totals["t"],
            toffoli_count=totals["toffoli"],
            cnot_count=totals["cnot"],
            rotation_count=totals["rotation"],
            explicit_t_count=totals["explicit_t"],
            logical_depth=circuit.depth(),
            num_qubits=circuit.num_qubits,
            gate_counts=circuit.count_gates(),
        )


def estimate_circuit_resources(circuit: QuantumCircuit,
                               counter: ResourceCounter | None = None) -> ResourceEstimate:
    """Convenience wrapper using the default :class:`ResourceCounter`."""
    model = counter if counter is not None else ResourceCounter()
    return model.estimate(circuit)
