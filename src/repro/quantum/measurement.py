"""Measurement, sampling and post-selection.

The QSVT linear solver reads its output in two steps (Remark 2/3 of the
paper): the block-encoding/QSVT ancillas must be found in ``|0...0>``
(post-selection), and the data register is then sampled to estimate the
normalised solution ``x / ||x||``.  This module provides those primitives plus
shot-based sampling used by the shot-noise ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import DimensionError
from ..utils import as_generator
from .statevector import Statevector

__all__ = [
    "MeasurementResult",
    "probabilities",
    "marginal_probabilities",
    "sample_counts",
    "postselect",
    "postselect_batched",
    "expectation_value",
]


@dataclass(frozen=True)
class MeasurementResult:
    """Outcome of a shot-based measurement.

    Attributes
    ----------
    counts:
        Mapping from basis-state index (of the measured qubits) to the number
        of shots that returned it.
    shots:
        Total number of shots.
    num_qubits:
        Number of measured qubits.
    """

    counts: dict[int, int]
    shots: int
    num_qubits: int

    def frequencies(self) -> np.ndarray:
        """Empirical probabilities as a dense array of length ``2**num_qubits``."""
        freq = np.zeros(2**self.num_qubits)
        for index, count in self.counts.items():
            freq[index] = count / self.shots
        return freq

    def most_frequent(self) -> int:
        """Basis index observed most often."""
        return max(self.counts.items(), key=lambda kv: kv[1])[0]


def probabilities(state: Statevector) -> np.ndarray:
    """Measurement probabilities of the full register (normalised)."""
    p = state.probabilities()
    total = p.sum()
    if total == 0.0:
        raise ZeroDivisionError("cannot measure the zero state")
    return p / total


def marginal_probabilities(state: Statevector, qubits: Sequence[int]) -> np.ndarray:
    """Probabilities of measuring only ``qubits`` (others traced out).

    The returned array has length ``2**len(qubits)``; entry ``k`` corresponds
    to the bit-string of ``qubits`` read in the order given (first qubit of
    the list = most significant bit of ``k``).
    """
    qubits = [int(q) for q in qubits]
    for q in qubits:
        if not 0 <= q < state.num_qubits:
            raise DimensionError(f"qubit {q} out of range")
    if len(set(qubits)) != len(qubits):
        raise DimensionError("duplicate qubit in marginal measurement")
    tensor = probabilities(state).reshape((2,) * state.num_qubits)
    other_axes = tuple(axis for axis in range(state.num_qubits) if axis not in qubits)
    marginal = tensor.sum(axis=other_axes) if other_axes else tensor
    # marginal axes are the kept qubits in increasing order; permute to the
    # requested order before flattening.
    kept_sorted = sorted(qubits)
    order = [kept_sorted.index(q) for q in qubits]
    marginal = np.transpose(marginal, order)
    return marginal.reshape(-1)


def sample_counts(state: Statevector, shots: int, *, qubits: Sequence[int] | None = None,
                  rng=None) -> MeasurementResult:
    """Sample ``shots`` computational-basis measurements.

    Parameters
    ----------
    state:
        State to measure (it is normalised internally).
    shots:
        Number of independent repetitions (must be positive).
    qubits:
        Subset of qubits to measure (default: all of them).
    rng:
        Seed/generator for reproducibility.
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    gen = as_generator(rng)
    if qubits is None:
        probs = probabilities(state)
        num_measured = state.num_qubits
    else:
        probs = marginal_probabilities(state, qubits)
        num_measured = len(tuple(qubits))
    outcomes = gen.choice(probs.shape[0], size=shots, p=probs)
    counts: dict[int, int] = {}
    for outcome in outcomes:
        counts[int(outcome)] = counts.get(int(outcome), 0) + 1
    return MeasurementResult(counts=counts, shots=shots, num_qubits=num_measured)


def postselect(state: Statevector, qubits: Sequence[int], outcome: int | Sequence[int],
               *, renormalize: bool = True) -> tuple[Statevector, float]:
    """Project ``qubits`` onto a basis ``outcome`` and return (reduced state, probability).

    The returned state lives on the *remaining* qubits (the measured ones are
    removed from the register).  ``probability`` is the chance of observing
    that outcome; callers typically check it against the success probability
    predicted by the block-encoding subnormalisation.

    Parameters
    ----------
    state:
        Input state.
    qubits:
        Qubits being measured (first entry = most significant bit of ``outcome``).
    outcome:
        Either an integer (bit-string of the measured qubits) or an explicit
        sequence of bits, one per measured qubit.
    renormalize:
        When ``True`` (default) the reduced state has unit norm; otherwise its
        norm is the square root of the outcome probability.
    """
    qubits = [int(q) for q in qubits]
    for q in qubits:
        if not 0 <= q < state.num_qubits:
            raise DimensionError(f"qubit {q} out of range")
    if len(set(qubits)) != len(qubits):
        raise DimensionError("duplicate qubit in post-selection")
    if isinstance(outcome, (int, np.integer)):
        bits = [(int(outcome) >> (len(qubits) - 1 - i)) & 1 for i in range(len(qubits))]
    else:
        bits = [int(b) for b in outcome]
        if len(bits) != len(qubits):
            raise DimensionError("outcome length must match the number of measured qubits")
    tensor = state.data.reshape((2,) * state.num_qubits)
    index: list = [slice(None)] * state.num_qubits
    for qubit, bit in zip(qubits, bits):
        index[qubit] = bit
    reduced = np.asarray(tensor[tuple(index)]).reshape(-1)
    norm_total = state.norm()
    if norm_total == 0.0:
        raise ZeroDivisionError("cannot post-select the zero state")
    prob = float(np.linalg.norm(reduced) ** 2 / norm_total**2)
    if renormalize:
        norm_reduced = np.linalg.norm(reduced)
        if norm_reduced == 0.0:
            raise ZeroDivisionError(
                "post-selection outcome has zero probability; cannot renormalise")
        reduced = reduced / norm_reduced
    if reduced.shape[0] == 1:
        # all qubits measured: return a trivial 1-qubit register holding the phase
        reduced = np.array([reduced[0], 0.0], dtype=complex)
    return Statevector(reduced), prob


def postselect_batched(states: np.ndarray, qubits: Sequence[int],
                       outcome: int | Sequence[int], *,
                       renormalize: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`postselect` on a ``(B, 2**n)`` stack of states.

    Projects ``qubits`` of every row onto the basis ``outcome`` at once and
    returns ``(reduced, probabilities)`` where ``reduced`` has shape
    ``(B, 2**(n - len(qubits)))`` and ``probabilities[i]`` is the chance of
    observing the outcome in state ``i``.  Unlike the single-state version,
    at least one qubit must remain unmeasured (the linear-solver use case
    always keeps the data register).
    """
    states = np.asarray(states, dtype=complex)
    if states.ndim != 2:
        raise DimensionError(
            f"batched states must be a (B, 2**n) array, got shape {states.shape}")
    num_qubits = int(states.shape[1]).bit_length() - 1
    if 2**num_qubits != states.shape[1]:
        raise DimensionError("statevector length must be a power of two")
    qubits = [int(q) for q in qubits]
    for q in qubits:
        if not 0 <= q < num_qubits:
            raise DimensionError(f"qubit {q} out of range")
    if len(set(qubits)) != len(qubits):
        raise DimensionError("duplicate qubit in post-selection")
    if len(qubits) >= num_qubits:
        raise DimensionError("batched post-selection must leave at least one qubit")
    if isinstance(outcome, (int, np.integer)):
        bits = [(int(outcome) >> (len(qubits) - 1 - i)) & 1 for i in range(len(qubits))]
    else:
        bits = [int(b) for b in outcome]
        if len(bits) != len(qubits):
            raise DimensionError("outcome length must match the number of measured qubits")
    tensor = states.reshape((states.shape[0],) + (2,) * num_qubits)
    index: list = [slice(None)] * (num_qubits + 1)
    for qubit, bit in zip(qubits, bits):
        index[qubit + 1] = bit
    reduced = np.ascontiguousarray(tensor[tuple(index)]).reshape(states.shape[0], -1)
    total = np.linalg.norm(states, axis=1)
    if np.any(total == 0.0):
        raise ZeroDivisionError("cannot post-select a zero state in the batch")
    reduced_norms = np.linalg.norm(reduced, axis=1)
    probs = (reduced_norms / total) ** 2
    if renormalize:
        if np.any(reduced_norms == 0.0):
            raise ZeroDivisionError(
                "post-selection outcome has zero probability for some state; "
                "cannot renormalise")
        reduced = reduced / reduced_norms[:, None]
    return reduced, probs


def expectation_value(state: Statevector, observable: np.ndarray) -> float:
    """Real part of ``<ψ|O|ψ>`` for a Hermitian observable ``O`` (normalised state)."""
    psi = state.normalized().data
    obs = np.asarray(observable, dtype=complex)
    if obs.shape != (psi.shape[0], psi.shape[0]):
        raise DimensionError("observable dimension does not match the state")
    return float(np.real(np.vdot(psi, obs @ psi)))
