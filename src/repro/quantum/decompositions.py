"""Gate decompositions.

These decompositions serve two purposes:

* they let the resource estimator (:mod:`repro.quantum.resources`) translate
  high-level gates (multi-controlled X, uniformly controlled rotations) into
  Clifford+T counts, the unit used in Table II of the paper;
* they are exercised by the tests to validate that the "primitive" gates the
  simulator applies directly (e.g. a multi-controlled X as a single big gate)
  agree with their decomposed circuits.

The uniformly controlled (multiplexed) rotations use the standard recursive
halving construction: a multiplexor over ``k`` controls becomes two
multiplexors over ``k-1`` controls sandwiched between two CNOTs, yielding
``2**k`` elementary rotations and ``2**(k+1) - 2`` CNOTs (the Gray-code
variant saves a further factor of two in CNOTs by merging adjacent ones; the
resource model's asymptotics are unchanged).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DimensionError
from .circuit import QuantumCircuit

__all__ = [
    "gray_code",
    "toffoli_circuit",
    "mcx_circuit",
    "multiplexed_ry_circuit",
    "multiplexed_rz_circuit",
    "multiplexor_matrix",
]


def gray_code(index: int) -> int:
    """Binary-reflected Gray code of ``index``."""
    if index < 0:
        raise ValueError("index must be non-negative")
    return index ^ (index >> 1)


def toffoli_circuit(control_a: int = 0, control_b: int = 1, target: int = 2,
                    num_qubits: int | None = None) -> QuantumCircuit:
    """Clifford+T decomposition of the Toffoli gate (7 T gates, 6 CNOTs, 2 H).

    The decomposition is the textbook one (Nielsen & Chuang Fig. 4.9); tests
    verify it reproduces the doubly-controlled X exactly (up to global phase).
    """
    n = num_qubits if num_qubits is not None else max(control_a, control_b, target) + 1
    qc = QuantumCircuit(n, name="toffoli")
    a, b, t = control_a, control_b, target
    qc.h(t)
    qc.cx(b, t)
    qc.tdg(t)
    qc.cx(a, t)
    qc.t(t)
    qc.cx(b, t)
    qc.tdg(t)
    qc.cx(a, t)
    qc.t(b)
    qc.t(t)
    qc.h(t)
    qc.cx(a, b)
    qc.t(a)
    qc.tdg(b)
    qc.cx(a, b)
    return qc


def mcx_circuit(num_controls: int) -> QuantumCircuit:
    """Multi-controlled X decomposed into Toffolis with clean ancillas.

    Layout of the returned circuit: qubits ``0 .. num_controls-1`` are the
    controls, qubit ``num_controls`` is the target, and qubits
    ``num_controls+1 ..`` are ``num_controls - 2`` clean ancillas (assumed
    ``|0>`` at the start, returned to ``|0>`` at the end).  The construction is
    the usual V-chain: ``2(k-2) + 1`` Toffolis for ``k >= 3`` controls.
    """
    k = int(num_controls)
    if k < 1:
        raise DimensionError("need at least one control")
    target = k
    if k == 1:
        qc = QuantumCircuit(2, name="cx")
        qc.cx(0, target)
        return qc
    if k == 2:
        qc = QuantumCircuit(3, name="ccx")
        qc.ccx(0, 1, target)
        return qc
    num_ancillas = k - 2
    qc = QuantumCircuit(k + 1 + num_ancillas, name=f"mcx({k})")
    ancillas = [k + 1 + i for i in range(num_ancillas)]
    # compute chain: anc[0] = c0 AND c1, anc[i] = anc[i-1] AND c_{i+1}
    qc.ccx(0, 1, ancillas[0])
    for i in range(1, num_ancillas):
        qc.ccx(ancillas[i - 1], i + 1, ancillas[i])
    # apply the final Toffoli on the target
    qc.ccx(ancillas[-1], k - 1, target)
    # uncompute chain
    for i in range(num_ancillas - 1, 0, -1):
        qc.ccx(ancillas[i - 1], i + 1, ancillas[i])
    qc.ccx(0, 1, ancillas[0])
    return qc


def _multiplex_recursive(qc: QuantumCircuit, rotation: str, angles: np.ndarray,
                         controls: Sequence[int], target: int) -> None:
    """Recursive halving decomposition of a multiplexed rotation.

    ``angles[j]`` is the rotation applied when the control register (read with
    ``controls[0]`` as the most significant bit) holds the value ``j``.
    """
    if len(controls) == 0:
        theta = float(angles[0])
        if rotation == "ry":
            qc.ry(theta, target)
        else:
            qc.rz(theta, target)
        return
    half = len(angles) // 2
    first, second = angles[:half], angles[half:]
    sum_half = (first + second) / 2.0
    diff_half = (first - second) / 2.0
    # temporal order: multiplex(sum), CNOT, multiplex(diff), CNOT
    _multiplex_recursive(qc, rotation, sum_half, controls[1:], target)
    qc.cx(controls[0], target)
    _multiplex_recursive(qc, rotation, diff_half, controls[1:], target)
    qc.cx(controls[0], target)


def multiplexed_ry_circuit(angles, controls: Sequence[int], target: int,
                           num_qubits: int | None = None) -> QuantumCircuit:
    """Uniformly controlled RY: apply ``Ry(angles[j])`` when controls read ``j``.

    Parameters
    ----------
    angles:
        ``2**len(controls)`` rotation angles.
    controls:
        Control qubit indices; ``controls[0]`` is the most significant bit of
        the selector ``j``.
    target:
        Target qubit index.
    num_qubits:
        Total width of the returned circuit (defaults to the highest index + 1).
    """
    return _multiplexed_circuit("ry", angles, controls, target, num_qubits)


def multiplexed_rz_circuit(angles, controls: Sequence[int], target: int,
                           num_qubits: int | None = None) -> QuantumCircuit:
    """Uniformly controlled RZ (same conventions as :func:`multiplexed_ry_circuit`)."""
    return _multiplexed_circuit("rz", angles, controls, target, num_qubits)


def _multiplexed_circuit(rotation: str, angles, controls: Sequence[int], target: int,
                         num_qubits: int | None) -> QuantumCircuit:
    angles_arr = np.asarray(angles, dtype=float).reshape(-1)
    controls = [int(c) for c in controls]
    expected = 2 ** len(controls)
    if angles_arr.shape[0] != expected:
        raise DimensionError(
            f"need {expected} angles for {len(controls)} controls, got {angles_arr.shape[0]}")
    width = num_qubits if num_qubits is not None else max([target, *controls], default=target) + 1
    qc = QuantumCircuit(width, name=f"multiplexed_{rotation}")
    _multiplex_recursive(qc, rotation, angles_arr, controls, target)
    return qc


def multiplexor_matrix(rotation: str, angles) -> np.ndarray:
    """Reference block-diagonal matrix of a multiplexed rotation.

    Ordering: the control register forms the most significant bits, the target
    is the least significant qubit, so the matrix is
    ``diag(R(angles[0]), R(angles[1]), ...)``.  Used by tests and by the
    state-preparation code when it applies multiplexors as single dense gates.
    """
    angles_arr = np.asarray(angles, dtype=float).reshape(-1)
    blocks = []
    for theta in angles_arr:
        if rotation == "ry":
            c, s = np.cos(theta / 2), np.sin(theta / 2)
            blocks.append(np.array([[c, -s], [s, c]], dtype=complex))
        elif rotation == "rz":
            blocks.append(np.array([[np.exp(-1j * theta / 2), 0],
                                    [0, np.exp(1j * theta / 2)]], dtype=complex))
        else:
            raise ValueError(f"unknown rotation {rotation!r}")
    dim = 2 * angles_arr.shape[0]
    out = np.zeros((dim, dim), dtype=complex)
    for i, block in enumerate(blocks):
        out[2 * i:2 * i + 2, 2 * i:2 * i + 2] = block
    return out
