"""Gate definitions.

A :class:`Gate` is an immutable record of a named operation acting on a list
of target qubits, optionally controlled on other qubits (each control can be
conditioned on ``|1>`` — the default — or on ``|0>``, which is what
projector-controlled operations of the QSVT need).  The unitary matrix of a
gate is stored explicitly for custom blocks and derived from
:func:`standard_gate_matrix` for named gates, so the simulator never needs a
gate-by-name switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import DimensionError
from ..utils import is_unitary

__all__ = ["Gate", "standard_gate_matrix", "controlled_matrix", "GATE_ALIASES"]

_SQRT2 = np.sqrt(2.0)

_FIXED_GATES: dict[str, np.ndarray] = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2,
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    "swap": np.array([[1, 0, 0, 0],
                      [0, 0, 1, 0],
                      [0, 1, 0, 0],
                      [0, 0, 0, 1]], dtype=complex),
}

#: alternative spellings accepted by :func:`standard_gate_matrix`.
GATE_ALIASES = {
    "id": "i",
    "identity": "i",
    "not": "x",
    "cnot": "x",   # a cnot is an x gate with one control
    "hadamard": "h",
}


def standard_gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix of a named gate.

    Supported names: ``i, x, y, z, h, s, sdg, t, tdg, sx, swap`` (no
    parameters) and ``rx, ry, rz, p/phase, u`` (parametrised).  Controls are
    *not* part of the name; they are described by :attr:`Gate.controls`.
    """
    key = name.lower()
    key = GATE_ALIASES.get(key, key)
    if key in _FIXED_GATES:
        if params:
            raise ValueError(f"gate {name!r} takes no parameters")
        return _FIXED_GATES[key].copy()
    if key == "rx":
        (theta,) = params
        c, s = np.cos(theta / 2), -1j * np.sin(theta / 2)
        return np.array([[c, s], [s, c]], dtype=complex)
    if key == "ry":
        (theta,) = params
        c, s = np.cos(theta / 2), np.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if key == "rz":
        (theta,) = params
        return np.array([[np.exp(-1j * theta / 2), 0],
                         [0, np.exp(1j * theta / 2)]], dtype=complex)
    if key in ("p", "phase"):
        (lam,) = params
        return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)
    if key == "gphase":
        (lam,) = params
        return np.exp(1j * lam) * np.eye(1, dtype=complex)
    if key == "u":
        theta, phi, lam = params
        return np.array(
            [[np.cos(theta / 2), -np.exp(1j * lam) * np.sin(theta / 2)],
             [np.exp(1j * phi) * np.sin(theta / 2),
              np.exp(1j * (phi + lam)) * np.cos(theta / 2)]], dtype=complex)
    raise ValueError(f"unknown gate name {name!r}")


def controlled_matrix(matrix: np.ndarray, num_controls: int,
                      control_states: Sequence[int] | None = None) -> np.ndarray:
    """Build the matrix of a controlled gate.

    The control qubits are placed *before* (more significant than) the target
    qubits, matching the convention used by the simulator when it expands a
    :class:`Gate` whose ``controls`` are listed first.

    Parameters
    ----------
    matrix:
        Unitary acting on the target qubits (dimension ``2^t``).
    num_controls:
        Number of control qubits.
    control_states:
        For each control, ``1`` (activate on ``|1>``, default) or ``0``
        (activate on ``|0>``).
    """
    mat = np.asarray(matrix, dtype=complex)
    dim_t = mat.shape[0]
    if mat.shape != (dim_t, dim_t):
        raise DimensionError("gate matrix must be square")
    states = list(control_states) if control_states is not None else [1] * num_controls
    if len(states) != num_controls:
        raise DimensionError("control_states length must equal num_controls")
    dim_c = 2**num_controls
    out = np.eye(dim_c * dim_t, dtype=complex)
    # index of the activating control pattern, controls being the high bits
    active = 0
    for state in states:
        active = (active << 1) | (1 if state else 0)
    lo = active * dim_t
    out[lo:lo + dim_t, lo:lo + dim_t] = mat
    return out


@dataclass(frozen=True)
class Gate:
    """One operation of a circuit.

    Attributes
    ----------
    name:
        Gate name (informational; ``"unitary"`` for custom matrices).
    targets:
        Target qubit indices (order matters: ``targets[0]`` is the most
        significant qubit of ``matrix``).
    matrix:
        Unitary acting on ``targets`` (dimension ``2^len(targets)``).
    controls:
        Control qubit indices (empty tuple for uncontrolled gates).
    control_states:
        For each control, 1 = control on ``|1>`` (default), 0 = control on ``|0>``.
    params:
        Parameters of named gates, kept for drawing/resource estimation.
    """

    name: str
    targets: tuple[int, ...]
    matrix: np.ndarray = field(repr=False)
    controls: tuple[int, ...] = ()
    control_states: tuple[int, ...] = ()
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        mat = np.asarray(self.matrix, dtype=complex)
        object.__setattr__(self, "matrix", mat)
        object.__setattr__(self, "targets", tuple(int(q) for q in self.targets))
        object.__setattr__(self, "controls", tuple(int(q) for q in self.controls))
        states = self.control_states or tuple(1 for _ in self.controls)
        object.__setattr__(self, "control_states", tuple(int(s) for s in states))
        if len(self.control_states) != len(self.controls):
            raise DimensionError("control_states must match controls")
        dim = 2 ** len(self.targets)
        if mat.shape != (dim, dim):
            raise DimensionError(
                f"gate {self.name!r}: matrix shape {mat.shape} does not match "
                f"{len(self.targets)} target qubit(s)")
        all_qubits = self.targets + self.controls
        if len(set(all_qubits)) != len(all_qubits):
            raise DimensionError(f"gate {self.name!r}: duplicate qubit in {all_qubits}")

    # ------------------------------------------------------------------ #
    @property
    def qubits(self) -> tuple[int, ...]:
        """All qubits touched by the gate (controls first, then targets)."""
        return self.controls + self.targets

    @property
    def num_qubits(self) -> int:
        """Number of distinct qubits the gate acts on."""
        return len(self.qubits)

    def expanded_matrix(self) -> np.ndarray:
        """Unitary on ``controls + targets`` (controls as most-significant qubits)."""
        if not self.controls:
            return self.matrix
        return controlled_matrix(self.matrix, len(self.controls), self.control_states)

    def dagger(self) -> "Gate":
        """Hermitian adjoint of the gate (controls unchanged).

        Self-adjoint named gates keep their name (so resource estimation of an
        inverted circuit stays exact), ``s``/``t`` map to their ``*dg``
        partners, parametric rotations keep their name with negated
        parameters, and anything else gets a ``†`` suffix toggled.
        """
        self_adjoint = {"i", "x", "y", "z", "h", "swap"}
        adjoint_pairs = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        rotations = {"rx", "ry", "rz", "p", "phase", "gphase", "u"}
        name = self.name
        if name in self_adjoint or name in rotations:
            new_name = name
        elif name in adjoint_pairs:
            new_name = adjoint_pairs[name]
        elif name.endswith("†"):
            new_name = name[:-1]
        else:
            new_name = f"{name}†"
        return Gate(name=new_name,
                    targets=self.targets, matrix=self.matrix.conj().T,
                    controls=self.controls, control_states=self.control_states,
                    params=tuple(-p for p in self.params))

    def validate_unitary(self, *, atol: float = 1e-10) -> None:
        """Raise if the stored matrix is not unitary (debug helper)."""
        if not is_unitary(self.matrix, atol=atol):
            raise DimensionError(f"gate {self.name!r} matrix is not unitary")
