"""Dense state-vector quantum simulator.

The paper runs its experiments on the myQLM simulator; this sub-package is the
from-scratch replacement.  It provides

* a gate library (:mod:`repro.quantum.gates`),
* a :class:`~repro.quantum.circuit.QuantumCircuit` container with the usual
  constructors (``h``, ``cx``, ``mcx``, arbitrary ``unitary`` blocks, ...),
* a dense state-vector engine (:mod:`repro.quantum.statevector`) able to apply
  circuits, compute full unitaries and post-select ancilla outcomes,
* a compiled execution-plan IR (:mod:`repro.quantum.plan`): circuits are
  lowered once into fused contraction sequences that every execution path
  (single state, batches, the QSVT backends) replays,
* measurement/sampling utilities (:mod:`repro.quantum.measurement`),
* gate decompositions used for fault-tolerant resource estimation
  (:mod:`repro.quantum.decompositions`, :mod:`repro.quantum.resources`),
* Pauli-string utilities and the tree-approach Pauli decomposition
  (:mod:`repro.quantum.pauli`) needed by the LCU block-encoding, and
* an ASCII circuit renderer (:mod:`repro.quantum.drawing`) used to reproduce
  Figure 2 of the paper.

Qubit ordering convention
-------------------------
Qubit 0 is the **most significant** bit of a basis-state index (big-endian):
the basis state ``|q0 q1 ... q_{n-1}>`` has index ``q0*2^{n-1} + ... + q_{n-1}``.
"""

from .gates import Gate, controlled_matrix, standard_gate_matrix
from .circuit import QuantumCircuit
from .plan import (
    ExecutionPlan,
    PlanOp,
    circuit_plan_fingerprint,
    compile_plan,
    plan_cache,
)
from .statevector import (
    Statevector,
    apply_circuit,
    apply_circuit_batched,
    apply_gate_batched,
    circuit_unitary,
    zero_state,
)
from .measurement import (
    MeasurementResult,
    marginal_probabilities,
    postselect,
    postselect_batched,
    probabilities,
    sample_counts,
)
from .pauli import PauliString, pauli_decompose, pauli_matrix, pauli_reconstruct
from .resources import ResourceCounter, ResourceEstimate, estimate_circuit_resources
from .decompositions import (
    gray_code,
    mcx_circuit,
    multiplexed_ry_circuit,
    multiplexed_rz_circuit,
    toffoli_circuit,
)
from .drawing import draw_circuit

__all__ = [
    "Gate",
    "standard_gate_matrix",
    "controlled_matrix",
    "QuantumCircuit",
    "ExecutionPlan",
    "PlanOp",
    "compile_plan",
    "circuit_plan_fingerprint",
    "plan_cache",
    "Statevector",
    "zero_state",
    "apply_circuit",
    "apply_gate_batched",
    "apply_circuit_batched",
    "circuit_unitary",
    "MeasurementResult",
    "probabilities",
    "marginal_probabilities",
    "sample_counts",
    "postselect",
    "postselect_batched",
    "PauliString",
    "pauli_matrix",
    "pauli_decompose",
    "pauli_reconstruct",
    "ResourceCounter",
    "ResourceEstimate",
    "estimate_circuit_resources",
    "gray_code",
    "mcx_circuit",
    "toffoli_circuit",
    "multiplexed_ry_circuit",
    "multiplexed_rz_circuit",
    "draw_circuit",
]
