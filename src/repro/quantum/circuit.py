"""Quantum circuit container.

A :class:`QuantumCircuit` is an ordered list of :class:`~repro.quantum.gates.Gate`
objects on a fixed number of qubits.  It is deliberately simulator-agnostic:
the state-vector engine (:mod:`repro.quantum.statevector`), the resource
estimator (:mod:`repro.quantum.resources`) and the ASCII renderer
(:mod:`repro.quantum.drawing`) all consume the same gate list.

Qubit 0 is the most significant bit of a basis-state index (big-endian), see
the package docstring.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import DimensionError
from .gates import Gate, standard_gate_matrix

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """Ordered list of gates acting on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Total number of qubits (data + ancillas).
    name:
        Optional label used by the drawing and reporting utilities.
    """

    def __init__(self, num_qubits: int, *, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise DimensionError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: list[Gate] = []

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
                f"num_gates={len(self._gates)})")

    @property
    def gates(self) -> tuple[Gate, ...]:
        """Immutable view of the gate list."""
        return tuple(self._gates)

    @property
    def dimension(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return 2**self.num_qubits

    # ------------------------------------------------------------------ #
    # generic appenders
    # ------------------------------------------------------------------ #
    def _check_qubits(self, qubits: Iterable[int]) -> None:
        for q in qubits:
            if not 0 <= int(q) < self.num_qubits:
                raise DimensionError(
                    f"qubit {q} out of range for a {self.num_qubits}-qubit circuit")

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append an already-built :class:`Gate` (validating qubit indices)."""
        self._check_qubits(gate.qubits)
        self._gates.append(gate)
        return self

    def add_gate(self, name: str, targets: Sequence[int] | int,
                 params: Sequence[float] = (), *, controls: Sequence[int] = (),
                 control_states: Sequence[int] | None = None) -> "QuantumCircuit":
        """Append a named gate (see :func:`standard_gate_matrix` for names)."""
        targets_t = (targets,) if isinstance(targets, (int, np.integer)) else tuple(targets)
        matrix = standard_gate_matrix(name, params)
        gate = Gate(name=name.lower(), targets=targets_t, matrix=matrix,
                    controls=tuple(controls),
                    control_states=tuple(control_states) if control_states else (),
                    params=tuple(float(p) for p in params))
        return self.append(gate)

    def unitary(self, matrix, qubits: Sequence[int] | int, *, name: str = "unitary",
                controls: Sequence[int] = (),
                control_states: Sequence[int] | None = None) -> "QuantumCircuit":
        """Append an arbitrary unitary block acting on ``qubits``."""
        qubits_t = (qubits,) if isinstance(qubits, (int, np.integer)) else tuple(qubits)
        gate = Gate(name=name, targets=qubits_t, matrix=np.asarray(matrix, dtype=complex),
                    controls=tuple(controls),
                    control_states=tuple(control_states) if control_states else ())
        return self.append(gate)

    # ------------------------------------------------------------------ #
    # single-qubit gates
    # ------------------------------------------------------------------ #
    def i(self, qubit: int) -> "QuantumCircuit":
        """Identity (useful as a barrier-like placeholder in drawings)."""
        return self.add_gate("i", qubit)

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self.add_gate("x", qubit)

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Y."""
        return self.add_gate("y", qubit)

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Z."""
        return self.add_gate("z", qubit)

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard."""
        return self.add_gate("h", qubit)

    def s(self, qubit: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self.add_gate("s", qubit)

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse phase gate S†."""
        return self.add_gate("sdg", qubit)

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        return self.add_gate("t", qubit)

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse T gate."""
        return self.add_gate("tdg", qubit)

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Rotation around X by ``theta``."""
        return self.add_gate("rx", qubit, (theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Rotation around Y by ``theta``."""
        return self.add_gate("ry", qubit, (theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Rotation around Z by ``theta``."""
        return self.add_gate("rz", qubit, (theta,))

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Phase gate ``diag(1, e^{iλ})``."""
        return self.add_gate("p", qubit, (lam,))

    def global_phase(self, lam: float) -> "QuantumCircuit":
        """Global phase ``e^{iλ}`` applied as a 1-qubit diagonal on qubit 0."""
        matrix = np.exp(1j * lam) * np.eye(2, dtype=complex)
        return self.unitary(matrix, 0, name="gphase")

    # ------------------------------------------------------------------ #
    # multi-qubit gates
    # ------------------------------------------------------------------ #
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-X (CNOT)."""
        return self.add_gate("x", target, controls=(control,))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self.add_gate("z", target, controls=(control,))

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled-RY."""
        return self.add_gate("ry", target, (theta,), controls=(control,))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled-RZ."""
        return self.add_gate("rz", target, (theta,), controls=(control,))

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled phase gate."""
        return self.add_gate("p", target, (lam,), controls=(control,))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP two qubits."""
        return self.add_gate("swap", (qubit_a, qubit_b))

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        """Toffoli (doubly-controlled X)."""
        return self.add_gate("x", target, controls=(control_a, control_b))

    def mcx(self, controls: Sequence[int], target: int,
            control_states: Sequence[int] | None = None) -> "QuantumCircuit":
        """Multi-controlled X, optionally with 0-controls (``control_states``)."""
        return self.add_gate("x", target, controls=tuple(controls),
                             control_states=control_states)

    def mcz(self, controls: Sequence[int], target: int,
            control_states: Sequence[int] | None = None) -> "QuantumCircuit":
        """Multi-controlled Z."""
        return self.add_gate("z", target, controls=tuple(controls),
                             control_states=control_states)

    def mcp(self, lam: float, controls: Sequence[int], target: int,
            control_states: Sequence[int] | None = None) -> "QuantumCircuit":
        """Multi-controlled phase gate."""
        return self.add_gate("p", target, (lam,), controls=tuple(controls),
                             control_states=control_states)

    def mcry(self, theta: float, controls: Sequence[int], target: int,
             control_states: Sequence[int] | None = None) -> "QuantumCircuit":
        """Multi-controlled RY."""
        return self.add_gate("ry", target, (theta,), controls=tuple(controls),
                             control_states=control_states)

    def mcrz(self, theta: float, controls: Sequence[int], target: int,
             control_states: Sequence[int] | None = None) -> "QuantumCircuit":
        """Multi-controlled RZ."""
        return self.add_gate("rz", target, (theta,), controls=tuple(controls),
                             control_states=control_states)

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def compose(self, other: "QuantumCircuit",
                qubit_map: Sequence[int] | None = None) -> "QuantumCircuit":
        """Append every gate of ``other``, optionally remapping its qubits.

        ``qubit_map[i]`` is the qubit of ``self`` onto which qubit ``i`` of
        ``other`` is placed; by default qubits map onto themselves.
        """
        if qubit_map is None:
            mapping = list(range(other.num_qubits))
        else:
            mapping = [int(q) for q in qubit_map]
            if len(mapping) != other.num_qubits:
                raise DimensionError("qubit_map length must equal other.num_qubits")
        self._check_qubits(mapping)
        for gate in other:
            remapped = Gate(
                name=gate.name,
                targets=tuple(mapping[q] for q in gate.targets),
                matrix=gate.matrix,
                controls=tuple(mapping[q] for q in gate.controls),
                control_states=gate.control_states,
                params=gate.params,
            )
            self.append(remapped)
        return self

    def inverse(self) -> "QuantumCircuit":
        """Return a new circuit implementing the adjoint of this one."""
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}†")
        for gate in reversed(self._gates):
            inv.append(gate.dagger())
        return inv

    def copy(self) -> "QuantumCircuit":
        """Shallow copy (gates are immutable so sharing them is safe)."""
        dup = QuantumCircuit(self.num_qubits, name=self.name)
        dup._gates = list(self._gates)
        return dup

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile(self, *, fusion: str | None = None,
                max_fused_qubits: int | None = None, cache: bool = True):
        """Lower the circuit to a :class:`~repro.quantum.plan.ExecutionPlan`.

        The plan is the compiled form every execution path replays (see
        :mod:`repro.quantum.plan`); compilation is cached process-wide on the
        exact gate bytes, so calling this repeatedly — or rebuilding an
        identical circuit — pays for the fusion pass once.
        """
        from .plan import compile_plan

        return compile_plan(self, fusion=fusion,
                            max_fused_qubits=max_fused_qubits, cache=cache)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def count_gates(self) -> dict[str, int]:
        """Histogram of gate names (controlled versions counted by base name
        with a ``c``/``mc`` prefix depending on the number of controls)."""
        counts: dict[str, int] = {}
        for gate in self._gates:
            if len(gate.controls) == 0:
                key = gate.name
            elif len(gate.controls) == 1:
                key = f"c{gate.name}"
            else:
                key = f"mc{gate.name}({len(gate.controls)})"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth: longest chain of gates sharing qubits."""
        level = [0] * self.num_qubits
        depth = 0
        for gate in self._gates:
            qubits = gate.qubits
            start = max(level[q] for q in qubits)
            for q in qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth
