"""Dense state-vector simulation engine.

The engine stores the ``2**n`` complex amplitudes of the register and applies
gates by reshaping the state into an ``n``-dimensional tensor of shape
``(2,) * n`` and contracting the gate matrix over the target axes
(``numpy.tensordot``), which is the standard ``O(2**n)``-per-gate dense
simulation technique.  Controlled gates are applied by slicing the tensor on
the control axes so only the activated sub-block is updated — no ``2**n x
2**n`` matrices are ever built during simulation.

Whole-circuit execution (:func:`apply_circuit`, :func:`apply_circuit_batched`)
is routed through the compiled :class:`~repro.quantum.plan.ExecutionPlan` IR:
the circuit is lowered once (gate fusion, diagonal fast paths — see
:mod:`repro.quantum.plan`) and the plan is replayed; ``fusion="none"``
selects the original per-gate loop, which the fused plans are verified
against to 1e-12.

Qubit 0 is the most significant bit of the basis-state index (big-endian).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DimensionError
from ..utils import check_power_of_two
from .circuit import QuantumCircuit
from .gates import Gate

__all__ = [
    "Statevector",
    "zero_state",
    "apply_gate",
    "apply_circuit",
    "apply_gate_batched",
    "apply_circuit_batched",
    "circuit_unitary",
]


class Statevector:
    """State of an ``n``-qubit register.

    Parameters
    ----------
    data:
        Complex amplitudes (length ``2**n``).  They are *not* renormalised:
        sub-normalised states legitimately appear after post-selection.
    """

    def __init__(self, data) -> None:
        arr = np.asarray(data, dtype=complex).reshape(-1)
        check_power_of_two(arr.shape[0], name="statevector length")
        self._data = arr
        self.num_qubits = int(arr.shape[0]).bit_length() - 1

    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """Flat amplitude array (length ``2**num_qubits``)."""
        return self._data

    @property
    def dimension(self) -> int:
        """Hilbert-space dimension."""
        return self._data.shape[0]

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector."""
        return float(np.linalg.norm(self._data))

    def normalized(self) -> "Statevector":
        """Return a unit-norm copy (raises on the zero vector)."""
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalise the zero state")
        return Statevector(self._data / n)

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities ``|amplitude|**2`` (not renormalised)."""
        return np.abs(self._data) ** 2

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|**2`` between the two *normalised* states."""
        a = self.normalized().data
        b = other.normalized().data
        return float(np.abs(np.vdot(a, b)) ** 2)

    def tensor(self, other: "Statevector") -> "Statevector":
        """Kronecker product ``self ⊗ other`` (self qubits become most significant)."""
        return Statevector(np.kron(self._data, other._data))

    def copy(self) -> "Statevector":
        """Deep copy."""
        return Statevector(self._data.copy())

    def __eq__(self, other) -> bool:  # pragma: no cover - convenience
        return isinstance(other, Statevector) and np.array_equal(self._data, other._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Statevector(num_qubits={self.num_qubits}, norm={self.norm():.6f})"


def zero_state(num_qubits: int) -> Statevector:
    """The computational basis state ``|0...0>`` on ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise DimensionError("num_qubits must be >= 1")
    data = np.zeros(2**num_qubits, dtype=complex)
    data[0] = 1.0
    return Statevector(data)


def basis_state(num_qubits: int, index: int) -> Statevector:
    """Computational basis state ``|index>``."""
    data = np.zeros(2**num_qubits, dtype=complex)
    if not 0 <= index < data.shape[0]:
        raise DimensionError(f"basis index {index} out of range")
    data[index] = 1.0
    return Statevector(data)


# ---------------------------------------------------------------------- #
# gate application
# ---------------------------------------------------------------------- #
def _apply_matrix(tensor: np.ndarray, matrix: np.ndarray,
                  targets: Sequence[int]) -> np.ndarray:
    """Contract ``matrix`` (acting on ``targets``) with the state tensor."""
    k = len(targets)
    num_qubits = tensor.ndim
    gate_tensor = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    # tensordot contracts the *last* k axes of gate_tensor (the "input" axes)
    # with the target axes of the state, then moves the resulting axes (which
    # end up first) back into place.
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), list(targets)))
    return np.moveaxis(moved, list(range(k)), list(targets))


def apply_gate(state: Statevector, gate: Gate) -> Statevector:
    """Apply one gate and return the new state (input is not modified)."""
    num_qubits = state.num_qubits
    for q in gate.qubits:
        if not 0 <= q < num_qubits:
            raise DimensionError(f"gate touches qubit {q} outside the {num_qubits}-qubit register")
    tensor = state.data.reshape((2,) * num_qubits)
    if not gate.controls:
        new_tensor = _apply_matrix(tensor, gate.matrix, gate.targets)
        return Statevector(new_tensor.reshape(-1))
    # controlled gate: slice out the activated control sub-block
    tensor = tensor.copy()
    index: list = [slice(None)] * num_qubits
    for qubit, state_bit in zip(gate.controls, gate.control_states):
        index[qubit] = 1 if state_bit else 0
    sub = tensor[tuple(index)]
    # target axes inside the sliced tensor: qubits keep their relative order,
    # but every control axis before them has been removed.
    controls_sorted = sorted(gate.controls)

    def shifted(q: int) -> int:
        return q - sum(1 for c in controls_sorted if c < q)

    sub_targets = [shifted(q) for q in gate.targets]
    new_sub = _apply_matrix(sub, gate.matrix, sub_targets)
    tensor[tuple(index)] = new_sub
    return Statevector(tensor.reshape(-1))


def apply_gate_batched(states: np.ndarray, gate: Gate) -> np.ndarray:
    """Apply one gate to a stack of states in a single contraction.

    ``states`` is a ``(B, 2**n)`` complex array (one state per row); the
    return value is a new array of the same shape.  The kernel is the one of
    :func:`apply_gate` with every qubit axis shifted by one to make room for
    the leading batch axis, so all ``B`` states are updated by one
    ``tensordot`` (one sliced contraction for controlled gates) instead of a
    Python loop — the engine-level
    :class:`repro.engine.batched.BatchedStatevector` wraps this.
    """
    states = np.asarray(states, dtype=complex)
    if states.ndim != 2:
        raise DimensionError(
            f"batched states must be a (B, 2**n) array, got shape {states.shape}")
    check_power_of_two(states.shape[1], name="statevector length")
    num_qubits = int(states.shape[1]).bit_length() - 1
    for q in gate.qubits:
        if not 0 <= q < num_qubits:
            raise DimensionError(
                f"gate touches qubit {q} outside the {num_qubits}-qubit register")
    tensor = states.reshape((states.shape[0],) + (2,) * num_qubits)
    if not gate.controls:
        new_tensor = _apply_matrix(tensor, gate.matrix,
                                   [q + 1 for q in gate.targets])
        return new_tensor.reshape(states.shape[0], -1)
    # controlled gate: slice out the activated control sub-block; the batch
    # axis survives the slicing, so all B states update together.
    tensor = tensor.copy()
    index: list = [slice(None)] * (num_qubits + 1)
    for qubit, state_bit in zip(gate.controls, gate.control_states):
        index[qubit + 1] = 1 if state_bit else 0
    sub = tensor[tuple(index)]
    controls_sorted = sorted(gate.controls)

    def shifted(q: int) -> int:
        # axis of qubit q inside the sliced tensor: +1 for the batch axis,
        # minus one per control axis removed before it.
        return q + 1 - sum(1 for c in controls_sorted if c < q)

    new_sub = _apply_matrix(sub, gate.matrix, [shifted(q) for q in gate.targets])
    tensor[tuple(index)] = new_sub
    return tensor.reshape(states.shape[0], -1)


def apply_circuit_batched(circuit: QuantumCircuit, states: np.ndarray, *,
                          fusion: str | None = None) -> np.ndarray:
    """Run ``circuit`` on a ``(B, 2**n)`` stack of states (one sweep for all).

    The circuit is lowered to a cached
    :class:`~repro.quantum.plan.ExecutionPlan` and the plan sweeps the whole
    stack; ``fusion="none"`` instead replays the legacy per-gate loop (the
    reference path the fused plans are tested against).
    """
    current = np.asarray(states, dtype=complex)
    if current.ndim != 2:
        raise DimensionError(
            f"batched states must be a (B, 2**n) array, got shape {current.shape}")
    if current.shape[1] != circuit.dimension:
        raise DimensionError(
            f"states have dimension {current.shape[1]} but circuit expects "
            f"{circuit.dimension}")
    if fusion == "none":
        for gate in circuit:
            current = apply_gate_batched(current, gate)
        return current
    return circuit.compile(fusion=fusion).apply_batched(current)


def apply_circuit(circuit: QuantumCircuit, state: Statevector | None = None, *,
                  fusion: str | None = None) -> Statevector:
    """Run ``circuit`` on ``state`` (default ``|0...0>``) and return the result.

    Execution goes through the compiled
    :class:`~repro.quantum.plan.ExecutionPlan` of the circuit (cached on the
    exact gate bytes, see :mod:`repro.quantum.plan`); pass ``fusion="none"``
    for the legacy gate-by-gate loop, which is the unfused reference path.
    """
    current = zero_state(circuit.num_qubits) if state is None else state
    if current.num_qubits != circuit.num_qubits:
        raise DimensionError(
            f"state has {current.num_qubits} qubits but circuit expects {circuit.num_qubits}")
    if fusion == "none":
        for gate in circuit:
            current = apply_gate(current, gate)
        return current
    return Statevector(circuit.compile(fusion=fusion).apply(current.data))


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Full ``2**n x 2**n`` unitary of a circuit (for tests and small circuits).

    Built column by column by simulating each basis state, so the cost is
    ``O(4**n * gates)`` — fine for the small registers used in this project.
    """
    dim = circuit.dimension
    unitary = np.zeros((dim, dim), dtype=complex)
    plan = circuit.compile()   # one compilation for all 2**n columns
    for j in range(dim):
        col = basis_state(circuit.num_qubits, j)
        unitary[:, j] = plan.apply(col.data)
    return unitary
