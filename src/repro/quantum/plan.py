"""Compiled execution-plan IR: fuse a circuit once, run it everywhere.

A :class:`QuantumCircuit` is a *description*: an ordered list of gates.  Every
execution path of the library (single statevector, ``(B, 2**n)`` batches, the
QSVT backends, the engine cache) replays that description — and the gate list
is fixed the moment it is built, so replaying it gate by gate repeats work
that could be done once.  This module introduces the compile step between the
two: an :class:`ExecutionPlan` is a flat sequence of contraction ops
(:class:`PlanOp`) lowered from a circuit by :func:`compile_plan`,

* **fused dense unitaries** — adjacent gates acting on overlapping qubit sets
  are merged into one matrix on the union of their qubits, bounded by a
  configurable ``max_fused_qubits`` width.  Two gates on *nested* qubit sets
  (one a subset of the other) always fuse regardless of the width cap, since
  the merged op is no wider than the wider operand — this is what collapses
  the QSVT alternation ``U · e^{iφ(2Π−I)} · U† · ...`` (block-encoding on all
  block qubits, projector phase on the ancilla subset) into a handful of
  contractions per sweep;
* **diagonal fast paths** — ops whose fused matrix is exactly diagonal
  (projector phases, ``rz``/``p``/``z`` runs) are applied as a broadcast
  elementwise multiply instead of a ``tensordot``;
* **control-sliced blocks** — controlled gates too wide to expand densely keep
  the slice-the-control-axes kernel of the per-gate simulator.

Plans are shape-polymorphic: the same compiled op sequence runs on a single
``2**n`` amplitude vector (:meth:`ExecutionPlan.apply`) and on a ``(B, 2**n)``
batch (:meth:`ExecutionPlan.apply_batched`) — the batch axis is just one more
leading tensor axis.

Compilation is cached process-wide in a small LRU (:func:`plan_cache`) keyed
on the exact gate bytes (:func:`circuit_plan_fingerprint`), so rebuilding an
identical circuit — e.g. the ``±θ`` QSVT circuits reconstructed per solve —
hits the cache instead of re-running the fusion pass.

``fusion="none"`` lowers one op per gate with no fusion and no diagonal
detection; it performs exactly the contractions of the legacy per-gate loop
and is the reference the fused paths are tested against (1e-12 agreement).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import DimensionError
from .gates import Gate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .circuit import QuantumCircuit

__all__ = [
    "PlanOp",
    "ExecutionPlan",
    "compile_plan",
    "circuit_plan_fingerprint",
    "PlanCache",
    "plan_cache",
    "DEFAULT_FUSION",
    "DEFAULT_MAX_FUSED_QUBITS",
    "FUSION_MODES",
]

#: fusion mode used when callers pass ``fusion=None``.
DEFAULT_FUSION = "greedy"

#: widest fused dense unitary (in qubits) built by the greedy pass; nested
#: qubit sets fuse beyond this since they never grow the wider operand.
DEFAULT_MAX_FUSED_QUBITS = 4

FUSION_MODES = ("none", "greedy")


# ---------------------------------------------------------------------- #
# contraction kernel (shared by every op kind)
# ---------------------------------------------------------------------- #
def _contract(tensor: np.ndarray, matrix: np.ndarray,
              axes: Sequence[int]) -> np.ndarray:
    """Contract ``matrix`` (acting on ``axes`` of the state tensor)."""
    k = len(axes)
    gate_tensor = matrix.reshape((2,) * (2 * k))
    moved = np.tensordot(gate_tensor, tensor,
                         axes=(list(range(k, 2 * k)), list(axes)))
    return np.moveaxis(moved, list(range(k)), list(axes))


# ---------------------------------------------------------------------- #
# plan ops
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlanOp:
    """One contraction of an :class:`ExecutionPlan`.

    Attributes
    ----------
    kind:
        ``"unitary"`` (dense matrix over ``qubits``), ``"diagonal"`` (the
        matrix is exactly diagonal; applied as an elementwise multiply),
        ``"controlled"`` (matrix over ``qubits`` applied only on the activated
        control sub-block, via control-axis slicing) or ``"shift"`` (an
        optionally controlled cyclic increment ``|x⟩ → |x + shift mod 2^k⟩``
        over ``k`` *contiguous* target qubits, applied as one ``np.roll`` —
        the O(2^n) zero-payload kernel behind the banded block-encoding's
        shift circuits).
    qubits:
        Target qubits the matrix acts on (``qubits[0]`` most significant).
        ``shift`` ops additionally require the qubits to be contiguous and
        ascending, with no control qubit strictly between them.
    matrix:
        ``(2^k, 2^k)`` unitary for ``unitary``/``controlled`` ops (``None``
        for diagonal ops).
    diagonal:
        Length-``2^k`` diagonal for ``diagonal`` ops (``None`` otherwise).
    controls / control_states:
        Control qubits and their activation states (``controlled`` and
        ``shift`` ops).
    shift:
        Cyclic increment of ``shift`` ops (e.g. ``+1`` for ``S|x⟩=|x+1⟩``,
        ``-1`` for its adjoint); ignored by the other kinds.
    source_gates:
        Number of circuit gates fused into this op.
    """

    kind: str
    qubits: tuple[int, ...]
    matrix: np.ndarray | None = field(default=None, repr=False)
    diagonal: np.ndarray | None = field(default=None, repr=False)
    controls: tuple[int, ...] = ()
    control_states: tuple[int, ...] = ()
    shift: int = 0
    source_gates: int = 1

    # ------------------------------------------------------------------ #
    def payload_bytes(self) -> int:
        """Bytes of numerical payload carried by the op."""
        total = 0
        if self.matrix is not None:
            total += self.matrix.nbytes
        if self.diagonal is not None:
            total += self.diagonal.nbytes
        return total

    def apply(self, tensor: np.ndarray, offset: int) -> np.ndarray:
        """Apply the op to a state tensor (``offset`` leading batch axes)."""
        if self.kind == "diagonal":
            # ``qubits`` is sorted (fusion emits sorted blocks), so the diag
            # axes already appear in register order; interleaving singleton
            # axes makes the factor broadcast against the state tensor.
            targeted = set(self.qubits)
            view_shape = [2 if (axis - offset) in targeted else 1
                          for axis in range(tensor.ndim)]
            return tensor * self.diagonal.reshape(view_shape)
        if self.kind == "unitary":
            return _contract(tensor, self.matrix,
                             [q + offset for q in self.qubits])
        if self.kind == "shift":
            if not self.controls:
                return self._roll(tensor, [q + offset for q in self.qubits])
            tensor = tensor.copy()
            index: list = [slice(None)] * tensor.ndim
            for qubit, state_bit in zip(self.controls, self.control_states):
                index[qubit + offset] = 1 if state_bit else 0
            sub = tensor[tuple(index)]
            controls_sorted = sorted(self.controls)
            axes = [q + offset - sum(1 for c in controls_sorted if c < q)
                    for q in self.qubits]
            tensor[tuple(index)] = self._roll(sub, axes)
            return tensor
        # controlled: slice the activated sub-block, contract, write back
        tensor = tensor.copy()
        index = [slice(None)] * tensor.ndim
        for qubit, state_bit in zip(self.controls, self.control_states):
            index[qubit + offset] = 1 if state_bit else 0
        sub = tensor[tuple(index)]
        controls_sorted = sorted(self.controls)

        def shifted(q: int) -> int:
            return q + offset - sum(1 for c in controls_sorted if c < q)

        new_sub = _contract(sub, self.matrix,
                            [shifted(q) for q in self.qubits])
        tensor[tuple(index)] = new_sub
        return tensor

    def _roll(self, sub: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        """Cyclic increment over contiguous axes: merge, ``np.roll``, split.

        ``np.roll(a, +1)`` satisfies ``out[x] = a[x-1]`` — amplitude at
        basis state ``|x⟩`` moves to ``|x+1 mod 2^k⟩``, i.e. the cyclic
        shift operator ``S`` of the banded block-encoding.
        """
        lead, k = axes[0], len(axes)
        if list(axes) != list(range(lead, lead + k)):
            raise DimensionError(
                "shift ops require contiguous ascending target axes, got "
                f"{tuple(axes)}")
        shape = sub.shape
        merged = sub.reshape(shape[:lead] + (1 << k,) + shape[lead + k:])
        return np.roll(merged, self.shift, axis=lead).reshape(shape)


# ---------------------------------------------------------------------- #
# execution plan
# ---------------------------------------------------------------------- #
class ExecutionPlan:
    """Compiled, immutable op sequence for one circuit.

    Built by :func:`compile_plan`; execute with :meth:`apply` (one state) or
    :meth:`apply_batched` (a ``(B, 2**n)`` stack).  The plan is stateless and
    thread-safe: the same instance can be replayed concurrently.
    """

    def __init__(self, num_qubits: int, ops: Sequence[PlanOp], *,
                 source_gate_count: int, fusion: str,
                 max_fused_qubits: int) -> None:
        self.num_qubits = int(num_qubits)
        self.ops = tuple(ops)
        self.source_gate_count = int(source_gate_count)
        self.fusion = fusion
        self.max_fused_qubits = int(max_fused_qubits)

    # ------------------------------------------------------------------ #
    @property
    def num_contractions(self) -> int:
        """Contractions per sweep (the quantity fusion minimises)."""
        return len(self.ops)

    @property
    def dimension(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return 2**self.num_qubits

    def payload_bytes(self) -> int:
        """Total bytes of op matrices/diagonals (for byte-accounted caches)."""
        return sum(op.payload_bytes() for op in self.ops)

    def stats(self) -> dict:
        """Compilation summary: op-kind histogram and the fusion ratio."""
        kinds: dict[str, int] = {}
        for op in self.ops:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        contractions = max(self.num_contractions, 1)
        return {
            "fusion": self.fusion,
            "max_fused_qubits": self.max_fused_qubits,
            "source_gates": self.source_gate_count,
            "contractions": self.num_contractions,
            "fusion_ratio": self.source_gate_count / contractions,
            "op_kinds": kinds,
            "payload_bytes": self.payload_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ExecutionPlan(num_qubits={self.num_qubits}, "
                f"contractions={self.num_contractions}, "
                f"source_gates={self.source_gate_count}, fusion={self.fusion!r})")

    # ------------------------------------------------------------------ #
    def apply(self, data) -> np.ndarray:
        """Run the plan on one amplitude vector (length ``2**n``)."""
        arr = np.asarray(data, dtype=complex).reshape(-1)
        if arr.shape[0] != self.dimension:
            raise DimensionError(
                f"state has dimension {arr.shape[0]} but the plan expects "
                f"{self.dimension}")
        tensor = arr.reshape((2,) * self.num_qubits)
        for op in self.ops:
            tensor = op.apply(tensor, 0)
        return tensor.reshape(-1)

    def apply_batched(self, states) -> np.ndarray:
        """Run the plan on a ``(B, 2**n)`` amplitude stack (one sweep for all)."""
        arr = np.asarray(states, dtype=complex)
        if arr.ndim != 2:
            raise DimensionError(
                f"batched states must be a (B, 2**n) array, got shape {arr.shape}")
        if arr.shape[1] != self.dimension:
            raise DimensionError(
                f"states have dimension {arr.shape[1]} but the plan expects "
                f"{self.dimension}")
        tensor = arr.reshape((arr.shape[0],) + (2,) * self.num_qubits)
        for op in self.ops:
            tensor = op.apply(tensor, 1)
        return tensor.reshape(arr.shape[0], -1)


# ---------------------------------------------------------------------- #
# fingerprinting and the process-wide plan cache
# ---------------------------------------------------------------------- #
def circuit_plan_fingerprint(circuit: "QuantumCircuit") -> str:
    """Content hash of a circuit's gate list (exact matrix bytes).

    Two circuits with identical gates (same targets, controls, control states
    and matrix bytes, in the same order, on the same register size) fingerprint
    equally — this keys the plan cache, so the rebuilt-but-identical circuits
    of repeated QSVT applications share one compilation.
    """
    digest = hashlib.sha256()
    digest.update(int(circuit.num_qubits).to_bytes(4, "little"))
    for gate in circuit:
        meta = (gate.targets, gate.controls, gate.control_states)
        digest.update(repr(meta).encode())
        digest.update(np.ascontiguousarray(gate.matrix).tobytes())
    return digest.hexdigest()


class PlanCache:
    """Small thread-safe LRU of compiled plans, keyed on circuit bytes.

    Bounded both by entry count and by **payload bytes** (fused plans can
    hold full ``2**n x 2**n`` dense unitaries, so an entry count alone does
    not bound memory); while the byte budget is exceeded, least-recently-used
    plans are dropped — except the most recent one, so an oversized plan
    still caches.  ``hits`` / ``misses`` counters make the reuse observable
    (the fusion benchmark and the plan tests assert on them), mirroring
    :class:`repro.engine.cache.CompiledSolverCache` one level down.
    """

    def __init__(self, maxsize: int = 64,
                 max_bytes: int | None = 128 * 1024 * 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None for unbounded)")
        self.maxsize = int(maxsize)
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, ExecutionPlan] = OrderedDict()
        self._entry_bytes: dict[tuple, int] = {}
        self._total_bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: tuple) -> ExecutionPlan | None:
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return plan

    def put(self, key: tuple, plan: ExecutionPlan) -> None:
        entry_bytes = plan.payload_bytes()
        with self._lock:
            previous = self._entry_bytes.pop(key, None)
            if previous is not None:
                self._total_bytes -= previous
            self._entries[key] = plan
            self._entries.move_to_end(key)
            self._entry_bytes[key] = entry_bytes
            self._total_bytes += entry_bytes
            while len(self._entries) > self.maxsize:
                self._drop_oldest_locked()
            if self.max_bytes is not None:
                while self._total_bytes > self.max_bytes and len(self._entries) > 1:
                    self._drop_oldest_locked()

    def _drop_oldest_locked(self) -> None:
        key, _ = self._entries.popitem(last=False)
        self._total_bytes -= self._entry_bytes.pop(key, 0)
        self._evictions += 1

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._entry_bytes.clear()
            self._total_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        """Compilations skipped because an identical circuit was seen."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that required running the fusion pass."""
        return self._misses

    def stats(self) -> dict:
        """Counter snapshot (hits, misses, evictions, size, bytes, hit rate)."""
        with self._lock:
            size = len(self._entries)
            total_bytes = self._total_bytes
        total = self._hits + self._misses
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "size": size,
            "total_bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "hit_rate": (self._hits / total) if total else 0.0,
        }


_PLAN_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide plan cache consulted by :func:`compile_plan`."""
    return _PLAN_CACHE


# ---------------------------------------------------------------------- #
# fusion pass
# ---------------------------------------------------------------------- #
def _embed_matrix(matrix: np.ndarray, gate_qubits: Sequence[int],
                  op_qubits: Sequence[int]) -> np.ndarray:
    """Expand ``matrix`` (on ``gate_qubits``, in that order) to ``op_qubits``.

    ``op_qubits`` must be a superset of ``gate_qubits``; the result acts as
    the identity on the extra qubits and respects the ``op_qubits`` ordering
    (first qubit most significant).
    """
    k = len(op_qubits)
    m = len(gate_qubits)
    if m == k and tuple(gate_qubits) == tuple(op_qubits):
        return np.asarray(matrix, dtype=complex)
    full = np.kron(np.asarray(matrix, dtype=complex), np.eye(2**(k - m)))
    order = list(gate_qubits) + [q for q in op_qubits if q not in gate_qubits]
    perm = [order.index(q) for q in op_qubits]
    tensor = full.reshape((2,) * (2 * k))
    tensor = np.transpose(tensor, perm + [k + p for p in perm])
    return np.ascontiguousarray(tensor.reshape(2**k, 2**k))


def _is_diagonal(matrix: np.ndarray) -> bool:
    """Structurally diagonal (exact zeros off the diagonal, no tolerance)."""
    return np.count_nonzero(matrix - np.diag(np.diag(matrix))) == 0


@dataclass
class _PendingBlock:
    """Dense unitary being grown by the greedy fusion pass."""

    qubits: tuple[int, ...]          # sorted
    matrix: np.ndarray
    source_gates: int

    def absorb(self, gate_qubits: Sequence[int], matrix: np.ndarray) -> None:
        union = tuple(sorted(set(self.qubits) | set(gate_qubits)))
        gate_full = _embed_matrix(matrix, gate_qubits, union)
        pending_full = _embed_matrix(self.matrix, self.qubits, union)
        self.qubits = union
        self.matrix = gate_full @ pending_full
        self.source_gates += 1

    def to_op(self) -> PlanOp:
        if _is_diagonal(self.matrix):
            return PlanOp(kind="diagonal", qubits=self.qubits,
                          diagonal=np.ascontiguousarray(np.diag(self.matrix)),
                          source_gates=self.source_gates)
        return PlanOp(kind="unitary", qubits=self.qubits, matrix=self.matrix,
                      source_gates=self.source_gates)


def _lower_gate_verbatim(gate: Gate) -> PlanOp:
    """One op per gate, reproducing the per-gate loop's contractions exactly."""
    if gate.controls:
        return PlanOp(kind="controlled", qubits=gate.targets,
                      matrix=np.asarray(gate.matrix, dtype=complex),
                      controls=gate.controls, control_states=gate.control_states)
    return PlanOp(kind="unitary", qubits=gate.targets,
                  matrix=np.asarray(gate.matrix, dtype=complex))


def _compile_none(circuit: "QuantumCircuit") -> list[PlanOp]:
    return [_lower_gate_verbatim(gate) for gate in circuit]


def _compile_greedy(circuit: "QuantumCircuit", max_fused_qubits: int) -> list[PlanOp]:
    ops: list[PlanOp] = []
    pending: _PendingBlock | None = None

    def flush() -> None:
        nonlocal pending
        if pending is not None:
            ops.append(pending.to_op())
            pending = None

    for gate in circuit:
        pending_set = set(pending.qubits) if pending is not None else None
        if gate.controls:
            # expand a controlled gate densely only when it stays narrow or
            # fits inside the block being grown; otherwise it is a barrier
            # handled by the control-slicing kernel.
            width = len(gate.qubits)
            inside = pending_set is not None and set(gate.qubits) <= pending_set
            if width > max_fused_qubits and not inside:
                flush()
                ops.append(_lower_gate_verbatim(gate))
                continue
            gate_qubits: tuple[int, ...] = gate.qubits   # controls first
            matrix = gate.expanded_matrix()
        else:
            gate_qubits = gate.targets
            matrix = gate.matrix
        if pending is None:
            pending = _PendingBlock(qubits=tuple(sorted(gate_qubits)),
                                    matrix=_embed_matrix(
                                        matrix, gate_qubits,
                                        tuple(sorted(gate_qubits))),
                                    source_gates=1)
            continue
        union = set(pending.qubits) | set(gate_qubits)
        nested = (set(gate_qubits) <= set(pending.qubits)
                  or set(pending.qubits) <= set(gate_qubits))
        if len(union) <= max_fused_qubits or nested:
            pending.absorb(gate_qubits, matrix)
        else:
            flush()
            pending = _PendingBlock(qubits=tuple(sorted(gate_qubits)),
                                    matrix=_embed_matrix(
                                        matrix, gate_qubits,
                                        tuple(sorted(gate_qubits))),
                                    source_gates=1)
    flush()
    return ops


def compile_plan(circuit: "QuantumCircuit", *, fusion: str | None = None,
                 max_fused_qubits: int | None = None,
                 cache: bool = True) -> ExecutionPlan:
    """Lower a circuit to an :class:`ExecutionPlan`.

    Parameters
    ----------
    circuit:
        The circuit to compile.
    fusion:
        ``"greedy"`` (default) merges adjacent gates on overlapping qubit sets
        up to ``max_fused_qubits`` (nested sets always merge); ``"none"``
        lowers one op per gate, replicating the legacy per-gate loop.
    max_fused_qubits:
        Width cap of fused dense unitaries (default
        :data:`DEFAULT_MAX_FUSED_QUBITS`).
    cache:
        Consult/populate the process-wide :func:`plan_cache` (keyed on the
        exact gate bytes), so identical circuits compile once.
    """
    mode = DEFAULT_FUSION if fusion is None else str(fusion)
    if mode not in FUSION_MODES:
        raise ValueError(f"unknown fusion mode {fusion!r}; expected one of "
                         f"{FUSION_MODES}")
    width = DEFAULT_MAX_FUSED_QUBITS if max_fused_qubits is None else int(max_fused_qubits)
    if width < 1:
        raise ValueError("max_fused_qubits must be >= 1")
    key = None
    if cache:
        key = (circuit_plan_fingerprint(circuit), mode, width)
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            return cached
    if mode == "none":
        ops = _compile_none(circuit)
    else:
        ops = _compile_greedy(circuit, width)
    plan = ExecutionPlan(circuit.num_qubits, ops,
                         source_gate_count=len(circuit), fusion=mode,
                         max_fused_qubits=width)
    if key is not None:
        _PLAN_CACHE.put(key, plan)
    return plan
