"""Low-level rounding primitives used by :class:`repro.precision.Precision`."""

from __future__ import annotations

import numpy as np

__all__ = ["chop_mantissa", "round_to_precision", "machine_epsilon"]


def chop_mantissa(x, significand_bits: int) -> np.ndarray:
    """Round ``x`` to ``significand_bits`` mantissa bits (round-to-nearest).

    The exponent range of float64 is kept, which is the usual way of emulating
    bfloat16-like formats in software (see Higham & Pranesh, "Simulating
    low-precision floating-point arithmetic", 2019): the value is scaled so
    that its mantissa becomes an integer of the requested width, rounded, and
    scaled back.

    Parameters
    ----------
    x:
        Real array (any shape).  NaN/Inf and zeros pass through unchanged.
    significand_bits:
        Number of stored fraction bits of the target format.
    """
    if significand_bits < 1:
        raise ValueError("significand_bits must be >= 1")
    arr = np.asarray(x, dtype=np.float64)
    if significand_bits >= 52:
        return arr.copy()
    out = arr.copy()
    finite = np.isfinite(arr) & (arr != 0.0)
    if not np.any(finite):
        return out
    vals = arr[finite]
    # decompose v = m * 2**e with m in [0.5, 1) and round the mantissa only;
    # this stays exact for subnormals and never overflows the scaling factor.
    mantissa, exponent = np.frexp(vals)
    quantum = float(2 ** (significand_bits + 1))
    rounded_mantissa = np.round(mantissa * quantum) / quantum
    out[finite] = np.ldexp(rounded_mantissa, exponent)
    return out


def round_to_precision(x, precision) -> np.ndarray:
    """Round ``x`` through ``precision`` (a name, dtype or ``Precision``).

    Complex input is rounded component-wise.  This is a convenience wrapper so
    call-sites do not need to import :func:`get_precision` themselves.
    """
    from .floating import get_precision  # local import to avoid a cycle

    prec = get_precision(precision)
    arr = np.asarray(x)
    if np.issubdtype(arr.dtype, np.complexfloating):
        return prec.round_complex(arr)
    return prec.round(arr)


def machine_epsilon(precision) -> float:
    """Machine epsilon of a registered format (``2**-significand_bits``)."""
    from .floating import get_precision

    return get_precision(precision).machine_epsilon
