"""Precision contexts: bundles of the two (or three) precisions used by
mixed-precision iterative refinement.

Algorithm 1 of the paper uses a *working* precision ``u`` (residual and
update) and a *low* precision ``u_l`` (factorisation / solve).  The
three-precision variant of Carson & Higham (2018) adds a *residual* precision
``u_r <= u`` used only for computing ``b - A x``.  :class:`PrecisionContext`
captures those choices and provides the convenience operations the refinement
drivers need (rounding operands, computing residuals at the right precision).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils import is_linear_operator
from .floating import DOUBLE, SINGLE, Precision, get_precision

__all__ = ["PrecisionContext"]


@dataclass(frozen=True)
class PrecisionContext:
    """The precisions used by one run of mixed-precision refinement.

    Parameters
    ----------
    working:
        High precision ``u`` used to accumulate the solution and, by default,
        the residual (paper notation: ``u``).
    low:
        Low precision ``u_l`` used by the inner solver (classical LU baseline).
        For the quantum solver the inner accuracy is ``ε_l`` and this field is
        only used for storage-size accounting.
    residual:
        Optional extra precision ``u_r`` for the residual computation; defaults
        to ``working`` (the two-precision scheme of Algorithm 1).
    """

    working: Precision = DOUBLE
    low: Precision = SINGLE
    residual: Precision | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "working", get_precision(self.working))
        object.__setattr__(self, "low", get_precision(self.low))
        if self.residual is not None:
            object.__setattr__(self, "residual", get_precision(self.residual))

    # ------------------------------------------------------------------ #
    @property
    def residual_precision(self) -> Precision:
        """Precision actually used for residuals (``residual`` or ``working``)."""
        return self.residual if self.residual is not None else self.working

    @property
    def u(self) -> float:
        """Unit roundoff of the working precision."""
        return self.working.unit_roundoff

    @property
    def u_low(self) -> float:
        """Unit roundoff of the low precision."""
        return self.low.unit_roundoff

    @property
    def u_residual(self) -> float:
        """Unit roundoff of the residual precision."""
        return self.residual_precision.unit_roundoff

    # ------------------------------------------------------------------ #
    def round_working(self, x) -> np.ndarray:
        """Round an array to the working precision."""
        return _round(self.working, x)

    def round_low(self, x) -> np.ndarray:
        """Round an array to the low precision."""
        return _round(self.low, x)

    def residual_of(self, a: np.ndarray, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Compute ``b - A x`` at the residual precision.

        The matrix-vector product is evaluated in float64 and the result is
        rounded through the residual precision, matching the standard software
        emulation of extended-precision residuals.
        """
        if is_linear_operator(a):
            # matrix-free operators apply in float64 natively
            r = np.asarray(b, dtype=np.float64) - (a @ np.asarray(x, dtype=np.float64))
        else:
            r = np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64) @ np.asarray(
                x, dtype=np.float64)
        return _round(self.residual_precision, r)

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        parts = [f"u={self.working.name}", f"u_l={self.low.name}"]
        if self.residual is not None:
            parts.append(f"u_r={self.residual.name}")
        return ", ".join(parts)


def _round(precision: Precision, x) -> np.ndarray:
    arr = np.asarray(x)
    if np.issubdtype(arr.dtype, np.complexfloating):
        return precision.round_complex(arr)
    return precision.round(arr)
