"""Floating-point format descriptors.

A :class:`Precision` bundles everything the mixed-precision algorithms need to
know about a floating-point format:

* its **unit roundoff** ``u`` (half the machine epsilon), the quantity that
  appears in all the error bounds of Sec. II-B and III-B of the paper;
* how to **round** an array "through" the format, either by casting to a
  native numpy dtype (fp16/fp32/fp64) or by truncating the mantissa when the
  format has no numpy representation (bfloat16, quarter precision);
* the number of **significand bits** and **exponent bits**, used by the cost
  model to translate flops into data volumes.

The registry pattern (``register_precision``/``get_precision``) lets tests and
ablation benchmarks define custom formats (e.g. an 8-bit "quantum read-out"
precision) without touching library code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..exceptions import PrecisionError
from .rounding import chop_mantissa

__all__ = [
    "Precision",
    "register_precision",
    "get_precision",
    "list_precisions",
    "HALF",
    "SINGLE",
    "DOUBLE",
    "BFLOAT16",
    "QUARTER",
]


@dataclass(frozen=True)
class Precision:
    """A floating-point format.

    Parameters
    ----------
    name:
        Short identifier (``"fp64"``, ``"fp32"``, ...).
    significand_bits:
        Number of stored mantissa bits (not counting the implicit leading 1).
    exponent_bits:
        Number of exponent bits; only used for reporting/data-volume purposes.
    dtype:
        Native numpy dtype when one exists, otherwise ``None`` and rounding is
        emulated by mantissa truncation on top of float64.
    """

    name: str
    significand_bits: int
    exponent_bits: int
    dtype: Optional[np.dtype] = None

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def machine_epsilon(self) -> float:
        """Distance between 1.0 and the next representable number: ``2**-t``."""
        return float(2.0 ** (-self.significand_bits))

    @property
    def unit_roundoff(self) -> float:
        """Unit roundoff ``u = 2**-(t+1)`` (half the machine epsilon)."""
        return float(2.0 ** (-(self.significand_bits + 1)))

    @property
    def bits(self) -> int:
        """Total storage width in bits (sign + exponent + significand)."""
        return 1 + self.exponent_bits + self.significand_bits

    @property
    def bytes_per_element(self) -> float:
        """Storage footprint of one scalar, in bytes."""
        return self.bits / 8.0

    # ------------------------------------------------------------------ #
    # rounding
    # ------------------------------------------------------------------ #
    def round(self, x) -> np.ndarray:
        """Round ``x`` through this format and return a float64 array.

        Native formats are round-tripped through their dtype so that overflow
        and subnormal behaviour follow IEEE-754; emulated formats keep the
        float64 exponent range but truncate the mantissa to
        ``significand_bits`` bits (round-to-nearest).
        """
        arr = np.asarray(x, dtype=np.float64)
        if self.dtype is not None:
            if np.issubdtype(arr.dtype, np.complexfloating):
                raise PrecisionError("complex arrays must be rounded component-wise")
            return arr.astype(self.dtype).astype(np.float64)
        return chop_mantissa(arr, self.significand_bits)

    def round_complex(self, x) -> np.ndarray:
        """Round a complex array by rounding real and imaginary parts separately."""
        arr = np.asarray(x)
        if not np.issubdtype(arr.dtype, np.complexfloating):
            return self.round(arr)
        real = self.round(arr.real)
        imag = self.round(arr.imag)
        return real + 1j * imag

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} (u={self.unit_roundoff:.2e})"


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_REGISTRY: dict[str, Precision] = {}


def register_precision(precision: Precision, *aliases: str) -> Precision:
    """Add ``precision`` (and optional aliases) to the global registry."""
    for key in (precision.name, *aliases):
        _REGISTRY[key.lower()] = precision
    return precision


def get_precision(precision) -> Precision:
    """Resolve a precision from a name, a numpy dtype, or pass through a :class:`Precision`."""
    if isinstance(precision, Precision):
        return precision
    if isinstance(precision, type) and issubclass(precision, np.floating):
        precision = np.dtype(precision).name
    if isinstance(precision, np.dtype):
        precision = precision.name
    if isinstance(precision, str):
        key = precision.lower()
        if key in _REGISTRY:
            return _REGISTRY[key]
        raise PrecisionError(
            f"unknown precision {precision!r}; known: {sorted(_REGISTRY)}")
    raise PrecisionError(f"cannot interpret {precision!r} as a precision")


def list_precisions() -> list[str]:
    """Names of all registered formats (aliases included)."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------- #
# standard formats
# ---------------------------------------------------------------------- #
DOUBLE = register_precision(
    Precision("fp64", significand_bits=52, exponent_bits=11, dtype=np.dtype(np.float64)),
    "double", "float64", "d",
)
SINGLE = register_precision(
    Precision("fp32", significand_bits=23, exponent_bits=8, dtype=np.dtype(np.float32)),
    "single", "float32", "s",
)
HALF = register_precision(
    Precision("fp16", significand_bits=10, exponent_bits=5, dtype=np.dtype(np.float16)),
    "half", "float16", "h",
)
BFLOAT16 = register_precision(
    Precision("bf16", significand_bits=7, exponent_bits=8, dtype=None),
    "bfloat16",
)
QUARTER = register_precision(
    Precision("fp8", significand_bits=3, exponent_bits=4, dtype=None),
    "quarter", "e4m3",
)
