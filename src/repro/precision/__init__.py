"""Floating-point precision emulation.

Mixed-precision iterative refinement (Sec. II-B of the paper) combines a
*low* precision ``u_l`` — used by the expensive solver — with a *high* working
precision ``u`` used for residuals and updates.  On the quantum side the role
of ``u_l`` is played by the QSVT solve accuracy ``ε_l``, but the classical
baselines of this repository (LU-based refinement, Algorithm 1) need genuine
low-precision arithmetic.  This sub-package provides:

* :class:`Precision` — a named floating-point format with its unit roundoff;
* rounding helpers that round arbitrary arrays *through* a format
  (including formats that have no native numpy dtype, such as bfloat16 or
  "quarter" precision, emulated by mantissa truncation);
* low-precision matrix kernels (``matvec``/``matmul``/``triangular solve``)
  that round after every elementary operation block, mimicking what dedicated
  hardware (GPU tensor cores, the paper's hypothetical QPU) would return.
"""

from .floating import (
    HALF,
    SINGLE,
    DOUBLE,
    BFLOAT16,
    QUARTER,
    Precision,
    get_precision,
    list_precisions,
    register_precision,
)
from .rounding import round_to_precision, chop_mantissa, machine_epsilon
from .contexts import PrecisionContext
from .simulate import (
    low_precision_matmul,
    low_precision_matvec,
    low_precision_residual,
    low_precision_sum,
)

__all__ = [
    "HALF",
    "SINGLE",
    "DOUBLE",
    "BFLOAT16",
    "QUARTER",
    "Precision",
    "get_precision",
    "list_precisions",
    "register_precision",
    "round_to_precision",
    "chop_mantissa",
    "machine_epsilon",
    "PrecisionContext",
    "low_precision_matmul",
    "low_precision_matvec",
    "low_precision_residual",
    "low_precision_sum",
]
