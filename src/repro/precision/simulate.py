"""Low-precision linear-algebra kernels.

These helpers emulate what a low-precision accelerator returns for the basic
operations used by the classical mixed-precision baseline (Algorithm 1 of the
paper): operands are rounded to the target format, the operation is carried
out in float64, and the result is rounded again.  Rounding the *result* of
each kernel (rather than after every scalar multiply-add) is the standard
coarse model; it under-estimates accumulation error slightly but preserves
the ``O(u_l)`` behaviour the refinement analysis relies on, and the property
tests in ``tests/precision`` verify exactly that contract.
"""

from __future__ import annotations

import numpy as np

from .floating import get_precision
from .rounding import round_to_precision

__all__ = [
    "low_precision_matvec",
    "low_precision_matmul",
    "low_precision_residual",
    "low_precision_sum",
]


def low_precision_matvec(a, x, precision) -> np.ndarray:
    """Matrix-vector product ``A @ x`` computed "in" the given precision."""
    prec = get_precision(precision)
    a_low = round_to_precision(a, prec)
    x_low = round_to_precision(x, prec)
    return round_to_precision(a_low @ x_low, prec)


def low_precision_matmul(a, b, precision) -> np.ndarray:
    """Matrix-matrix product ``A @ B`` computed "in" the given precision."""
    prec = get_precision(precision)
    a_low = round_to_precision(a, prec)
    b_low = round_to_precision(b, prec)
    return round_to_precision(a_low @ b_low, prec)


def low_precision_residual(a, x, b, precision) -> np.ndarray:
    """Residual ``b - A x`` evaluated entirely in the given precision."""
    prec = get_precision(precision)
    ax = low_precision_matvec(a, x, prec)
    b_low = round_to_precision(b, prec)
    return round_to_precision(b_low - ax, prec)


def low_precision_sum(x, y, precision) -> np.ndarray:
    """Element-wise sum ``x + y`` evaluated in the given precision."""
    prec = get_precision(precision)
    return round_to_precision(
        round_to_precision(x, prec) + round_to_precision(y, prec), prec)
