"""Thomas algorithm for tridiagonal systems.

Sec. III-C4 of the paper points out that the 1-D Poisson system is solvable in
``O(N)`` flops classically; the Thomas algorithm below is that reference
solver, used by the Poisson examples to provide the "ground truth" solution at
negligible cost.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionError, SingularMatrixError
from ..utils import as_vector, check_square

__all__ = ["thomas_solve"]


def thomas_solve(a, b) -> np.ndarray:
    """Solve a tridiagonal system ``A x = b`` in ``O(N)`` operations.

    Parameters
    ----------
    a:
        Either a dense square matrix whose entries outside the three central
        diagonals are (numerically) zero, or a tuple ``(lower, diag, upper)``
        of the three diagonals (``lower`` and ``upper`` have length ``N-1``).
    b:
        Right-hand side of length ``N``.
    """
    if isinstance(a, tuple):
        lower, diag, upper = (np.asarray(v, dtype=np.float64) for v in a)
        n = diag.shape[0]
        if lower.shape[0] != n - 1 or upper.shape[0] != n - 1:
            raise DimensionError("diagonal lengths must be (N-1, N, N-1)")
    else:
        mat = check_square(a, name="A").astype(np.float64, copy=False)
        n = mat.shape[0]
        band_mask = np.abs(np.triu(mat, 2)) + np.abs(np.tril(mat, -2))
        if np.any(band_mask > 1e-12 * max(1.0, np.abs(mat).max())):
            raise DimensionError("matrix is not tridiagonal")
        diag = np.diag(mat).copy()
        lower = np.diag(mat, -1).copy()
        upper = np.diag(mat, 1).copy()
    rhs = as_vector(b, dtype=np.float64, name="b").copy()
    if rhs.shape[0] != n:
        raise DimensionError("right-hand side length mismatch")

    c_prime = np.zeros(n - 1) if n > 1 else np.zeros(0)
    d_prime = np.zeros(n)
    if diag[0] == 0.0:
        raise SingularMatrixError("zero pivot in Thomas algorithm")
    if n > 1:
        c_prime[0] = upper[0] / diag[0]
    d_prime[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i - 1] * c_prime[i - 1] if i - 1 < len(c_prime) else diag[i]
        if denom == 0.0:
            raise SingularMatrixError("zero pivot in Thomas algorithm")
        if i < n - 1:
            c_prime[i] = upper[i] / denom
        d_prime[i] = (rhs[i] - lower[i - 1] * d_prime[i - 1]) / denom
    x = np.zeros(n)
    x[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d_prime[i] - c_prime[i] * x[i + 1]
    return x
