"""Classical numerical linear algebra substrate.

The paper's hybrid solver keeps several classical responsibilities on the CPU:
computing residuals, updating the solution, estimating the condition number
used to size the polynomial approximation, factorising matrices for the
classical baselines, and generating the test problems of Sec. IV (random
matrices with a prescribed condition number, the 1-D Poisson matrix).  All of
those building blocks live here and are written from scratch on top of numpy
(scipy is used only in tests for cross-checking).
"""

from .norms import (
    forward_error,
    relative_forward_error,
    scaled_residual,
    spectral_norm,
)
from .generators import (
    poisson_1d_matrix,
    poisson_2d_matrix,
    random_matrix_with_condition_number,
    random_rhs,
    random_spd_matrix,
    random_unitary,
    tridiagonal_toeplitz,
)
from .lu import LUFactorization, lu_factor, lu_solve
from .triangular import solve_lower_triangular, solve_upper_triangular
from .qr import householder_qr, solve_least_squares
from .cholesky import cholesky_factor, cholesky_solve
from .cond import condition_number, estimate_condition_number, estimate_spectral_norm
from .iterative import conjugate_gradient, jacobi, power_iteration
from .tridiagonal import thomas_solve
from .operators import (
    BandedOperator,
    CSROperator,
    DiagonalShiftOperator,
    KroneckerSumOperator,
    StructuredOperator,
    is_structured_operator,
    operator_from_state,
)

__all__ = [
    "StructuredOperator",
    "BandedOperator",
    "CSROperator",
    "KroneckerSumOperator",
    "DiagonalShiftOperator",
    "is_structured_operator",
    "operator_from_state",
    "spectral_norm",
    "scaled_residual",
    "forward_error",
    "relative_forward_error",
    "random_matrix_with_condition_number",
    "random_spd_matrix",
    "random_unitary",
    "random_rhs",
    "poisson_1d_matrix",
    "poisson_2d_matrix",
    "tridiagonal_toeplitz",
    "LUFactorization",
    "lu_factor",
    "lu_solve",
    "solve_lower_triangular",
    "solve_upper_triangular",
    "householder_qr",
    "solve_least_squares",
    "cholesky_factor",
    "cholesky_solve",
    "condition_number",
    "estimate_condition_number",
    "estimate_spectral_norm",
    "conjugate_gradient",
    "jacobi",
    "power_iteration",
    "thomas_solve",
]
