"""Test-problem generators.

Section IV of the paper evaluates the solver on

* random ``N x N`` matrices (``N = 16``) with a *prescribed condition number*
  ``κ``, and a random right-hand side normalised to ``||b|| = 1``;
* the tridiagonal matrix of the 1-D Poisson equation (Sec. III-C4), whose
  condition number grows like ``O(N^2)``.

The generators below construct exactly those problems.  Random matrices with a
given condition number are built as ``A = W Σ Vᵀ`` with Haar-random orthogonal
factors and logarithmically spaced singular values between ``1/κ`` and ``1``,
so that ``κ₂(A) = κ`` holds by construction (up to rounding).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionError
from ..utils import as_generator, check_power_of_two

__all__ = [
    "random_unitary",
    "random_matrix_with_condition_number",
    "random_spd_matrix",
    "random_rhs",
    "tridiagonal_toeplitz",
    "poisson_1d_matrix",
    "poisson_2d_matrix",
]


def random_unitary(n: int, *, rng=None, complex_valued: bool = False) -> np.ndarray:
    """Haar-distributed random orthogonal (or unitary) ``n x n`` matrix.

    Obtained from the QR decomposition of a Gaussian matrix with the standard
    sign/phase correction that makes the distribution Haar (Mezzadri 2007).
    """
    gen = as_generator(rng)
    if complex_valued:
        z = gen.standard_normal((n, n)) + 1j * gen.standard_normal((n, n))
    else:
        z = gen.standard_normal((n, n))
    q, r = np.linalg.qr(z)
    d = np.diagonal(r)
    phases = d / np.abs(d)
    return q * phases


def _singular_value_profile(n: int, condition_number: float, distribution: str) -> np.ndarray:
    """Singular values in ``[1/κ, 1]`` following the requested spacing."""
    if condition_number < 1.0:
        raise ValueError("condition_number must be >= 1")
    if n == 1:
        return np.array([1.0])
    if distribution == "logarithmic":
        return np.logspace(0.0, -np.log10(condition_number), n)
    if distribution == "linear":
        return np.linspace(1.0, 1.0 / condition_number, n)
    if distribution == "cluster":
        # one small singular value, the rest clustered at 1 — a classically
        # hard profile for iterative methods, easy for direct ones.
        sigma = np.ones(n)
        sigma[-1] = 1.0 / condition_number
        return sigma
    raise ValueError(f"unknown singular value distribution {distribution!r}")


def random_matrix_with_condition_number(
    n: int,
    condition_number: float,
    *,
    rng=None,
    distribution: str = "logarithmic",
    symmetric: bool = False,
) -> np.ndarray:
    """Random real matrix with 2-norm condition number exactly ``κ``.

    Parameters
    ----------
    n:
        Dimension of the (square) matrix.
    condition_number:
        Target 2-norm condition number ``κ >= 1``.  The spectral norm of the
        result is 1, so the singular values span ``[1/κ, 1]``.
    rng:
        Seed or generator for reproducibility.
    distribution:
        Spacing of the singular values: ``"logarithmic"`` (default, matches
        the paper's hardest case), ``"linear"`` or ``"cluster"``.
    symmetric:
        When ``True`` return a symmetric positive-definite matrix (``W = V``).
    """
    if n < 1:
        raise DimensionError("matrix dimension must be >= 1")
    gen = as_generator(rng)
    sigma = _singular_value_profile(n, float(condition_number), distribution)
    w = random_unitary(n, rng=gen)
    v = w if symmetric else random_unitary(n, rng=gen)
    return (w * sigma) @ v.T


def random_spd_matrix(n: int, condition_number: float, *, rng=None,
                      distribution: str = "logarithmic") -> np.ndarray:
    """Random symmetric positive-definite matrix with prescribed ``κ``."""
    return random_matrix_with_condition_number(
        n, condition_number, rng=rng, distribution=distribution, symmetric=True)


def random_rhs(n: int, *, rng=None, normalized: bool = True) -> np.ndarray:
    """Random right-hand side; normalised to ``||b|| = 1`` like in Sec. IV."""
    gen = as_generator(rng)
    b = gen.standard_normal(n)
    if normalized:
        b = b / np.linalg.norm(b)
    return b


def tridiagonal_toeplitz(n: int, diagonal: float, off_diagonal: float) -> np.ndarray:
    """Dense tridiagonal Toeplitz matrix ``toeplitz(diagonal, off_diagonal)``."""
    if n < 1:
        raise DimensionError("dimension must be >= 1")
    a = np.zeros((n, n))
    np.fill_diagonal(a, diagonal)
    idx = np.arange(n - 1)
    a[idx, idx + 1] = off_diagonal
    a[idx + 1, idx] = off_diagonal
    return a


def poisson_1d_matrix(n: int, *, scaled: bool = True) -> np.ndarray:
    """Finite-difference matrix of the 1-D Poisson equation (Eq. 7 of the paper).

    Parameters
    ----------
    n:
        Number of interior grid points ``N`` (the matrix is ``N x N``).  The
        quantum pipeline additionally requires ``N`` to be a power of two, but
        the classical code accepts any ``N >= 1``.
    scaled:
        When ``True`` (default) the matrix is divided by ``h² = 1/(N+1)²`` as
        in Eq. (7); otherwise the unscaled stencil ``tridiag(-1, 2, -1)`` is
        returned, which has the same condition number.
    """
    a = tridiagonal_toeplitz(n, 2.0, -1.0)
    if scaled:
        h = 1.0 / (n + 1)
        a = a / h**2
    return a


def poisson_2d_matrix(n: int) -> np.ndarray:
    """Five-point finite-difference Laplacian on an ``n x n`` grid (dimension ``n²``).

    Used by the extended examples to show the solver on a larger, structured
    problem; built as ``I ⊗ T + T ⊗ I`` with ``T = tridiag(-1, 2, -1)``.
    """
    t = tridiagonal_toeplitz(n, 2.0, -1.0)
    eye = np.eye(n)
    return np.kron(eye, t) + np.kron(t, eye)


def poisson_qubit_sized(num_qubits: int, *, scaled: bool = False) -> np.ndarray:
    """1-D Poisson matrix of dimension ``2**num_qubits`` (quantum-friendly)."""
    n = check_power_of_two(2**num_qubits)
    return poisson_1d_matrix(n, scaled=scaled)
