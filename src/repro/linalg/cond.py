"""Condition-number computation and estimation.

The degree of the QSVT inverse polynomial (Eq. 4 of the paper) is driven by
the condition number ``κ`` of the matrix, so the solver needs either the exact
value (cheap for the ``N = 16`` experiments, obtained from the SVD) or an
estimate.  The estimator implemented here combines

* power iteration on ``AᵀA`` for ``σ_max``, and
* inverse power iteration (reusing one LU factorisation) for ``σ_min``,

which is the classical preprocessing a CPU would run before a QPU off-load.
"""

from __future__ import annotations

import numpy as np

from ..utils import as_generator, check_square
from .iterative import golub_kahan_bidiagonalize, power_iteration
from .lu import LUFactorization, lu_factor
from .triangular import solve_lower_triangular, solve_upper_triangular

__all__ = ["condition_number", "estimate_spectral_norm",
           "estimate_condition_number", "lanczos_eigenvalue_estimates",
           "lanczos_spectrum_estimate", "estimate_singular_bounds",
           "estimate_operator_condition"]


def condition_number(a) -> float:
    """Exact 2-norm condition number ``σ_max / σ_min``.

    Dense matrices go through the SVD.  Structured operators
    (:mod:`repro.linalg.operators`) use their **exact** eigenvalue-bound
    condition number when available (symmetric definite spectra), and
    otherwise densify — which is wall-guarded by ``to_dense``, so an
    operator too large for an SVD raises instead of thrashing (pin
    ``kappa`` or supply ``spectrum_bounds`` in that case).
    """
    from ..utils import is_linear_operator

    if is_linear_operator(a):
        bound = getattr(a, "condition_bound", lambda: None)()
        if bound is not None:
            return float(bound)
        return condition_number(a.to_dense())
    mat = check_square(a, name="A")
    sigma = np.linalg.svd(mat, compute_uv=False)
    smin = float(sigma.min())
    if smin == 0.0:
        return float("inf")
    return float(sigma.max() / smin)


def estimate_spectral_norm(a, *, iterations: int = 200, rng=None,
                           tolerance: float = 1e-12) -> float:
    """Estimate ``||A||₂ = σ_max`` by power iteration on ``Aᵀ A``."""
    mat = np.asarray(a, dtype=np.float64)
    gen = as_generator(rng)

    def matvec(v):
        return mat.T @ (mat @ v)

    eigval, _ = power_iteration(matvec, mat.shape[1], iterations=iterations,
                                rng=gen, tolerance=tolerance)
    return float(np.sqrt(max(eigval, 0.0)))


def _solve_transposed(factorization: LUFactorization, b: np.ndarray) -> np.ndarray:
    """Solve ``Aᵀ x = b`` reusing ``P A = L U``.

    With ``A = Pᵀ L U`` we have ``Aᵀ = Uᵀ Lᵀ P``, so the solve proceeds as
    ``Uᵀ y = b`` (forward substitution), ``Lᵀ z = y`` (backward substitution),
    and finally ``x = Pᵀ z`` i.e. ``x[p] = z``.
    """
    y = solve_lower_triangular(factorization.upper.T, b)
    z = solve_upper_triangular(factorization.lower.T, y)
    x = np.empty_like(z)
    x[factorization.permutation] = z
    return x


def lanczos_eigenvalue_estimates(matvec, n: int, *, steps: int | None = None,
                                 rng=None) -> np.ndarray:
    """Ritz values of a symmetric operator from reorthogonalised Lanczos.

    Runs ``k = min(n, steps)`` Lanczos steps (full reorthogonalisation — the
    basis is small) driven only by ``matvec``, and returns the eigenvalues
    of the tridiagonal projection, sorted ascending.  At ``k = n`` this is
    the exact spectrum; for ``k < n`` the extreme Ritz values converge
    first and interior ones are approximations — callers widen/shrink by a
    safety factor accordingly.
    """
    gen = as_generator(rng)
    k = min(int(n), 120 if steps is None else int(steps))
    q = gen.standard_normal(int(n))
    q /= np.linalg.norm(q)
    basis = [q]
    alphas: list[float] = []
    betas: list[float] = []
    for _ in range(k):
        w = np.asarray(matvec(basis[-1]), dtype=np.float64)
        alpha = float(basis[-1] @ w)
        alphas.append(alpha)
        w = w - alpha * basis[-1]
        if len(basis) > 1:
            w = w - betas[-1] * basis[-2]
        for prev in basis:  # full reorthogonalisation
            w = w - (prev @ w) * prev
        beta = float(np.linalg.norm(w))
        if beta <= 1e-14 * max(1.0, abs(alpha)) or len(alphas) == k:
            break
        betas.append(beta)
        basis.append(w / beta)
    tri = np.diag(alphas)
    if betas:
        off = np.asarray(betas)
        tri += np.diag(off, 1) + np.diag(off, -1)
    return np.sort(np.linalg.eigvalsh(tri))


def lanczos_spectrum_estimate(matvec, n: int, *, steps: int | None = None,
                              rng=None, safety_factor: float = 1.05
                              ) -> tuple[float, float, float]:
    """``(λ_min, λ_max, min |λ|)`` estimates for a symmetric operator.

    The extremes are widened and the interior magnitude shrunk by
    ``safety_factor``, erring on the side of a *larger* κ — the QSVT
    polynomial must cover the whole spectrum, so under-estimating
    ``min |λ|`` is safe and over-estimating it is not.  This is what lets
    indefinite Helmholtz workloads run matrix-free without an analytic κ.
    """
    ritz = lanczos_eigenvalue_estimates(matvec, n, steps=steps, rng=rng)
    lo, hi = float(ritz[0]), float(ritz[-1])
    spread = max(abs(lo), abs(hi))
    lo_w = lo - (safety_factor - 1.0) * spread
    hi_w = hi + (safety_factor - 1.0) * spread
    interior = float(np.min(np.abs(ritz))) / safety_factor
    return (lo_w, hi_w, interior)


def estimate_singular_bounds(matvec, rmatvec, n: int, *,
                             steps: int | None = None, rng=None,
                             safety_factor: float = 1.05
                             ) -> tuple[float, float]:
    """``(σ_min, σ_max)`` estimates of a square *non-symmetric* operator.

    Golub–Kahan bidiagonalisation (matrix-free, ``A v`` / ``Aᵀ u`` only)
    followed by an SVD of the small bidiagonal projection.  As with
    :func:`lanczos_spectrum_estimate` the safety factor widens σ_max and
    shrinks σ_min so the derived κ is an over-estimate.
    """
    alphas, betas = golub_kahan_bidiagonalize(matvec, rmatvec, n,
                                              steps=steps, rng=rng)
    bidiag = np.diag(alphas)
    if betas.size:
        bidiag += np.diag(betas, -1)
    sigma = np.linalg.svd(bidiag, compute_uv=False)
    return (float(sigma.min() / safety_factor),
            float(sigma.max() * safety_factor))


def estimate_operator_condition(operator, *, steps: int | None = None,
                                rng=None, safety_factor: float = 1.05
                                ) -> float:
    """Matrix-free κ₂ estimate for a structured operator.

    Symmetric operators go through :func:`lanczos_spectrum_estimate`
    (``max |λ| / min |λ|`` — valid for indefinite spectra too);
    non-symmetric ones through :func:`estimate_singular_bounds`.  Exact
    ``condition_bound`` values, when the structure provides them, win.
    """
    bound = getattr(operator, "condition_bound", lambda: None)()
    if bound is not None:
        return float(bound)
    n = operator.shape[0]
    symmetric = bool(getattr(operator, "is_symmetric", False))
    if symmetric:
        lo, hi, interior = lanczos_spectrum_estimate(
            operator.matvec, n, steps=steps, rng=rng,
            safety_factor=safety_factor)
        smax = max(abs(lo), abs(hi))
        if interior <= 0.0:
            return float("inf")
        return float(smax / interior)
    smin, smax = estimate_singular_bounds(
        operator.matvec, operator.rmatvec, n, steps=steps, rng=rng,
        safety_factor=safety_factor)
    if smin <= 0.0:
        return float("inf")
    return float(smax / smin)


def estimate_condition_number(a, *, iterations: int = 200, rng=None,
                              tolerance: float = 1e-12,
                              safety_factor: float = 1.0) -> float:
    """Estimate ``κ₂(A)`` without a full SVD.

    ``σ_max`` comes from power iteration on ``AᵀA`` and ``1/σ_min`` from power
    iteration on ``(A Aᵀ)^{-1}`` implemented with two triangular solves per
    step on a single LU factorisation of ``A`` — the ``O(N³)`` one-off
    classical pre-processing discussed in Sec. III-C2 of the paper.

    Parameters
    ----------
    safety_factor:
        Multiplier applied to the estimate (>= 1).  The QSVT polynomial must
        cover the whole spectrum, so callers typically pass 1.1–1.5 to guard
        against under-estimation.
    """
    mat = check_square(a, name="A").astype(np.float64, copy=False)
    gen = as_generator(rng)
    sigma_max = estimate_spectral_norm(mat, iterations=iterations, rng=gen,
                                       tolerance=tolerance)
    factorization = lu_factor(mat)

    def inv_gram_matvec(v):
        # (A Aᵀ)^{-1} v = A^{-T} (A^{-1} v): both solves reuse the LU factors.
        y = factorization.solve(v)
        return _solve_transposed(factorization, y)

    eigval, _ = power_iteration(inv_gram_matvec, mat.shape[0],
                                iterations=iterations, rng=gen,
                                tolerance=tolerance)
    if eigval <= 0.0:
        return float("inf")
    sigma_min = 1.0 / np.sqrt(eigval)
    return float(safety_factor * sigma_max / sigma_min)
