"""Norms and error measures used throughout the paper.

The stopping criterion of the iterative refinement (Sec. III-A) is based on
the *scaled residual* ``ω = ||b - A x̃|| / ||b||``; Equation (5) of the paper
relates it to the relative forward error via the condition number:
``ω/κ <= ||x - x̃||/||x|| <= κ ω``.
"""

from __future__ import annotations

import numpy as np

from ..utils import as_vector, check_system

__all__ = [
    "spectral_norm",
    "scaled_residual",
    "forward_error",
    "relative_forward_error",
]


def spectral_norm(a) -> float:
    """Spectral norm (largest singular value) of a matrix."""
    return float(np.linalg.norm(np.asarray(a), 2))


def scaled_residual(a, x, b) -> float:
    """Scaled residual ``ω = ||b - A x|| / ||b||`` (Euclidean norms).

    This is the quantity tracked at every iteration of Algorithm 2 and plotted
    in Figures 3 and 4 of the paper.  It is invariant under a common rescaling
    of ``A x`` and ``b``, which matters because quantum solvers normalise the
    right-hand side (Remark 2).
    """
    mat, rhs = check_system(a, b)
    vec = as_vector(x, name="x")
    norm_b = float(np.linalg.norm(rhs))
    if norm_b == 0.0:
        raise ZeroDivisionError("scaled residual undefined for b = 0")
    return float(np.linalg.norm(rhs - mat @ vec) / norm_b)


def forward_error(x_true, x_approx) -> float:
    """Absolute forward error ``||x - x̃||``."""
    xt = as_vector(x_true, name="x_true")
    xa = as_vector(x_approx, name="x_approx")
    return float(np.linalg.norm(xt - xa))


def relative_forward_error(x_true, x_approx) -> float:
    """Relative forward error ``||x - x̃|| / ||x||``."""
    xt = as_vector(x_true, name="x_true")
    norm = float(np.linalg.norm(xt))
    if norm == 0.0:
        raise ZeroDivisionError("relative forward error undefined for x_true = 0")
    return forward_error(x_true, x_approx) / norm
