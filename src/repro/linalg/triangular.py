"""Triangular solves with optional precision emulation.

Forward and backward substitution are the work-horses of the LU-based
classical baseline (Algorithm 1 of the paper).  Both routines accept an
optional ``precision`` argument: when given, every intermediate vector is
rounded through that format, emulating a solve executed entirely on
low-precision hardware.  The implementation is vectorised column-by-column
(saxpy form) so the cost stays ``O(N²)`` numpy operations instead of
``O(N²)`` Python-level scalar operations.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SingularMatrixError
from ..precision import round_to_precision
from ..utils import as_vector, check_square

__all__ = ["solve_lower_triangular", "solve_upper_triangular"]


def _maybe_round(x: np.ndarray, precision) -> np.ndarray:
    if precision is None:
        return x
    return round_to_precision(x, precision)


def solve_lower_triangular(l, b, *, unit_diagonal: bool = False,
                           precision=None) -> np.ndarray:
    """Solve ``L y = b`` with ``L`` lower triangular (forward substitution).

    Parameters
    ----------
    l:
        Lower-triangular matrix (entries above the diagonal are ignored).
    b:
        Right-hand side vector.
    unit_diagonal:
        When ``True`` the diagonal of ``L`` is assumed to be one (as produced
        by Doolittle LU) and is not read.
    precision:
        Optional precision name/format; intermediate results are rounded
        through it to emulate a low-precision solve.
    """
    mat = check_square(l, name="L").astype(np.float64, copy=False)
    rhs = as_vector(b, name="b").astype(np.float64, copy=True)
    n = mat.shape[0]
    y = np.zeros(n, dtype=np.float64)
    for i in range(n):
        s = rhs[i] - mat[i, :i] @ y[:i]
        if not unit_diagonal:
            diag = mat[i, i]
            if diag == 0.0:
                raise SingularMatrixError(f"zero diagonal entry at row {i}")
            s = s / diag
        y[i] = s
        if precision is not None:
            y[i] = float(_maybe_round(np.asarray(y[i]), precision))
    return _maybe_round(y, precision) if precision is not None else y


def solve_upper_triangular(u, b, *, precision=None) -> np.ndarray:
    """Solve ``U x = b`` with ``U`` upper triangular (backward substitution)."""
    mat = check_square(u, name="U").astype(np.float64, copy=False)
    rhs = as_vector(b, name="b").astype(np.float64, copy=True)
    n = mat.shape[0]
    x = np.zeros(n, dtype=np.float64)
    for i in range(n - 1, -1, -1):
        diag = mat[i, i]
        if diag == 0.0:
            raise SingularMatrixError(f"zero diagonal entry at row {i}")
        s = (rhs[i] - mat[i, i + 1:] @ x[i + 1:]) / diag
        x[i] = s
        if precision is not None:
            x[i] = float(_maybe_round(np.asarray(x[i]), precision))
    return _maybe_round(x, precision) if precision is not None else x
