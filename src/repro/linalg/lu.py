"""LU factorisation with partial pivoting, with optional precision emulation.

This is the classical "low-precision factorisation" used by Algorithm 1 of the
paper: the expensive ``O(N³)`` factorisation runs at precision ``u_l`` while
the refinement loop corrects the error at precision ``u``.  Rounding is
applied to the Schur-complement update at every elimination step, which is the
dominant source of low-precision error and reproduces the ``O(u_l κ)``
contraction factor predicted by the theory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SingularMatrixError
from ..precision import round_to_precision
from ..utils import as_vector, check_square
from .triangular import solve_lower_triangular, solve_upper_triangular

__all__ = ["LUFactorization", "lu_factor", "lu_solve"]


@dataclass(frozen=True)
class LUFactorization:
    """Result of :func:`lu_factor`: ``P A = L U`` with row-permutation ``P``.

    Attributes
    ----------
    lower:
        Unit lower-triangular factor ``L``.
    upper:
        Upper-triangular factor ``U``.
    permutation:
        Row permutation as an index array ``p`` such that ``A[p] = L @ U``.
    precision:
        Precision the factorisation was computed in (``None`` = full float64).
    """

    lower: np.ndarray
    upper: np.ndarray
    permutation: np.ndarray
    precision: object | None = None

    @property
    def n(self) -> int:
        """Dimension of the factorised matrix."""
        return self.lower.shape[0]

    def solve(self, b, *, precision=None) -> np.ndarray:
        """Solve ``A x = b`` reusing the stored factors.

        The triangular solves run at ``precision`` when given, otherwise at
        the precision stored with the factorisation — mirroring the remark of
        Sec. II-B that the factors from step 0 are reused at every refinement
        step.
        """
        prec = precision if precision is not None else self.precision
        rhs = as_vector(b, name="b")
        permuted = rhs[self.permutation]
        y = solve_lower_triangular(self.lower, permuted, unit_diagonal=True,
                                   precision=prec)
        return solve_upper_triangular(self.upper, y, precision=prec)

    def reconstruct(self) -> np.ndarray:
        """Return ``Pᵀ L U``, i.e. the matrix the factorisation represents."""
        n = self.n
        a = self.lower @ self.upper
        out = np.empty_like(a)
        out[self.permutation] = a
        return out


def lu_factor(a, *, precision=None, pivot: bool = True) -> LUFactorization:
    """LU factorisation with partial pivoting (Doolittle, outer-product form).

    Parameters
    ----------
    a:
        Square matrix to factorise.
    precision:
        Optional precision name/format.  The input is rounded to it and every
        Schur-complement update is rounded, emulating a factorisation executed
        on low-precision hardware.
    pivot:
        Partial (row) pivoting; disabling it is only safe for diagonally
        dominant or SPD matrices and exists mostly for the tests.
    """
    mat = check_square(a, name="A").astype(np.float64, copy=True)
    if precision is not None:
        mat = round_to_precision(mat, precision)
    n = mat.shape[0]
    perm = np.arange(n)
    lower = np.eye(n)
    for k in range(n - 1):
        if pivot:
            pivot_row = k + int(np.argmax(np.abs(mat[k:, k])))
            if pivot_row != k:
                mat[[k, pivot_row], :] = mat[[pivot_row, k], :]
                lower[[k, pivot_row], :k] = lower[[pivot_row, k], :k]
                perm[[k, pivot_row]] = perm[[pivot_row, k]]
        pivot_val = mat[k, k]
        if pivot_val == 0.0:
            raise SingularMatrixError(f"zero pivot encountered at step {k}")
        multipliers = mat[k + 1:, k] / pivot_val
        if precision is not None:
            multipliers = round_to_precision(multipliers, precision)
        lower[k + 1:, k] = multipliers
        update = mat[k + 1:, k:] - np.outer(multipliers, mat[k, k:])
        if precision is not None:
            update = round_to_precision(update, precision)
        mat[k + 1:, k:] = update
        mat[k + 1:, k] = 0.0
    if mat[n - 1, n - 1] == 0.0:
        raise SingularMatrixError("matrix is singular to working precision")
    upper = np.triu(mat)
    return LUFactorization(lower=lower, upper=upper, permutation=perm,
                           precision=precision)


def lu_solve(a, b, *, precision=None) -> np.ndarray:
    """Factor-and-solve convenience wrapper around :func:`lu_factor`."""
    return lu_factor(a, precision=precision).solve(b)
