"""Structured linear operators: banded, CSR, Kronecker-sum and shifted forms.

The paper's headline workloads are *structured* matrices — the tridiagonal
Poisson matrix of Eq. (7), its Kronecker-sum generalisations to 2-D/3-D grids,
graph Laplacians — yet a dense ``N x N`` array costs ``O(N²)`` memory before
the first solve even starts, which walls the problem suite at ``N ≈ 4096``.
A :class:`StructuredOperator` stores only the nonzero structure (``O(nnz)``)
and exposes exactly the contract the rest of the stack needs:

* ``matvec`` / ``matmat`` / ``@`` — application to vectors and stacked
  right-hand sides, which is all the residual updates, the scale recovery of
  Remark 2 and the matrix-free Chebyshev route of the ideal backend consume;
* ``nnz_bytes()`` — resident bytes of the structured storage, used by the
  compiled-solver cache and the shared-memory registry instead of ``N²·8``;
* ``eigenvalue_bounds()`` — **exact** extreme eigenvalues where the structure
  admits them (symmetric tridiagonal Toeplitz bands, Kronecker sums of
  symmetric terms, shifted spectra), which replaces the dense SVD in the
  subnormalisation/κ sizing of the QSVT polynomial;
* ``solve()`` — a classical structure-exploiting direct solve (Thomas /
  banded LU, Kronecker fast diagonalisation, conjugate gradients) providing
  the checkable reference solutions of the problem suite at ``O(nnz)``-ish
  cost instead of ``O(N³)``;
* ``fingerprint_parts()`` / ``to_state()`` — content hashing and zero-copy
  shared-memory transport of the structured storage without densifying.

Operators are **immutable**: every component array is copied once at
construction (unless already frozen) and marked read-only, so fingerprints
stay valid forever and caches may share operator objects across threads and
solver entries without defensive copies.  ``to_dense()`` is lazy — nothing is
materialised until explicitly requested — and refuses above a size wall
unless forced, so an accidental densification of an ``N = 32768`` operator
fails loudly instead of thrashing.
"""

from __future__ import annotations

import abc
import json
import os

import numpy as np

from ..exceptions import DimensionError
from .tridiagonal import thomas_solve

__all__ = [
    "StructuredOperator",
    "BandedOperator",
    "CSROperator",
    "KroneckerSumOperator",
    "DiagonalShiftOperator",
    "is_structured_operator",
    "operator_from_state",
    "operator_state_payload",
    "operator_from_payload",
    "DENSE_MATERIALIZE_WALL",
    "DENSE_WALL_ENV_VAR",
    "dense_wall",
    "OPERATOR_STATE_VERSION",
]

#: default dimension above which implicit ``to_dense()`` (and the problem
#: families' legacy dense assembly) refuses — an ``N x N`` float64 array
#: above this wall is ≥ 0.5 GiB.  Override at runtime with the
#: ``REPRO_DENSE_WALL`` environment variable; pass ``force=True`` to
#: ``to_dense`` for a one-off escape hatch.
DENSE_MATERIALIZE_WALL = 8192

#: environment variable overriding :data:`DENSE_MATERIALIZE_WALL` — one knob
#: shared by every dense-materialisation guard in the stack.
DENSE_WALL_ENV_VAR = "REPRO_DENSE_WALL"


def dense_wall() -> int:
    """The effective dense-materialisation wall (env override or default)."""
    return int(os.environ.get(DENSE_WALL_ENV_VAR, DENSE_MATERIALIZE_WALL))


#: version tag of the ``operator_state_payload`` layout; bump when the
#: meta/array packing changes so stale store entries become misses.
OPERATOR_STATE_VERSION = 1


def is_structured_operator(obj) -> bool:
    """True when ``obj`` is one of the structured operators of this module."""
    return isinstance(obj, StructuredOperator)


def _freeze(array, dtype=np.float64) -> np.ndarray:
    """Read-only C-contiguous copy of ``array`` (no copy if already frozen)."""
    arr = np.asarray(array, dtype=dtype)
    if arr.flags.c_contiguous and not arr.flags.writeable:
        return arr
    arr = np.array(arr, dtype=dtype, order="C", copy=True)
    arr.setflags(write=False)
    return arr


def _fmt(value: float) -> str:
    """Deterministic text form of a float for fingerprint labels."""
    return format(float(value), ".17g")


class StructuredOperator(abc.ABC):
    """A square linear operator stored by structure instead of dense entries.

    Subclasses populate the storage in ``__init__`` and implement
    :meth:`matvec`, :meth:`_component_arrays`, :meth:`_state_meta` and
    :meth:`to_dense`; everything else (``matmat``, ``@``, byte accounting,
    fingerprinting, condition bounds) is inherited.

    Parameters
    ----------
    n:
        Dimension (the operator is ``n x n``).
    spectrum_bounds:
        Optional exact extreme eigenvalues ``(λ_min, λ_max)`` supplied by the
        caller (problem families know their analytic spectra); overrides the
        structural computation of :meth:`eigenvalue_bounds`.
    """

    #: structure tag — part of the fingerprint, so a banded and a CSR view of
    #: numerically equal matrices are distinct compiled problems.
    structure: str = "structured"

    def __init__(self, n: int, *, spectrum_bounds=None) -> None:
        self._n = int(n)
        if self._n < 1:
            raise DimensionError("operator dimension must be >= 1")
        if spectrum_bounds is None:
            self._spectrum_bounds = None
        else:
            lo, hi = (float(spectrum_bounds[0]), float(spectrum_bounds[1]))
            if lo > hi:
                raise ValueError("spectrum_bounds must be (min, max)")
            self._spectrum_bounds = (lo, hi)

    # ------------------------------------------------------------------ #
    # shape protocol (ndarray-compatible attributes used across the stack)
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def dtype(self):
        return np.dtype(np.float64)

    @property
    def dimension(self) -> int:
        """Problem size ``N``."""
        return self._n

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator to one vector of length ``N``.

        Dtype contract: the input is coerced to float64 and the result is
        always float64 (matching :attr:`dtype`) regardless of the input's
        dtype — a float32 right-hand side round-trips through the operator
        without silent precision surprises, it is simply promoted.
        """

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator to column-stacked vectors of shape ``(N, B)``.

        The default loops over :meth:`matvec`; subclasses vectorise.  The
        float64 dtype contract of :meth:`matvec` applies column-wise.
        """
        block = np.asarray(x, dtype=np.float64)
        return np.column_stack([self.matvec(block[:, j])
                                for j in range(block.shape[1])])

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the adjoint ``Aᵀ`` to one vector of length ``N``.

        Symmetric operators fall through to :meth:`matvec`; non-symmetric
        subclasses override (the Golub–Kahan bidiagonalisation route and the
        symmetric-dilation matrix-free solve both need ``Aᵀv``).
        """
        if self.is_symmetric:
            return self.matvec(x)
        raise NotImplementedError(
            f"{type(self).__name__} does not implement rmatvec for "
            "non-symmetric structure")

    def rmatmat(self, x: np.ndarray) -> np.ndarray:
        """Apply the adjoint to column-stacked vectors of shape ``(N, B)``."""
        if self.is_symmetric:
            return self.matmat(x)
        block = np.asarray(x, dtype=np.float64)
        return np.column_stack([self.rmatvec(block[:, j])
                                for j in range(block.shape[1])])

    def __matmul__(self, other):
        arr = np.asarray(other, dtype=np.float64)
        if arr.ndim == 1:
            if arr.shape[0] != self._n:
                raise DimensionError(
                    f"operand length {arr.shape[0]} does not match the "
                    f"{self._n} x {self._n} operator")
            return self.matvec(arr)
        if arr.ndim == 2:
            if arr.shape[0] != self._n:
                raise DimensionError(
                    f"operand has {arr.shape[0]} rows but the operator is "
                    f"{self._n} x {self._n}")
            return self.matmat(arr)
        raise DimensionError("operator @ operand requires a 1-D or 2-D operand")

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _component_arrays(self) -> list[tuple[str, np.ndarray]]:
        """Named storage arrays (the fingerprint / transport payload)."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored (logical nonzero) matrix entries."""

    def nnz_bytes(self) -> int:
        """Resident bytes of the structured storage (arrays deduplicated).

        This is what cache eviction and shared-memory accounting charge —
        the structured analogue of ``matrix.nbytes``.
        """
        seen: set[int] = set()
        total = 0
        for _, arr in self._component_arrays():
            if id(arr) not in seen:
                seen.add(id(arr))
                total += int(arr.nbytes)
        return total

    # ------------------------------------------------------------------ #
    # densification (lazy, wall-guarded)
    # ------------------------------------------------------------------ #
    def to_dense(self, *, force: bool = False) -> np.ndarray:
        """Materialise the dense ``N x N`` array (never cached).

        Refuses above :func:`dense_wall` (default
        :data:`DENSE_MATERIALIZE_WALL`, override with the
        ``REPRO_DENSE_WALL`` environment variable) unless ``force=True`` —
        the whole point of the structured path is that the dense array does
        not exist, so an implicit ``O(N²)`` allocation is a bug, not a
        convenience.
        """
        if not force and self._n > dense_wall():
            raise MemoryError(
                f"refusing to densify a {self._n} x {self._n} "
                f"{self.structure} operator "
                f"({self._n * self._n * 8 / 2**30:.1f} GiB); raise the "
                f"{DENSE_WALL_ENV_VAR} environment variable or pass "
                "force=True if you really mean it")
        return self._dense()

    @abc.abstractmethod
    def _dense(self) -> np.ndarray:
        """Unchecked dense materialisation (subclass implementation)."""

    # ------------------------------------------------------------------ #
    # spectra
    # ------------------------------------------------------------------ #
    @property
    def is_symmetric(self) -> bool:
        """Whether the operator is exactly symmetric (structural check)."""
        return False

    def eigenvalue_bounds(self) -> tuple[float, float] | None:
        """Exact extreme eigenvalues ``(λ_min, λ_max)`` or ``None``.

        Caller-supplied ``spectrum_bounds`` win; otherwise the structural
        closed forms of the subclass (symmetric tridiagonal Toeplitz bands,
        Kronecker sums of symmetric terms) are used.  ``None`` means no exact
        bound is available — callers must pin ``kappa`` or densify.
        """
        if self._spectrum_bounds is not None:
            return self._spectrum_bounds
        return self._computed_bounds()

    def _computed_bounds(self) -> tuple[float, float] | None:
        return None

    def condition_bound(self) -> float | None:
        """Exact 2-norm condition number from the eigenvalue bounds.

        Only available for symmetric definite spectra (where
        ``min |λ| = min(|λ_min|, |λ_max|)`` is attained at an endpoint);
        indefinite or unbounded operators return ``None``.
        """
        bounds = self.eigenvalue_bounds()
        if bounds is None or not self.is_symmetric:
            return None
        lo, hi = bounds
        if lo <= 0.0 <= hi:
            return None  # indefinite/semidefinite: min |λ| is interior
        smax = max(abs(lo), abs(hi))
        smin = min(abs(lo), abs(hi))
        return float(smax / smin)

    # ------------------------------------------------------------------ #
    # classical structure-exploiting solve
    # ------------------------------------------------------------------ #
    def solve(self, b) -> np.ndarray:
        """Solve ``A x = b`` classically, exploiting the structure.

        ``b`` may be a vector ``(N,)`` or a column stack ``(N, B)``.  The
        base implementation densifies (wall-guarded) — subclasses provide
        Thomas / banded LU, Kronecker fast diagonalisation or CG.
        """
        rhs = np.asarray(b, dtype=np.float64)
        return np.linalg.solve(self.to_dense(), rhs)

    def _cg_solve(self, b, *, tolerance: float = 1e-13) -> np.ndarray:
        """Conjugate-gradient solve (symmetric definite operators only)."""
        from .iterative import conjugate_gradient

        bounds = self.eigenvalue_bounds()
        if not self.is_symmetric or bounds is None or bounds[0] * bounds[1] <= 0:
            raise ValueError(
                f"{self.structure} operator is not symmetric definite; no "
                "structured solve is available (densify or supply one)")
        sign = 1.0 if bounds[0] > 0 else -1.0
        rhs = np.asarray(b, dtype=np.float64)
        flipped = _ScaledView(self, sign) if sign < 0 else self

        def one(column: np.ndarray) -> np.ndarray:
            result = conjugate_gradient(flipped, sign * column,
                                        tolerance=tolerance,
                                        max_iterations=20 * self._n)
            return result.x

        if rhs.ndim == 1:
            return one(rhs)
        return np.column_stack([one(rhs[:, j]) for j in range(rhs.shape[1])])

    # ------------------------------------------------------------------ #
    # fingerprinting / transport
    # ------------------------------------------------------------------ #
    def _meta(self) -> dict:
        """JSON-able structural metadata (everything that is not an array)."""
        meta = {"kind": self.structure, "n": self._n}
        if self._spectrum_bounds is not None:
            meta["spectrum_bounds"] = [_fmt(self._spectrum_bounds[0]),
                                       _fmt(self._spectrum_bounds[1])]
        return meta

    def fingerprint_parts(self):
        """Yield ``(label, array-or-None)`` pairs hashed by ``matrix_fingerprint``.

        The first part is a deterministic text label carrying the structure
        tag and every scalar parameter (dimension, offsets, scale/shift,
        resolved spectrum bounds), so numerically equal matrices stored in
        different structures — or the same structure with different declared
        spectra, which compile to different polynomials — hash distinctly.
        """
        meta = self._meta()
        bounds = self.eigenvalue_bounds()
        if bounds is not None:
            meta["bounds"] = [_fmt(bounds[0]), _fmt(bounds[1])]
        yield "structured:" + json.dumps(meta, sort_keys=True), None
        for name, arr in self._component_arrays():
            yield name, arr

    def to_state(self) -> tuple[dict, list[np.ndarray]]:
        """Split the operator into JSON-able metadata + its storage arrays.

        The inverse is :func:`operator_from_state`; together they are the
        shared-memory transport format (the arrays are packed into one
        segment, the metadata rides on the handle).
        """
        return self._meta(), [arr for _, arr in self._component_arrays()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(n={self._n}, nnz={self.nnz}, "
                f"bytes={self.nnz_bytes()})")


class _ScaledView:
    """Minimal matvec view ``sign * A`` used by the CG sign flip."""

    def __init__(self, base: StructuredOperator, sign: float) -> None:
        self._base = base
        self._sign = sign
        self.shape = base.shape

    def matvec(self, x):
        return self._sign * self._base.matvec(x)

    def __matmul__(self, other):
        return self._sign * (self._base @ other)


# ---------------------------------------------------------------------- #
# banded storage
# ---------------------------------------------------------------------- #
class BandedOperator(StructuredOperator):
    """Diagonal-wise storage ``A[i, i+k] = bands[k][i]`` for a few offsets ``k``.

    Parameters
    ----------
    n:
        Dimension.
    bands:
        Mapping ``offset -> values``; offset ``k >= 0`` is the ``k``-th
        superdiagonal (length ``n - k``), ``k < 0`` the ``|k|``-th
        subdiagonal (length ``n - |k|``).
    spectrum_bounds:
        Optional exact extreme eigenvalues; for symmetric tridiagonal
        *Toeplitz* bands the closed form
        ``d + 2 e cos(jπ/(n+1))`` provides exact bounds automatically.
    """

    structure = "banded"

    def __init__(self, n: int, bands: dict, *, spectrum_bounds=None) -> None:
        super().__init__(n, spectrum_bounds=spectrum_bounds)
        if not bands:
            raise ValueError("at least one band is required")
        frozen: dict[int, np.ndarray] = {}
        for offset, values in bands.items():
            k = int(offset)
            if abs(k) >= self._n:
                raise DimensionError(
                    f"band offset {k} is outside an {self._n} x {self._n} matrix")
            arr = _freeze(values)
            if arr.ndim != 1 or arr.shape[0] != self._n - abs(k):
                raise DimensionError(
                    f"band {k} must have length {self._n - abs(k)}, "
                    f"got shape {arr.shape}")
            frozen[k] = arr
        self._bands = dict(sorted(frozen.items()))

    # ------------------------------------------------------------------ #
    @classmethod
    def toeplitz(cls, n: int, stencil: dict, *, spectrum_bounds=None
                 ) -> "BandedOperator":
        """Banded operator with one constant value per diagonal.

        ``stencil`` maps offsets to scalars, e.g. the Poisson stencil
        ``{0: 2.0, 1: -1.0, -1: -1.0}``.  Offsets that fall outside an
        ``n x n`` matrix are dropped (a 1 x 1 "tridiagonal" matrix is just
        its diagonal), so one stencil serves every size.
        """
        bands = {int(k): np.full(int(n) - abs(int(k)), float(v))
                 for k, v in stencil.items() if abs(int(k)) < int(n)}
        return cls(int(n), bands, spectrum_bounds=spectrum_bounds)

    @classmethod
    def from_dense(cls, matrix, *, tol: float = 0.0) -> "BandedOperator":
        """Extract the nonzero diagonals of a dense matrix."""
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise DimensionError("from_dense requires a square matrix")
        n = mat.shape[0]
        bands = {}
        for k in range(-(n - 1), n):
            diag = np.diagonal(mat, k)
            if np.any(np.abs(diag) > tol) or k == 0:
                bands[k] = diag.copy()
        return cls(n, bands)

    # ------------------------------------------------------------------ #
    @property
    def offsets(self) -> tuple[int, ...]:
        return tuple(self._bands)

    @property
    def bandwidth(self) -> int:
        """Largest |offset| with stored values."""
        return max(abs(k) for k in self._bands)

    def band(self, offset: int) -> np.ndarray:
        """The stored values of one diagonal (read-only)."""
        return self._bands[int(offset)]

    def toeplitz_stencil(self) -> dict | None:
        """``offset -> constant`` when every band is constant, else ``None``."""
        stencil = {}
        for k, d in self._bands.items():
            if d.size and np.any(d != d[0]):
                return None
            stencil[k] = float(d[0]) if d.size else 0.0
        return stencil

    # ------------------------------------------------------------------ #
    def _band_apply(self, x: np.ndarray, *, transpose: bool = False
                    ) -> np.ndarray:
        """Shared band contraction for 1-D/2-D operands and ``Aᵀ``.

        One fused ``y[sl] += d * x[sl']`` per stored diagonal; constant
        (Toeplitz) bands multiply by the scalar directly, so wide batches
        avoid materialising the broadcast ``d[:, None] * block`` product.
        The transpose mirrors each offset: the entries of band ``k`` land on
        band ``-k`` of ``Aᵀ`` with unchanged values.
        """
        block = np.asarray(x, dtype=np.float64)
        y = np.zeros_like(block)
        n = self._n
        wide = block.ndim == 2
        for k, d in self._bands.items():
            if d.size and np.all(d == d[0]):
                coeff = d[0]
            else:
                coeff = d[:, None] if wide else d
            if (k >= 0) != transpose or k == 0:
                dst, src = slice(0, n - abs(k)), slice(abs(k), n)
            else:
                dst, src = slice(abs(k), n), slice(0, n - abs(k))
            y[dst] += coeff * block[src]
        return y

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._band_apply(x)

    def matmat(self, x: np.ndarray) -> np.ndarray:
        return self._band_apply(x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self._band_apply(x, transpose=True)

    def rmatmat(self, x: np.ndarray) -> np.ndarray:
        return self._band_apply(x, transpose=True)

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return sum(d.shape[0] for d in self._bands.values())

    def _component_arrays(self) -> list[tuple[str, np.ndarray]]:
        return [(f"band[{k}]", d) for k, d in self._bands.items()]

    def _meta(self) -> dict:
        meta = super()._meta()
        meta["offsets"] = [int(k) for k in self._bands]
        return meta

    def _dense(self) -> np.ndarray:
        out = np.zeros((self._n, self._n))
        for k, d in self._bands.items():
            idx = np.arange(d.shape[0])
            if k >= 0:
                out[idx, idx + k] = d
            else:
                out[idx - k, idx] = d
        return out

    # ------------------------------------------------------------------ #
    @property
    def is_symmetric(self) -> bool:
        for k, d in self._bands.items():
            if k <= 0:
                continue
            mirror = self._bands.get(-k)
            if mirror is None or not np.array_equal(d, mirror):
                return False
        return all(k > 0 or -k in self._bands for k in self._bands)

    def _computed_bounds(self) -> tuple[float, float] | None:
        # exact spectrum of the symmetric tridiagonal Toeplitz matrix:
        # λ_j = d + 2 e cos(jπ/(n+1)), j = 1..n (e = 0 covers scalar
        # multiples of the identity, e.g. a stencil truncated at n = 1).
        stencil = self.toeplitz_stencil()
        if stencil is None or not set(stencil) <= {-1, 0, 1}:
            return None
        e = stencil.get(1, 0.0)
        if e != stencil.get(-1, 0.0):
            return None
        d = stencil.get(0, 0.0)
        c = np.cos(np.pi / (self._n + 1))
        lo, hi = d - 2.0 * abs(e) * c, d + 2.0 * abs(e) * c
        return (float(lo), float(hi))

    # ------------------------------------------------------------------ #
    def solve(self, b) -> np.ndarray:
        rhs = np.asarray(b, dtype=np.float64)
        nl = -min(min(self._bands), 0)
        nu = max(max(self._bands), 0)
        try:
            from scipy.linalg import solve_banded
        except ImportError:  # pragma: no cover - scipy is a baked-in dep
            solve_banded = None
        if solve_banded is not None:
            ab = np.zeros((nl + nu + 1, self._n))
            for k, d in self._bands.items():
                if k >= 0:
                    ab[nu - k, k:] = d
                else:
                    ab[nu - k, :self._n + k] = d
            return solve_banded((nl, nu), ab, rhs)
        if nl <= 1 and nu <= 1:
            zero = np.zeros(self._n - 1)
            diags = (self._bands.get(-1, zero), self._bands[0],
                     self._bands.get(1, zero))
            if rhs.ndim == 1:
                return thomas_solve(diags, rhs)
            return np.column_stack([thomas_solve(diags, rhs[:, j])
                                    for j in range(rhs.shape[1])])
        return super().solve(b)


# ---------------------------------------------------------------------- #
# compressed sparse rows
# ---------------------------------------------------------------------- #
class CSROperator(StructuredOperator):
    """Compressed-sparse-row storage (``data`` / ``indices`` / ``indptr``).

    Rows are kept in canonical order (column-sorted within each row, no
    duplicates); use :meth:`from_coo` to build from unordered triplets.
    """

    structure = "csr"

    def __init__(self, data, indices, indptr, n: int, *,
                 spectrum_bounds=None, symmetric: bool | None = None) -> None:
        super().__init__(n, spectrum_bounds=spectrum_bounds)
        self._data = _freeze(data)
        self._indices = _freeze(indices, dtype=np.int64)
        self._indptr = _freeze(indptr, dtype=np.int64)
        if self._indptr.shape[0] != self._n + 1 or self._indptr[0] != 0:
            raise DimensionError("indptr must have length n + 1 and start at 0")
        if self._indptr[-1] != self._data.shape[0] or np.any(
                np.diff(self._indptr) < 0):
            raise DimensionError("indptr is not a valid monotone row pointer")
        if self._indices.shape != self._data.shape:
            raise DimensionError("indices and data must have equal length")
        if self._data.size and (self._indices.min() < 0
                                or self._indices.max() >= self._n):
            raise DimensionError("column indices out of range")
        self._symmetric = symmetric
        self._row_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, rows, cols, values, n: int, *,
                 spectrum_bounds=None, symmetric: bool | None = None
                 ) -> "CSROperator":
        """Build from triplets; duplicates are summed, rows are sorted."""
        r = np.asarray(rows, dtype=np.int64)
        c = np.asarray(cols, dtype=np.int64)
        v = np.asarray(values, dtype=np.float64)
        if not (r.shape == c.shape == v.shape):
            raise DimensionError("rows, cols and values must share one shape")
        encoded = r * int(n) + c
        order = np.argsort(encoded, kind="stable")
        encoded = encoded[order]
        unique, starts = np.unique(encoded, return_index=True)
        summed = np.add.reduceat(v[order], starts) if v.size else v
        out_rows = unique // int(n)
        out_cols = unique % int(n)
        indptr = np.zeros(int(n) + 1, dtype=np.int64)
        np.cumsum(np.bincount(out_rows, minlength=int(n)), out=indptr[1:])
        return cls(summed, out_cols, indptr, int(n),
                   spectrum_bounds=spectrum_bounds, symmetric=symmetric)

    @classmethod
    def from_dense(cls, matrix, *, tol: float = 0.0) -> "CSROperator":
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise DimensionError("from_dense requires a square matrix")
        rows, cols = np.nonzero(np.abs(mat) > tol)
        return cls.from_coo(rows, cols, mat[rows, cols], mat.shape[0])

    # ------------------------------------------------------------------ #
    @property
    def _rows(self) -> np.ndarray:
        """Row index of every stored entry (derived, cached)."""
        if self._row_cache is None:
            self._row_cache = np.repeat(np.arange(self._n, dtype=np.int64),
                                        np.diff(self._indptr))
        return self._row_cache

    def _scipy_matrix(self):
        """scipy CSR view *sharing* the frozen arrays (no copy); None without scipy.

        The numpy kernels below are memory-bandwidth-bound (every gathered
        ``x[indices]`` materialises an ``(nnz, B)`` block); scipy's single-pass
        C kernel avoids the intermediate entirely.  Wrapping costs ~microseconds
        because the three canonical arrays are handed over by reference.
        """
        try:
            from scipy.sparse import csr_matrix
        except ImportError:  # pragma: no cover - scipy is a baked-in dep
            return None
        return csr_matrix((self._data, self._indices, self._indptr),
                          shape=(self._n, self._n))

    def matvec(self, x: np.ndarray) -> np.ndarray:
        # both routes accumulate in float64, which is exactly the operator's
        # dtype contract: any real input promotes to float64.
        vec = np.asarray(x, dtype=np.float64)
        sparse = self._scipy_matrix()
        if sparse is not None:
            return sparse @ vec
        return np.bincount(self._rows, weights=self._data * vec[self._indices],
                           minlength=self._n)

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Wide-batch product without a per-column Python loop.

        Dispatches to scipy's single-pass C kernel when available (it reads
        the frozen CSR arrays in place), else falls back to one
        ``np.add.reduceat`` contraction over the gathered
        ``data ⊙ x[indices]`` block.  ``reduceat`` has one wart: a start
        index with an empty segment returns the *element* at that index
        instead of zero (and an index equal to ``nnz`` is out of range), so
        empty rows are clamped and zeroed afterwards.
        """
        block = np.asarray(x, dtype=np.float64)
        if block.shape[1] == 0 or self.nnz == 0:
            return np.zeros((self._n, block.shape[1]))
        sparse = self._scipy_matrix()
        if sparse is not None:
            return np.asarray(sparse @ block)
        contrib = self._data[:, None] * block[self._indices]
        counts = np.diff(self._indptr)
        if counts.min() > 0:
            return np.add.reduceat(contrib, self._indptr[:-1], axis=0)
        starts = np.minimum(self._indptr[:-1], self.nnz - 1)
        out = np.add.reduceat(contrib, starts, axis=0)
        out[counts == 0] = 0.0
        return out

    def _matmat_loop(self, x: np.ndarray) -> np.ndarray:
        """The pre-vectorisation per-column kernel (benchmark baseline)."""
        block = np.asarray(x, dtype=np.float64)
        gathered = block[self._indices]
        return np.column_stack([
            np.bincount(self._rows, weights=self._data * gathered[:, j],
                        minlength=self._n)
            for j in range(block.shape[1])])

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        vec = np.asarray(x, dtype=np.float64)
        sparse = self._scipy_matrix()
        if sparse is not None:
            return sparse.T @ vec
        return np.bincount(self._indices,
                           weights=self._data * vec[self._rows],
                           minlength=self._n)

    def rmatmat(self, x: np.ndarray) -> np.ndarray:
        block = np.asarray(x, dtype=np.float64)
        b = block.shape[1]
        if b == 0 or self.nnz == 0:
            return np.zeros((self._n, b))
        sparse = self._scipy_matrix()
        if sparse is not None:
            return np.asarray(sparse.T @ block)
        contrib = (self._data[:, None] * block[self._rows]).ravel()
        flat = self._indices[:, None] * b + np.arange(b, dtype=np.int64)
        return np.bincount(flat.ravel(), weights=contrib,
                           minlength=self._n * b).reshape(self._n, b)

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self._data.shape[0])

    def _component_arrays(self) -> list[tuple[str, np.ndarray]]:
        return [("data", self._data), ("indices", self._indices),
                ("indptr", self._indptr)]

    def _meta(self) -> dict:
        meta = super()._meta()
        if self._symmetric is not None:
            meta["symmetric"] = bool(self._symmetric)
        return meta

    def _dense(self) -> np.ndarray:
        out = np.zeros((self._n, self._n))
        out[self._rows, self._indices] = self._data
        return out

    # ------------------------------------------------------------------ #
    @property
    def is_symmetric(self) -> bool:
        if self._symmetric is None:
            # compare the canonical triplets with their transpose's
            order = np.lexsort((self._rows, self._indices))
            self._symmetric = bool(
                np.array_equal(self._indices[order], self._rows)
                and np.array_equal(self._rows[order], self._indices)
                and np.array_equal(self._data[order], self._data))
        return self._symmetric

    def solve(self, b) -> np.ndarray:
        bounds = self.eigenvalue_bounds()
        if self.is_symmetric and bounds is not None and bounds[0] * bounds[1] > 0:
            return self._cg_solve(b)
        if not self.is_symmetric and self._n > dense_wall():
            # beyond the wall a dense factorisation is off the table: LSQR
            # (Golub–Kahan) solves the non-symmetric system matrix-free.
            return self._lsqr_solve(b)
        return super().solve(b)

    def _lsqr_solve(self, b, *, tolerance: float = 1e-12) -> np.ndarray:
        from .iterative import lsqr

        rhs = np.asarray(b, dtype=np.float64)

        def one(column: np.ndarray) -> np.ndarray:
            result = lsqr(self.matvec, self.rmatvec, column,
                          tolerance=tolerance,
                          max_iterations=40 * self._n)
            return result.x

        if rhs.ndim == 1:
            return one(rhs)
        return np.column_stack([one(rhs[:, j]) for j in range(rhs.shape[1])])


# ---------------------------------------------------------------------- #
# Kronecker sums
# ---------------------------------------------------------------------- #
class KroneckerSumOperator(StructuredOperator):
    """``scale · Σ_i I ⊗ … ⊗ T_i ⊗ … ⊗ I`` over small per-axis terms.

    The d-dimensional Dirichlet Laplacian is exactly this shape: storage is
    ``O(d n²)`` for terms of size ``n`` (versus ``n^{2d}`` dense), one
    ``matvec`` costs ``d`` small tensor contractions, and when every term is
    symmetric the full Kronecker-sum spectrum — hence *exact* extreme
    eigenvalues and an exact fast-diagonalisation :meth:`solve` — follows
    from the ``O(n³)`` eigendecompositions of the terms.
    """

    structure = "kronecker-sum"

    def __init__(self, terms, *, scale: float = 1.0,
                 spectrum_bounds=None) -> None:
        terms = list(terms)  # keep inputs alive: the id-dedup below must
        frozen = []          # never key on a freed object's reused address
        shared: dict[int, np.ndarray] = {}  # same input object -> one copy
        for term in terms:
            arr = shared.get(id(term))
            if arr is None:
                arr = shared[id(term)] = _freeze(term)
            if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
                raise DimensionError("every Kronecker term must be square")
            frozen.append(arr)
        if not frozen:
            raise ValueError("at least one term is required")
        self._terms = tuple(frozen)
        self._dims = tuple(t.shape[0] for t in self._terms)
        super().__init__(int(np.prod(self._dims)),
                         spectrum_bounds=spectrum_bounds)
        self._scale = float(scale)
        self._eigh_cache: list[tuple[np.ndarray, np.ndarray]] | None = None
        self._lam_total_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def terms(self) -> tuple[np.ndarray, ...]:
        return self._terms

    @property
    def scale(self) -> float:
        return self._scale

    def _apply_terms(self, tensor: np.ndarray, *, transpose: bool = False
                     ) -> np.ndarray:
        """Σ_i (T_i along axis i) on a tensor with optional trailing batch axis."""
        acc = np.zeros_like(tensor)
        for axis, term in enumerate(self._terms):
            factor = term.T if transpose else term
            acc += np.moveaxis(np.tensordot(factor, tensor, axes=(1, axis)),
                               0, axis)
        return acc

    def matvec(self, x: np.ndarray) -> np.ndarray:
        tensor = np.asarray(x, dtype=np.float64).reshape(self._dims)
        return self._scale * self._apply_terms(tensor).ravel()

    def matmat(self, x: np.ndarray) -> np.ndarray:
        block = np.asarray(x, dtype=np.float64)
        tensor = block.reshape(*self._dims, block.shape[1])
        out = self._scale * self._apply_terms(tensor)
        return out.reshape(self._n, block.shape[1])

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        tensor = np.asarray(x, dtype=np.float64).reshape(self._dims)
        return self._scale * self._apply_terms(tensor, transpose=True).ravel()

    def rmatmat(self, x: np.ndarray) -> np.ndarray:
        block = np.asarray(x, dtype=np.float64)
        tensor = block.reshape(*self._dims, block.shape[1])
        out = self._scale * self._apply_terms(tensor, transpose=True)
        return out.reshape(self._n, block.shape[1])

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        total = 0
        for i, term in enumerate(self._terms):
            total += int(np.count_nonzero(term)) * (self._n // self._dims[i])
        return total

    def _component_arrays(self) -> list[tuple[str, np.ndarray]]:
        return [(f"term[{i}]", term) for i, term in enumerate(self._terms)]

    def _meta(self) -> dict:
        meta = super()._meta()
        meta.update({"dims": list(self._dims), "scale": _fmt(self._scale)})
        return meta

    def _dense(self) -> np.ndarray:
        total = np.zeros((self._n, self._n))
        for axis in range(len(self._terms)):
            factor = np.eye(1)
            for position, dim in enumerate(self._dims):
                block = self._terms[axis] if position == axis else np.eye(dim)
                factor = np.kron(factor, block)
            total += factor
        return self._scale * total

    # ------------------------------------------------------------------ #
    @property
    def is_symmetric(self) -> bool:
        return all(np.array_equal(t, t.T) for t in self._terms)

    def _eigh(self) -> list[tuple[np.ndarray, np.ndarray]]:
        if self._eigh_cache is None:
            if not self.is_symmetric:
                raise ValueError("eigendecomposition requires symmetric terms")
            self._eigh_cache = [tuple(np.linalg.eigh(t)) for t in self._terms]
        return self._eigh_cache

    def _computed_bounds(self) -> tuple[float, float] | None:
        if not self.is_symmetric:
            return None
        lows = sum(float(lam[0]) for lam, _ in self._eigh())
        highs = sum(float(lam[-1]) for lam, _ in self._eigh())
        lo, hi = sorted((self._scale * lows, self._scale * highs))
        return (lo, hi)

    # ------------------------------------------------------------------ #
    def eigen_apply(self, b, transform) -> np.ndarray:
        """Apply ``Q f(Λ) Qᵀ`` where ``Λ`` is the *unscaled* Kronecker spectrum.

        ``transform`` receives the tensor of eigenvalue sums ``λ_{j_1} + … +
        λ_{j_d}`` (without :attr:`scale`) and returns the spectral multiplier
        — the fast-diagonalisation backbone shared by :meth:`solve` and the
        shifted solves of :class:`DiagonalShiftOperator`.
        """
        factors = self._eigh()
        rhs = np.asarray(b, dtype=np.float64)
        vector = rhs.ndim == 1
        tensor = rhs.reshape(*self._dims, -1)
        for axis, (_, q) in enumerate(factors):
            tensor = np.moveaxis(np.tensordot(q.T, tensor, axes=(1, axis)),
                                 0, axis)
        if self._lam_total_cache is None:
            lam_total = factors[0][0]
            for lam, _ in factors[1:]:
                lam_total = np.add.outer(lam_total, lam)
            lam_total = np.asarray(lam_total)
            lam_total.setflags(write=False)
            self._lam_total_cache = lam_total
        tensor = tensor * np.asarray(
            transform(self._lam_total_cache))[..., None]
        for axis, (_, q) in enumerate(factors):
            tensor = np.moveaxis(np.tensordot(q, tensor, axes=(1, axis)),
                                 0, axis)
        out = tensor.reshape(self._n, -1)
        return out[:, 0] if vector else out

    def solve(self, b) -> np.ndarray:
        """Fast-diagonalisation solve — exact, ``O(N n)`` per right-hand side."""
        return self.eigen_apply(b, lambda lam: 1.0 / (self._scale * lam))


# ---------------------------------------------------------------------- #
# diagonal shifts
# ---------------------------------------------------------------------- #
class DiagonalShiftOperator(StructuredOperator):
    """``scale · B + shift · I`` over a structured base operator ``B``.

    Covers the ridge-regularised Laplacians (``L + γI``), implicit-Euler
    steps (``I + Δt α L``) and spectral shifts (``T − σI``) without storing
    anything beyond the base operator.  Spectrum bounds and fast solves
    transfer from the base: the spectrum maps affinely, a Kronecker base
    solves through the same fast diagonalisation, a banded base through a
    banded factorisation, and symmetric definite shifts through CG.
    """

    structure = "diagonal-shift"

    def __init__(self, base: StructuredOperator, *, shift: float = 0.0,
                 scale: float = 1.0, spectrum_bounds=None) -> None:
        if not is_structured_operator(base):
            raise TypeError("base must be a StructuredOperator")
        super().__init__(base.dimension, spectrum_bounds=spectrum_bounds)
        self._base = base
        self._shift = float(shift)
        self._scale = float(scale)

    # ------------------------------------------------------------------ #
    @property
    def base(self) -> StructuredOperator:
        return self._base

    @property
    def shift(self) -> float:
        return self._shift

    @property
    def scale(self) -> float:
        return self._scale

    def matvec(self, x: np.ndarray) -> np.ndarray:
        vec = np.asarray(x, dtype=np.float64)
        return self._scale * self._base.matvec(vec) + self._shift * vec

    def matmat(self, x: np.ndarray) -> np.ndarray:
        block = np.asarray(x, dtype=np.float64)
        return self._scale * self._base.matmat(block) + self._shift * block

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        vec = np.asarray(x, dtype=np.float64)
        return self._scale * self._base.rmatvec(vec) + self._shift * vec

    def rmatmat(self, x: np.ndarray) -> np.ndarray:
        block = np.asarray(x, dtype=np.float64)
        return self._scale * self._base.rmatmat(block) + self._shift * block

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return self._base.nnz + self._n

    def _component_arrays(self) -> list[tuple[str, np.ndarray]]:
        return [(f"base.{name}", arr)
                for name, arr in self._base._component_arrays()]

    def _meta(self) -> dict:
        meta = super()._meta()
        meta.update({"shift": _fmt(self._shift), "scale": _fmt(self._scale),
                     "base": self._base._meta()})
        return meta

    def _dense(self) -> np.ndarray:
        return (self._scale * self._base.to_dense(force=True)
                + self._shift * np.eye(self._n))

    # ------------------------------------------------------------------ #
    @property
    def is_symmetric(self) -> bool:
        return self._base.is_symmetric

    def _computed_bounds(self) -> tuple[float, float] | None:
        bounds = self._base.eigenvalue_bounds()
        if bounds is None:
            return None
        mapped = sorted((self._scale * bounds[0] + self._shift,
                         self._scale * bounds[1] + self._shift))
        return (float(mapped[0]), float(mapped[1]))

    # ------------------------------------------------------------------ #
    def solve(self, b) -> np.ndarray:
        base = self._base
        if isinstance(base, KroneckerSumOperator) and base.is_symmetric:
            scale = self._scale * base.scale
            return base.eigen_apply(
                b, lambda lam: 1.0 / (scale * lam + self._shift))
        if isinstance(base, BandedOperator):
            bands = {k: self._scale * d for k, d in base._bands.items()}
            diag = bands.get(0, np.zeros(self._n)) + self._shift
            bands[0] = diag
            return BandedOperator(self._n, bands).solve(b)
        bounds = self.eigenvalue_bounds()
        if self.is_symmetric and bounds is not None and bounds[0] * bounds[1] > 0:
            return self._cg_solve(b)
        return super().solve(b)


# ---------------------------------------------------------------------- #
# transport
# ---------------------------------------------------------------------- #
def operator_from_state(meta: dict, arrays: list) -> StructuredOperator:
    """Rebuild an operator from :meth:`StructuredOperator.to_state` output.

    ``arrays`` may be views into a shared-memory segment: read-only
    contiguous float64/int64 arrays are adopted without copying, which is
    what makes the worker-side attach zero-copy.
    """
    kind = meta.get("kind")
    n = int(meta["n"])
    bounds = meta.get("spectrum_bounds")
    if bounds is not None:
        bounds = (float(bounds[0]), float(bounds[1]))
    if kind == "banded":
        offsets = [int(k) for k in meta["offsets"]]
        if len(offsets) != len(arrays):
            raise ValueError("banded state: offsets and arrays disagree")
        return BandedOperator(n, dict(zip(offsets, arrays)),
                              spectrum_bounds=bounds)
    if kind == "csr":
        data, indices, indptr = arrays
        return CSROperator(data, indices, indptr, n, spectrum_bounds=bounds,
                           symmetric=meta.get("symmetric"))
    if kind == "kronecker-sum":
        return KroneckerSumOperator(arrays, scale=float(meta["scale"]),
                                    spectrum_bounds=bounds)
    if kind == "diagonal-shift":
        base = operator_from_state(meta["base"], arrays)
        return DiagonalShiftOperator(base, shift=float(meta["shift"]),
                                     scale=float(meta["scale"]),
                                     spectrum_bounds=bounds)
    raise ValueError(f"unknown structured-operator kind {kind!r}")


def operator_state_payload(operator: StructuredOperator,
                           *, prefix: str = "operator"
                           ) -> tuple[dict, dict]:
    """Versioned (JSON-able meta, named-array dict) form of an operator.

    This is the persistence format: the arrays carry unique names so they
    can ride inside an ``npz`` payload next to a backend's own arrays (the
    :class:`~repro.engine.store.SynthesisStore` entry), and the meta embeds
    :data:`OPERATOR_STATE_VERSION` so a layout change turns old entries
    into clean store misses instead of wrong restores.  The version lives
    in the *payload*, not in :meth:`StructuredOperator._meta`, so operator
    fingerprints are untouched.
    """
    meta, arrays = operator.to_state()
    payload_meta = {
        "state_version": OPERATOR_STATE_VERSION,
        "meta": meta,
        "num_arrays": len(arrays),
    }
    payload_arrays = {f"{prefix}_arr{i}": np.asarray(arr)
                      for i, arr in enumerate(arrays)}
    return payload_meta, payload_arrays


def operator_from_payload(payload_meta: dict, payload_arrays: dict,
                          *, prefix: str = "operator") -> StructuredOperator:
    """Inverse of :func:`operator_state_payload` (version-checked)."""
    version = payload_meta.get("state_version")
    if version != OPERATOR_STATE_VERSION:
        raise ValueError(
            f"operator-state payload version {version!r} is not the "
            f"supported version {OPERATOR_STATE_VERSION}")
    count = int(payload_meta["num_arrays"])
    arrays = [payload_arrays[f"{prefix}_arr{i}"] for i in range(count)]
    return operator_from_state(payload_meta["meta"], arrays)
