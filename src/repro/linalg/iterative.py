"""Classical iterative methods.

The paper's complexity discussion (Sec. III-C4) contrasts the QSVT approach
with classical ``O(N)`` solvers for the Poisson system; the methods gathered
here (conjugate gradient, Jacobi, power iteration) serve as those classical
reference points in the examples and benchmarks, and power iteration is also
used internally by the condition-number estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import ConvergenceError
from ..utils import as_generator, as_vector, check_system

__all__ = ["IterativeResult", "conjugate_gradient", "jacobi", "power_iteration",
           "golub_kahan_bidiagonalize", "lsqr"]


@dataclass
class IterativeResult:
    """Outcome of a classical iterative solve."""

    #: final iterate.
    x: np.ndarray
    #: number of iterations actually performed.
    iterations: int
    #: final relative residual ``||b - A x|| / ||b||``.
    residual: float
    #: whether the tolerance was reached within the iteration budget.
    converged: bool
    #: relative residual after each iteration (including the final one).
    history: list[float] = field(default_factory=list)


def conjugate_gradient(a, b, *, tolerance: float = 1e-10,
                       max_iterations: int | None = None,
                       x0=None) -> IterativeResult:
    """Conjugate-gradient solve for symmetric positive-definite systems.

    Raises :class:`ConvergenceError` only when explicitly asked to
    (``max_iterations`` reached *and* the residual is worse than 1); otherwise
    returns the best iterate with ``converged=False`` so callers can decide.
    """
    mat, rhs = check_system(a, b)
    n = rhs.shape[0]
    limit = max_iterations if max_iterations is not None else 10 * n
    x = np.zeros(n) if x0 is None else as_vector(x0, name="x0").astype(float).copy()
    r = rhs - mat @ x
    p = r.copy()
    norm_b = np.linalg.norm(rhs)
    if norm_b == 0.0:
        return IterativeResult(x=np.zeros(n), iterations=0, residual=0.0,
                               converged=True, history=[0.0])
    rs_old = float(r @ r)
    history: list[float] = []
    iterations = 0
    for iterations in range(1, limit + 1):
        ap = mat @ p
        denom = float(p @ ap)
        if denom <= 0.0:
            raise ConvergenceError(
                "conjugate gradient requires a positive-definite matrix",
                iterations=iterations)
        alpha = rs_old / denom
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(r @ r)
        rel = float(np.sqrt(rs_new) / norm_b)
        history.append(rel)
        if rel <= tolerance:
            return IterativeResult(x=x, iterations=iterations, residual=rel,
                                   converged=True, history=history)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return IterativeResult(x=x, iterations=iterations, residual=history[-1],
                           converged=False, history=history)


def jacobi(a, b, *, tolerance: float = 1e-10, max_iterations: int = 10_000,
           x0=None) -> IterativeResult:
    """Jacobi iteration (diagonally dominant matrices)."""
    mat, rhs = check_system(a, b)
    diag = np.diag(mat)
    if np.any(diag == 0.0):
        raise ZeroDivisionError("Jacobi iteration requires a nonzero diagonal")
    off = mat - np.diag(diag)
    x = np.zeros_like(rhs, dtype=float) if x0 is None else as_vector(x0).astype(float)
    norm_b = np.linalg.norm(rhs)
    if norm_b == 0.0:
        return IterativeResult(x=np.zeros_like(rhs, dtype=float), iterations=0,
                               residual=0.0, converged=True, history=[0.0])
    history: list[float] = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        x = (rhs - off @ x) / diag
        rel = float(np.linalg.norm(rhs - mat @ x) / norm_b)
        history.append(rel)
        if rel <= tolerance:
            return IterativeResult(x=x, iterations=iterations, residual=rel,
                                   converged=True, history=history)
    return IterativeResult(x=x, iterations=iterations, residual=history[-1],
                           converged=False, history=history)


def golub_kahan_bidiagonalize(matvec: Callable[[np.ndarray], np.ndarray],
                              rmatvec: Callable[[np.ndarray], np.ndarray],
                              n: int, *, steps: int | None = None,
                              rng=None, reorthogonalize: bool = True
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Golub–Kahan (Lanczos) bidiagonalisation of a square operator ``A``.

    Runs the two-sided recurrence driven only by ``A v`` and ``Aᵀ u`` —
    never materialising ``A`` — and returns the bidiagonal coefficients
    ``(alphas, betas)`` of the ``k x k`` lower-bidiagonal matrix ``B_k``
    (``alphas`` on the diagonal, ``betas`` on the subdiagonal).  The
    singular values of ``B_k`` are Ritz approximations of the singular
    values of ``A``; with full reorthogonalisation (the default — ``k`` is
    small) the extreme ones converge rapidly, which is what the
    matrix-free κ estimate for *non-symmetric* operators consumes.
    Mathematically this is symmetric Lanczos on the dilation
    ``[[0, A], [Aᵀ, 0]]``, whose spectrum is ``±σ_i(A)``.
    """
    gen = as_generator(rng)
    k = min(int(n), 60 if steps is None else int(steps))
    u = gen.standard_normal(int(n))
    u /= np.linalg.norm(u)
    us = [u]
    vs: list[np.ndarray] = []
    alphas: list[float] = []
    betas: list[float] = []
    v_prev = np.zeros(int(n))
    for j in range(k):
        v = rmatvec(us[-1]) - (betas[-1] if betas else 0.0) * v_prev
        if reorthogonalize:
            for w in vs:
                v -= (w @ v) * w
        alpha = float(np.linalg.norm(v))
        if alpha <= 1e-14 * max(1.0, abs(betas[-1]) if betas else 1.0):
            break
        v /= alpha
        alphas.append(alpha)
        vs.append(v)
        v_prev = v
        u = matvec(v) - alpha * us[-1]
        if reorthogonalize:
            for w in us:
                u -= (w @ u) * w
        beta = float(np.linalg.norm(u))
        if beta <= 1e-14 * alpha or j == k - 1:
            break
        u /= beta
        betas.append(beta)
        us.append(u)
    return np.asarray(alphas), np.asarray(betas[:max(len(alphas) - 1, 0)])


def lsqr(matvec: Callable[[np.ndarray], np.ndarray],
         rmatvec: Callable[[np.ndarray], np.ndarray],
         b, *, tolerance: float = 1e-12,
         max_iterations: int | None = None) -> IterativeResult:
    """LSQR (Paige–Saunders) solve of a square system via ``A v`` / ``Aᵀ u``.

    The matrix-free companion of :func:`conjugate_gradient` for
    *non-symmetric* operators (convection–diffusion): analytically
    equivalent to CG on the normal equations ``AᵀA x = Aᵀ b`` but built on
    the Golub–Kahan recurrence, so it never forms ``AᵀA`` and stays
    numerically well-behaved at moderate κ.  For a consistent square
    system the running ``φ̄`` estimates ``||b - A x||``, which drives the
    stopping rule and the reported residual history.
    """
    rhs = np.asarray(b, dtype=np.float64)
    n = rhs.shape[0]
    limit = max_iterations if max_iterations is not None else 10 * n
    norm_b = float(np.linalg.norm(rhs))
    if norm_b == 0.0:
        return IterativeResult(x=np.zeros(n), iterations=0, residual=0.0,
                               converged=True, history=[0.0])
    beta = norm_b
    u = rhs / beta
    v = rmatvec(u)
    alpha = float(np.linalg.norm(v))
    if alpha == 0.0:
        raise ConvergenceError("LSQR: Aᵀ b vanishes — b is in the null "
                               "space of Aᵀ", iterations=0)
    v = v / alpha
    w = v.copy()
    x = np.zeros(n)
    phibar, rhobar = beta, alpha
    history: list[float] = []
    iterations = 0
    for iterations in range(1, limit + 1):
        u = matvec(v) - alpha * u
        beta = float(np.linalg.norm(u))
        if beta > 0.0:
            u /= beta
            v_next = rmatvec(u) - beta * v
            alpha = float(np.linalg.norm(v_next))
            if alpha > 0.0:
                v = v_next / alpha
        rho = float(np.hypot(rhobar, beta))
        c, s = rhobar / rho, beta / rho
        theta = s * alpha
        rhobar = -c * alpha
        phi = c * phibar
        phibar = s * phibar
        x += (phi / rho) * w
        w = v - (theta / rho) * w
        rel = abs(phibar) / norm_b
        history.append(rel)
        if rel <= tolerance:
            return IterativeResult(x=x, iterations=iterations, residual=rel,
                                   converged=True, history=history)
        if beta == 0.0 or alpha == 0.0:
            break
    return IterativeResult(x=x, iterations=iterations, residual=history[-1],
                           converged=False, history=history)


def power_iteration(matvec: Callable[[np.ndarray], np.ndarray] | np.ndarray,
                    n: int | None = None, *, iterations: int = 200,
                    tolerance: float = 1e-12, rng=None) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue/eigenvector of a symmetric positive semi-definite operator.

    Parameters
    ----------
    matvec:
        Either a dense matrix or a callable implementing ``v -> M v``.
    n:
        Dimension (required when ``matvec`` is a callable).
    iterations, tolerance:
        Iteration budget and relative change stopping criterion.
    rng:
        Seed/generator for the random start vector.

    Returns
    -------
    (eigenvalue, eigenvector)
    """
    if callable(matvec):
        if n is None:
            raise ValueError("n is required when matvec is a callable")
        operator = matvec
        dim = int(n)
    else:
        mat = np.asarray(matvec, dtype=np.float64)
        operator = lambda v: mat @ v  # noqa: E731 - tiny adapter
        dim = mat.shape[0]
    gen = as_generator(rng)
    v = gen.standard_normal(dim)
    v /= np.linalg.norm(v)
    eigval = 0.0
    for _ in range(iterations):
        w = operator(v)
        norm_w = np.linalg.norm(w)
        if norm_w == 0.0:
            return 0.0, v
        new_eig = float(v @ w)
        v = w / norm_w
        if abs(new_eig - eigval) <= tolerance * max(abs(new_eig), 1e-300):
            eigval = new_eig
            break
        eigval = new_eig
    return float(eigval), v
