"""Classical iterative methods.

The paper's complexity discussion (Sec. III-C4) contrasts the QSVT approach
with classical ``O(N)`` solvers for the Poisson system; the methods gathered
here (conjugate gradient, Jacobi, power iteration) serve as those classical
reference points in the examples and benchmarks, and power iteration is also
used internally by the condition-number estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import ConvergenceError
from ..utils import as_generator, as_vector, check_system

__all__ = ["IterativeResult", "conjugate_gradient", "jacobi", "power_iteration"]


@dataclass
class IterativeResult:
    """Outcome of a classical iterative solve."""

    #: final iterate.
    x: np.ndarray
    #: number of iterations actually performed.
    iterations: int
    #: final relative residual ``||b - A x|| / ||b||``.
    residual: float
    #: whether the tolerance was reached within the iteration budget.
    converged: bool
    #: relative residual after each iteration (including the final one).
    history: list[float] = field(default_factory=list)


def conjugate_gradient(a, b, *, tolerance: float = 1e-10,
                       max_iterations: int | None = None,
                       x0=None) -> IterativeResult:
    """Conjugate-gradient solve for symmetric positive-definite systems.

    Raises :class:`ConvergenceError` only when explicitly asked to
    (``max_iterations`` reached *and* the residual is worse than 1); otherwise
    returns the best iterate with ``converged=False`` so callers can decide.
    """
    mat, rhs = check_system(a, b)
    n = rhs.shape[0]
    limit = max_iterations if max_iterations is not None else 10 * n
    x = np.zeros(n) if x0 is None else as_vector(x0, name="x0").astype(float).copy()
    r = rhs - mat @ x
    p = r.copy()
    norm_b = np.linalg.norm(rhs)
    if norm_b == 0.0:
        return IterativeResult(x=np.zeros(n), iterations=0, residual=0.0,
                               converged=True, history=[0.0])
    rs_old = float(r @ r)
    history: list[float] = []
    iterations = 0
    for iterations in range(1, limit + 1):
        ap = mat @ p
        denom = float(p @ ap)
        if denom <= 0.0:
            raise ConvergenceError(
                "conjugate gradient requires a positive-definite matrix",
                iterations=iterations)
        alpha = rs_old / denom
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(r @ r)
        rel = float(np.sqrt(rs_new) / norm_b)
        history.append(rel)
        if rel <= tolerance:
            return IterativeResult(x=x, iterations=iterations, residual=rel,
                                   converged=True, history=history)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return IterativeResult(x=x, iterations=iterations, residual=history[-1],
                           converged=False, history=history)


def jacobi(a, b, *, tolerance: float = 1e-10, max_iterations: int = 10_000,
           x0=None) -> IterativeResult:
    """Jacobi iteration (diagonally dominant matrices)."""
    mat, rhs = check_system(a, b)
    diag = np.diag(mat)
    if np.any(diag == 0.0):
        raise ZeroDivisionError("Jacobi iteration requires a nonzero diagonal")
    off = mat - np.diag(diag)
    x = np.zeros_like(rhs, dtype=float) if x0 is None else as_vector(x0).astype(float)
    norm_b = np.linalg.norm(rhs)
    if norm_b == 0.0:
        return IterativeResult(x=np.zeros_like(rhs, dtype=float), iterations=0,
                               residual=0.0, converged=True, history=[0.0])
    history: list[float] = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        x = (rhs - off @ x) / diag
        rel = float(np.linalg.norm(rhs - mat @ x) / norm_b)
        history.append(rel)
        if rel <= tolerance:
            return IterativeResult(x=x, iterations=iterations, residual=rel,
                                   converged=True, history=history)
    return IterativeResult(x=x, iterations=iterations, residual=history[-1],
                           converged=False, history=history)


def power_iteration(matvec: Callable[[np.ndarray], np.ndarray] | np.ndarray,
                    n: int | None = None, *, iterations: int = 200,
                    tolerance: float = 1e-12, rng=None) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue/eigenvector of a symmetric positive semi-definite operator.

    Parameters
    ----------
    matvec:
        Either a dense matrix or a callable implementing ``v -> M v``.
    n:
        Dimension (required when ``matvec`` is a callable).
    iterations, tolerance:
        Iteration budget and relative change stopping criterion.
    rng:
        Seed/generator for the random start vector.

    Returns
    -------
    (eigenvalue, eigenvector)
    """
    if callable(matvec):
        if n is None:
            raise ValueError("n is required when matvec is a callable")
        operator = matvec
        dim = int(n)
    else:
        mat = np.asarray(matvec, dtype=np.float64)
        operator = lambda v: mat @ v  # noqa: E731 - tiny adapter
        dim = mat.shape[0]
    gen = as_generator(rng)
    v = gen.standard_normal(dim)
    v /= np.linalg.norm(v)
    eigval = 0.0
    for _ in range(iterations):
        w = operator(v)
        norm_w = np.linalg.norm(w)
        if norm_w == 0.0:
            return 0.0, v
        new_eig = float(v @ w)
        v = w / norm_w
        if abs(new_eig - eigval) <= tolerance * max(abs(new_eig), 1e-300):
            eigval = new_eig
            break
        eigval = new_eig
    return float(eigval), v
