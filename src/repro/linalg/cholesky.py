"""Cholesky factorisation for symmetric positive-definite matrices.

Used by the classical baselines when the test problem is SPD (e.g. the Poisson
matrix), where Cholesky halves the factorisation cost compared to LU and needs
no pivoting.  Supports the same optional precision emulation as
:mod:`repro.linalg.lu`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SingularMatrixError
from ..precision import round_to_precision
from ..utils import as_vector, check_square
from .triangular import solve_lower_triangular, solve_upper_triangular

__all__ = ["cholesky_factor", "cholesky_solve"]


def cholesky_factor(a, *, precision=None) -> np.ndarray:
    """Lower-triangular ``L`` such that ``A = L Lᵀ`` (outer-product form).

    Raises :class:`SingularMatrixError` when ``A`` is not numerically positive
    definite (a non-positive pivot appears).
    """
    mat = check_square(a, name="A").astype(np.float64, copy=True)
    if precision is not None:
        mat = round_to_precision(mat, precision)
    n = mat.shape[0]
    lower = np.zeros_like(mat)
    for k in range(n):
        pivot = mat[k, k]
        if pivot <= 0.0 or not np.isfinite(pivot):
            raise SingularMatrixError(
                f"matrix is not positive definite (pivot {pivot:.3e} at step {k})")
        lkk = np.sqrt(pivot)
        lower[k, k] = lkk
        if k + 1 < n:
            col = mat[k + 1:, k] / lkk
            if precision is not None:
                col = round_to_precision(col, precision)
            lower[k + 1:, k] = col
            update = mat[k + 1:, k + 1:] - np.outer(col, col)
            if precision is not None:
                update = round_to_precision(update, precision)
            mat[k + 1:, k + 1:] = update
    return lower


def cholesky_solve(a, b, *, precision=None) -> np.ndarray:
    """Solve an SPD system via Cholesky factorisation."""
    lower = cholesky_factor(a, precision=precision)
    rhs = as_vector(b, name="b")
    y = solve_lower_triangular(lower, rhs, precision=precision)
    return solve_upper_triangular(lower.T, y, precision=precision)
