"""Householder QR factorisation and least-squares solves.

The QSVT handles non-square systems by solving a least-squares problem
(Sec. I of the paper); this module provides the classical reference solution
used to validate those paths, written from scratch with Householder
reflectors.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionError, SingularMatrixError
from ..utils import as_matrix, as_vector
from .triangular import solve_upper_triangular

__all__ = ["householder_qr", "solve_least_squares"]


def householder_qr(a) -> tuple[np.ndarray, np.ndarray]:
    """Full QR factorisation ``A = Q R`` via Householder reflectors.

    Works for any ``m x n`` matrix with ``m >= n``.  ``Q`` is ``m x m``
    orthogonal and ``R`` is ``m x n`` upper trapezoidal.
    """
    mat = as_matrix(a, dtype=np.float64, name="A").copy()
    m, n = mat.shape
    if m < n:
        raise DimensionError("householder_qr requires m >= n")
    q = np.eye(m)
    for k in range(min(m - 1, n)):
        x = mat[k:, k]
        norm_x = np.linalg.norm(x)
        if norm_x == 0.0:
            continue
        v = x.copy()
        v[0] += np.sign(x[0]) * norm_x if x[0] != 0 else norm_x
        v = v / np.linalg.norm(v)
        # apply the reflector I - 2 v vᵀ to the trailing blocks of A and Q
        mat[k:, k:] -= 2.0 * np.outer(v, v @ mat[k:, k:])
        q[:, k:] -= 2.0 * np.outer(q[:, k:] @ v, v)
    return q, np.triu(mat)


def solve_least_squares(a, b) -> np.ndarray:
    """Minimum-residual solution of ``min_x ||A x - b||`` via QR.

    For square nonsingular ``A`` this coincides with the linear-system
    solution; for tall ``A`` it is the least-squares solution the QSVT
    pseudo-inverse polynomial targets.
    """
    mat = as_matrix(a, dtype=np.float64, name="A")
    rhs = as_vector(b, dtype=np.float64, name="b")
    if rhs.shape[0] != mat.shape[0]:
        raise DimensionError("b length must match the number of rows of A")
    q, r = householder_qr(mat)
    n = mat.shape[1]
    rn = r[:n, :n]
    if np.any(np.abs(np.diag(rn)) < 1e-300):
        raise SingularMatrixError("matrix does not have full column rank")
    qt_b = q.T @ rhs
    return solve_upper_triangular(rn, qt_b[:n])
