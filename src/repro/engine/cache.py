"""LRU cache of compiled QSVT solvers.

Algorithm 2 is compile-once / solve-many: the block-encoding, the Eq.-(4)
inverse polynomial and the QSP phase factors depend only on ``(A, ε_l)`` and
are reused across every refinement iteration.  A service that answers many
requests therefore wants one more level of reuse — across *requests*: two
solves against the same matrix at the same inner accuracy should share one
synthesis.  :class:`CompiledSolverCache` provides exactly that, keyed by

* the **matrix fingerprint** (:func:`repro.utils.matrix_fingerprint`, exact
  bytes — the same guard :class:`repro.core.qsvt_solver.QSVTLinearSolver`
  uses for staleness detection, so cache keys can never serve a mutated
  matrix),
* the inner accuracy ``ε_l``,
* the backend kind and its options.

Eviction is least-recently-used and **byte-accounted**: every entry's payload
(matrix bytes + compiled plan arrays + phases/SVD factors, via
:meth:`repro.core.qsvt_solver.QSVTLinearSolver.payload_bytes`) is tracked,
and a ``max_bytes`` budget evicts by memory footprint rather than entry
count (an entry-count cap ``maxsize`` remains available).  ``hits`` /
``misses`` / ``compiles`` counters and the byte totals make the reuse
observable through :meth:`CompiledSolverCache.stats` (the throughput
benchmark and the engine tests assert on them).  The cache is thread-safe
and is what :class:`repro.engine.runner.ScenarioRunner` workers consult
before paying for a synthesis.

Two serving-layer extensions ride on the same keys:

* a **persistent store** (:class:`repro.engine.store.SynthesisStore`, the
  ``store`` parameter): an in-memory miss first tries to restore the
  compiled payload from disk — still a *miss* in the counters, but a
  ``store_hit`` instead of a ``compile`` — and every fresh compilation is
  spilled back, so new worker processes and repeated runs skip synthesis;
* a **precomputed fingerprint** (the ``fingerprint=`` argument): callers
  that already know the exact content hash — the shared-memory hand-off of
  :mod:`repro.engine.sharedmem` carries it in the segment handle — skip
  re-hashing the matrix bytes on every lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..core.backends import QSVTBackend
from ..core.qsvt_solver import QSVTLinearSolver
from ..linalg.operators import is_structured_operator
from ..obs.trace import span as obs_span
from ..utils import matrix_fingerprint

__all__ = ["CompiledSolverCache"]


class CompiledSolverCache:
    """Reuse compiled :class:`~repro.core.qsvt_solver.QSVTLinearSolver` objects.

    Parameters
    ----------
    maxsize:
        Maximum number of compiled solvers kept alive; the least recently
        used entry is evicted first.  ``None`` disables the entry-count cap.
    max_bytes:
        Memory budget for the summed entry payloads (matrix + compiled plan
        arrays).  While the total exceeds the budget, least-recently-used
        entries are evicted — except the most recent one, which is always
        kept so an oversized solver still caches.  ``None`` (default)
        disables byte accounting as an eviction trigger (sizes are still
        tracked and reported by :meth:`stats`).
    store:
        Optional :class:`repro.engine.store.SynthesisStore`.  When given,
        an in-memory miss first attempts a disk restore (counted as a
        ``store_hit``; no synthesis) and every fresh compilation is
        persisted, making compiled solvers survive process restarts.

    Examples
    --------
    >>> cache = CompiledSolverCache()
    >>> s1 = cache.solver(matrix, epsilon_l=1e-2, backend="circuit")  # compiles
    >>> s2 = cache.solver(matrix, epsilon_l=1e-2, backend="circuit")  # cache hit
    >>> s1 is s2, cache.stats()["compiles"]
    (True, 1)
    """

    def __init__(self, maxsize: int | None = 32,
                 max_bytes: int | None = None, store=None,
                 metrics=None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1 (or None for unbounded)")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None for unbounded)")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        # optional obs.metrics.MetricsRegistry mirroring the ad-hoc counters
        # below (which remain authoritative for the legacy stats() keys).
        self._m_lookups = self._m_compiles = self._m_evictions = None
        if metrics is not None:
            self._m_lookups = metrics.counter(
                "cache_lookups_total",
                "Compiled-solver cache lookups by result "
                "(hit / miss / store_hit)")
            self._m_compiles = metrics.counter(
                "cache_compiles_total", "Solver syntheses paid by the cache")
            self._m_evictions = metrics.counter(
                "cache_evictions_total", "Cache entries evicted (LRU/bytes)")
        #: optional :class:`repro.engine.store.SynthesisStore` consulted on
        #: in-memory misses and populated after fresh compilations.
        self.store = store
        self._entries: OrderedDict[tuple, QSVTLinearSolver] = OrderedDict()
        self._entry_bytes: dict[tuple, int] = {}
        self._total_bytes = 0
        self._lock = threading.Lock()
        #: per-key compile locks so concurrent misses for the *same* key wait
        #: for one synthesis instead of each paying for their own, while
        #: different keys still compile in parallel.
        self._compile_locks: dict[tuple, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._compiles = 0
        self._store_hits = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def _canonical_option(cls, value):
        """Deterministic, identity-free form of one backend option value.

        Cache keys must not depend on object identity (``repr`` of a numpy
        ``Generator`` embeds a memory address: equal configurations would
        never hit, and address reuse could collide different ones), so only
        plainly comparable values are accepted.
        """
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, (tuple, list)):
            return tuple(cls._canonical_option(item) for item in value)
        if isinstance(value, dict):
            return tuple(sorted((str(k), cls._canonical_option(v))
                                for k, v in value.items()))
        raise TypeError(
            f"backend option value {value!r} ({type(value).__name__}) cannot be "
            "used as a cache key; pass primitives (numbers, strings, tuples) or "
            "construct the QSVTLinearSolver directly instead of going through "
            "the cache")

    @classmethod
    def _key(cls, matrix, epsilon_l: float, backend, kappa, backend_options,
             *, fingerprint: str | None = None) -> tuple:
        if isinstance(backend, QSVTBackend):
            raise TypeError(
                "CompiledSolverCache requires the backend by *name* ('circuit', "
                "'ideal', 'exact', 'auto'); a backend instance carries state that "
                "cannot be shared safely across cache entries")
        options = tuple(sorted((str(k), cls._canonical_option(v))
                               for k, v in backend_options.items()))
        if fingerprint is None:
            fingerprint = matrix_fingerprint(matrix)
        return (fingerprint, float(epsilon_l), str(backend).lower(),
                None if kappa is None else float(kappa), options)

    # ------------------------------------------------------------------ #
    def solver(self, matrix, *, epsilon_l: float = 1e-2, backend: str = "auto",
               kappa: float | None = None, fingerprint: str | None = None,
               **backend_options) -> QSVTLinearSolver:
        """Return a compiled solver for ``(matrix, ε_l, backend)``, reusing one if cached.

        On a miss, a :class:`~repro.core.qsvt_solver.QSVTLinearSolver` is
        built (paying block-encoding + polynomial + phase synthesis) and
        stored; on a hit, the cached instance is returned untouched — zero
        re-synthesis.  When a persistent ``store`` is attached, a miss first
        tries a disk restore (no synthesis either; counted as a store hit)
        and a fresh compilation is written back.  The signature mirrors the
        solver constructor so the cache is a drop-in replacement for direct
        construction.

        ``fingerprint`` lets trusted callers pass the precomputed content
        hash of ``matrix`` (e.g. from a shared-memory segment handle, whose
        fingerprint was taken at publish time from the very same bytes) so
        the lookup skips re-hashing; passing a hash that does not match the
        bytes poisons the entry, exactly like handing the wrong matrix.

        The cached solver owns a *private copy* of the matrix: mutating the
        caller's array afterwards can therefore never poison the entry —
        requests presenting the original bytes keep hitting a solver whose
        matrix still matches them.  Every lookup is counted as exactly one
        hit or one miss, and a miss implies this call performed (or
        restored) the synthesis (concurrent misses for one key serialise on
        a per-key lock, so a burst of identical requests compiles once).
        """
        key = self._key(matrix, epsilon_l, backend, kappa, backend_options,
                        fingerprint=fingerprint)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                if self._m_lookups is not None:
                    self._m_lookups.inc(result="hit")
                return cached
            compile_lock = self._compile_locks.setdefault(key, threading.Lock())
        with compile_lock:
            # another thread may have finished the synthesis while we waited.
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._hits += 1
                    self._entries.move_to_end(key)
                    if self._m_lookups is not None:
                        self._m_lookups.inc(result="hit")
                    return cached
                self._misses += 1
            if self._m_lookups is not None:
                self._m_lookups.inc(result="miss")
            # restore from the persistent store if one is attached: a store
            # hit installs a ready-made solver without any synthesis.
            if self.store is not None:
                with obs_span("store_lookup") as entry:
                    restored = self.store.load(key, **backend_options)
                    if entry is not None:
                        entry["attrs"]["hit"] = restored is not None
                if restored is not None:
                    self._install(key, restored, store_hit=True)
                    return restored
            # compile outside the global lock: synthesis can take seconds and
            # other keys must not serialise behind it.  The solver gets its
            # own copy of the matrix so later caller-side mutations cannot
            # reach the cached synthesis.  Only StructuredOperator instances
            # skip the copy: their read-only storage is a class guarantee,
            # which arbitrary matvec-shaped objects do not give.
            try:
                owned = (matrix if is_structured_operator(matrix)
                         else np.array(matrix, dtype=float, copy=True))
                with obs_span("compile", backend=str(backend),
                              epsilon_l=float(epsilon_l)):
                    solver = QSVTLinearSolver(owned,
                                              epsilon_l=epsilon_l,
                                              backend=backend,
                                              kappa=kappa, **backend_options)
            except BaseException:
                # failed syntheses must not leak their per-key lock (a stream
                # of failing requests would otherwise grow the map unboundedly)
                with self._lock:
                    self._compile_locks.pop(key, None)
                raise
            self._install(key, solver, store_hit=False)
            if self.store is not None:
                # persistence is best-effort: save() swallows I/O failures and
                # reports them in the store's own stats.
                self.store.save(key, solver)
        return solver

    def _install(self, key: tuple, solver: QSVTLinearSolver, *,
                 store_hit: bool) -> None:
        """Insert a freshly obtained solver and release its compile lock."""
        entry_bytes = self._payload_bytes(solver)
        if store_hit:
            if self._m_lookups is not None:
                self._m_lookups.inc(result="store_hit")
        elif self._m_compiles is not None:
            self._m_compiles.inc()
        with self._lock:
            if store_hit:
                self._store_hits += 1
            else:
                self._compiles += 1
            self._entries[key] = solver
            self._entries.move_to_end(key)
            self._entry_bytes[key] = entry_bytes
            self._total_bytes += entry_bytes
            self._compile_locks.pop(key, None)
            self._evict_locked()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _payload_bytes(solver) -> int:
        """Memory footprint of one cached entry (matrix + compiled artefacts)."""
        payload = getattr(solver, "payload_bytes", None)
        if callable(payload):
            return int(payload())
        matrix = getattr(solver, "matrix", None)
        return int(matrix.nbytes) if matrix is not None else 0

    def _drop_locked(self, key: tuple) -> None:
        del self._entries[key]
        self._total_bytes -= self._entry_bytes.pop(key, 0)

    def _evict_locked(self) -> None:
        """Enforce the entry-count cap, then the byte budget (LRU order).

        The byte budget never evicts the most recently used entry: a single
        solver bigger than ``max_bytes`` stays cached (evicting it would make
        the cache useless for exactly the workloads that need it most).
        """
        while self.maxsize is not None and len(self._entries) > self.maxsize:
            key = next(iter(self._entries))
            self._drop_locked(key)
            self._evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()
        if self.max_bytes is None:
            return
        while self._total_bytes > self.max_bytes and len(self._entries) > 1:
            key = next(iter(self._entries))
            self._drop_locked(key)
            self._evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()

    # ------------------------------------------------------------------ #
    def invalidate(self, matrix) -> int:
        """Drop every entry compiled for ``matrix`` (by fingerprint).

        Returns the number of entries removed.  Note that in-place mutation
        already changes the fingerprint and therefore the key — explicit
        invalidation is only needed to reclaim memory or force a re-synthesis
        of unchanged bytes.
        """
        fingerprint = matrix_fingerprint(matrix)
        with self._lock:
            stale = [key for key in self._entries if key[0] == fingerprint]
            for key in stale:
                self._drop_locked(key)
        return len(stale)

    def clear(self) -> None:
        """Drop every cached solver (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._entry_bytes.clear()
            self._total_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, matrix) -> bool:
        """Whether *any* entry was compiled for ``matrix`` (any ε_l/backend)."""
        fingerprint = matrix_fingerprint(matrix)
        with self._lock:
            return any(key[0] == fingerprint for key in self._entries)

    # ------------------------------------------------------------------ #
    @property
    def hits(self) -> int:
        """Lookups answered without synthesis."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that required a synthesis."""
        return self._misses

    @property
    def compiles(self) -> int:
        """Solver compilations performed on behalf of callers."""
        return self._compiles

    @property
    def store_hits(self) -> int:
        """In-memory misses answered by the persistent store (no synthesis)."""
        return self._store_hits

    @property
    def total_bytes(self) -> int:
        """Summed payload bytes of the live entries."""
        with self._lock:
            return self._total_bytes

    def stats(self) -> dict:
        """Counter snapshot (hits, misses, compiles, store hits, evictions,
        size, bytes, hit rate; plus the attached store's own counters)."""
        with self._lock:
            size = len(self._entries)
            total_bytes = self._total_bytes
        total = self._hits + self._misses
        stats = {
            "hits": self._hits,
            "misses": self._misses,
            "compiles": self._compiles,
            "store_hits": self._store_hits,
            "evictions": self._evictions,
            "size": size,
            "total_bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "hit_rate": (self._hits / total) if total else 0.0,
        }
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (f"CompiledSolverCache(size={stats['size']}, hits={stats['hits']}, "
                f"misses={stats['misses']}, compiles={stats['compiles']})")
