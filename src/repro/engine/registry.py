"""Discoverable scenario families for the solve engine.

The repo grows new workloads PR over PR (Poisson chains, κ sweeps, ε_l
ablations, multi-right-hand-side batches, ...) and each benchmark used to
hand-roll its own problem construction.  The registry turns a *scenario
family* into a named, parameterised factory of :class:`~repro.engine.runner.SolveJob`
lists so that benchmarks, examples and services all reach workloads through
one API:

>>> from repro.engine import ScenarioRunner, build_scenario, list_scenarios
>>> list_scenarios()                      # discover what exists
>>> scenario = build_scenario("kappa-sweep", dimension=16, kappas=(2, 10, 50))
>>> results = ScenarioRunner(mode="process").run(scenario.jobs)

Third-party code registers new families with the :func:`register_scenario`
decorator; the built-ins wrap the existing generators of
:mod:`repro.applications` (Poisson discretisation, random workloads) plus the
batched multi-RHS and sweep families this engine PR introduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..applications.poisson import PoissonProblem
from ..applications.workloads import random_workload
from ..linalg import random_rhs
from ..utils import Registry, as_generator
from .runner import SolveJob

__all__ = [
    "Scenario",
    "register_scenario",
    "unregister_scenario",
    "build_scenario",
    "list_scenarios",
    "scenario_names",
]


@dataclass
class Scenario:
    """A named bundle of independent solve jobs.

    Attributes
    ----------
    name:
        Registry name the bundle was built from.
    description:
        One-line summary of the family.
    jobs:
        The generated :class:`~repro.engine.runner.SolveJob` list.
    params:
        The keyword arguments the family was instantiated with (after
        defaulting), kept for reporting.
    """

    name: str
    description: str
    jobs: list[SolveJob]
    params: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)


#: registered factories: name -> (description, builder(**params) -> list[SolveJob]).
#: One instance of the shared :class:`repro.utils.Registry` — the same
#: machinery (duplicate guard, overwrite, unregister, difflib suggestions)
#: that backs the κ-model registry and ``PROBLEM_FAMILIES``.
_REGISTRY: Registry = Registry("scenario")


def register_scenario(name: str, *, description: str = "",
                      overwrite: bool = False):
    """Decorator registering ``builder(**params) -> list[SolveJob]`` under ``name``.

    Registering an already-taken name raises :class:`ValueError` — two
    families silently shadowing each other is how benchmark results stop
    meaning what their labels say.  Pass ``overwrite=True`` to deliberately
    replace a family (e.g. an application shadowing a built-in with a tuned
    variant), or :func:`unregister_scenario` first.
    """

    def decorator(builder: Callable[..., list[SolveJob]]):
        summary = description
        if not summary and builder.__doc__:
            summary = builder.__doc__.strip().splitlines()[0]
        _REGISTRY.register(name, (summary or name, builder),
                           overwrite=overwrite)
        return builder

    return decorator


def unregister_scenario(name: str) -> bool:
    """Remove a registered family; returns whether it existed."""
    return _REGISTRY.unregister(name)


def scenario_names() -> list[str]:
    """Sorted names of every registered scenario family."""
    return _REGISTRY.names()


def list_scenarios() -> dict[str, str]:
    """Mapping of scenario name to its one-line description."""
    return {name: _REGISTRY[name][0] for name in scenario_names()}


def build_scenario(name: str, **params) -> Scenario:
    """Instantiate a registered scenario family with the given parameters."""
    description, builder = _REGISTRY[name]
    jobs = builder(**params)
    return Scenario(name=name, description=description, jobs=list(jobs), params=params)


# ---------------------------------------------------------------------- #
# built-in families
# ---------------------------------------------------------------------- #
@register_scenario("poisson",
                   description="one refined solve of the 1-D Poisson problem")
def _poisson(num_points: int = 16, epsilon_l: float = 1e-2,
             target_accuracy: float = 1e-10, backend: str = "auto") -> list[SolveJob]:
    problem = PoissonProblem(num_points)
    matrix, rhs = problem.system()
    return [SolveJob(
        name=f"poisson-n{num_points}", matrix=matrix, rhs=rhs,
        epsilon_l=epsilon_l, target_accuracy=target_accuracy, backend=backend,
        kappa=problem.condition_number(exact=True),
        metadata={"num_points": num_points})]


@register_scenario("poisson-multi-rhs",
                   description="one Poisson matrix, many right-hand sides "
                               "(compile-once / solve-many; cache- and batch-friendly)")
def _poisson_multi_rhs(num_points: int = 16, num_rhs: int = 8,
                       epsilon_l: float = 1e-2,
                       target_accuracy: float | None = None,
                       backend: str = "auto", rng=None) -> list[SolveJob]:
    if num_rhs < 1:
        raise ValueError("num_rhs must be >= 1")
    problem = PoissonProblem(num_points)
    matrix = problem.matrix()
    kappa = problem.condition_number(exact=True)
    gen = as_generator(rng)
    jobs = []
    for index in range(num_rhs):
        jobs.append(SolveJob(
            name=f"poisson-n{num_points}-rhs{index}", matrix=matrix,
            rhs=random_rhs(num_points, rng=gen), epsilon_l=epsilon_l,
            target_accuracy=target_accuracy, backend=backend, kappa=kappa,
            metadata={"num_points": num_points, "rhs_index": index}))
    return jobs


@register_scenario("kappa-sweep",
                   description="random workloads sweeping the condition number "
                               "(the Sec. IV / Fig. 4 axis)")
def _kappa_sweep(dimension: int = 16, kappas=(2.0, 10.0, 100.0),
                 epsilon_l: float = 1e-2, target_accuracy: float = 1e-10,
                 backend: str = "auto", rng=None) -> list[SolveJob]:
    gen = as_generator(rng)
    jobs = []
    for kappa in kappas:
        workload = random_workload(dimension, float(kappa), rng=gen)
        jobs.append(SolveJob(
            name=workload.name, matrix=workload.matrix, rhs=workload.rhs,
            epsilon_l=epsilon_l, target_accuracy=target_accuracy,
            backend=backend, kappa=float(kappa),
            metadata={"kappa": float(kappa), "dimension": dimension}))
    return jobs


@register_scenario("epsilon-sweep",
                   description="one workload refined at several inner accuracies "
                               "epsilon_l (the Fig. 3 axis)")
def _epsilon_sweep(dimension: int = 16, kappa: float = 10.0,
                   epsilons=(1e-1, 1e-2, 1e-3), target_accuracy: float = 1e-10,
                   backend: str = "auto", rng=0) -> list[SolveJob]:
    workload = random_workload(dimension, float(kappa), rng=rng)
    jobs = []
    for epsilon_l in epsilons:
        jobs.append(SolveJob(
            name=f"{workload.name}-eps{epsilon_l:g}", matrix=workload.matrix,
            rhs=workload.rhs, epsilon_l=float(epsilon_l),
            target_accuracy=target_accuracy, backend=backend, kappa=float(kappa),
            metadata={"epsilon_l": float(epsilon_l), "kappa": float(kappa)}))
    return jobs
