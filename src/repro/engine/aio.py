"""Coalescing asyncio front end: ``await engine.solve(A, b)``.

A service exposing the solver over a network handles *concurrent* requests,
and the paper's workload shape — many requests against few matrices — makes
naive concurrency wasteful twice over: every request pays its own circuit
sweep, and the sweeps serialise on the CPU anyway.  The batched kernels
already collapse ``K`` same-matrix solves into one fused-plan sweep
(:meth:`repro.core.qsvt_solver.QSVTLinearSolver.solve_batch`); what is
missing is the piece that *finds* the batch inside an async request stream.

:class:`AsyncSolveEngine` is that piece.  Each ``solve`` call computes the
same canonical key the compiled-solver cache uses (matrix fingerprint +
``ε_l`` + backend + options) and joins the **pending group** for that key;
the first request of a group schedules a flush, and when it fires — after
``coalesce_window`` seconds, immediately on the next event-loop turn by
default, or as soon as ``max_batch_size`` requests piled up — the whole
group is answered by a single ``solve_batch`` sweep on a worker thread.
``K`` concurrent same-matrix requests therefore cost one circuit replay
(plus ``K`` cheap de-normalisations) instead of ``K`` replays, and requests
against *different* matrices flush as independent groups that overlap on the
executor (numpy releases the GIL inside the contractions).

The engine composes with the rest of the serving layer: its cache can carry
a persistent :class:`~repro.engine.store.SynthesisStore`, so the first
request for a known matrix restores the synthesis from disk instead of
compiling, and every request after that joins in-memory cache hits.

>>> engine = AsyncSolveEngine(store=SynthesisStore())
>>> records = await asyncio.gather(*[engine.solve(A, b) for b in rhs_stack])
>>> engine.stats()["batches"]          # one fused sweep, not len(rhs_stack)
1
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.results import SingleSolveRecord
from ..exceptions import SolveTimeoutError
from ..obs.trace import TraceContext, activated, current_trace
from ..utils import LatencyHistogram
from .cache import CompiledSolverCache

__all__ = ["AsyncSolveEngine"]


@dataclass
class _PendingGroup:
    """In-flight requests sharing one solver key, awaiting one fused sweep."""

    matrix: np.ndarray
    epsilon_l: float
    backend: str
    kappa: float | None
    fingerprint: str | None
    backend_options: dict
    sealed: asyncio.Event
    rhs: list = field(default_factory=list)
    futures: list = field(default_factory=list)
    #: absolute ``loop.time()`` deadlines per request (``None`` = no deadline).
    deadlines: list = field(default_factory=list)
    #: ambient :class:`~repro.obs.trace.TraceContext` per member (or ``None``);
    #: the shared sweep's spans are adopted into every sampled one.
    traces: list = field(default_factory=list)
    #: ``loop.time()`` stamp when each member joined (coalesce-wait spans).
    joined: list = field(default_factory=list)


class AsyncSolveEngine:
    """Asyncio solver front end with same-matrix request coalescing.

    Parameters
    ----------
    cache:
        Compiled-solver cache answering the grouped requests; created fresh
        (wired to ``store``) when omitted.
    store:
        Optional :class:`~repro.engine.store.SynthesisStore` for the
        internally created cache — ignored when an explicit ``cache`` is
        passed (the cache already owns its persistence policy).
    max_batch_size:
        Cap on one coalesced sweep; when a group reaches it, the group is
        sealed and later arrivals start the next one.
    coalesce_window:
        Seconds the flush waits for stragglers after a group opens.  The
        default ``0.0`` flushes on the next event-loop turn, which already
        coalesces everything submitted in the same scheduling burst (e.g.
        one ``asyncio.gather``); a small positive window trades latency for
        larger batches under streaming arrivals.
    max_concurrency:
        Worker threads executing the fused sweeps — groups with *different*
        keys overlap up to this limit (numpy releases the GIL).

    Use ``async with`` (or call :meth:`close`) to release the worker threads
    deterministically.
    """

    def __init__(self, *, cache: CompiledSolverCache | None = None, store=None,
                 max_batch_size: int = 64, coalesce_window: float = 0.0,
                 max_concurrency: int = 4, metrics=None) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if coalesce_window < 0.0:
            raise ValueError("coalesce_window must be >= 0")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.cache = cache if cache is not None else CompiledSolverCache(
            store=store, metrics=metrics)
        self.max_batch_size = int(max_batch_size)
        self.coalesce_window = float(coalesce_window)
        self.max_concurrency = int(max_concurrency)
        self._pending: dict[tuple, _PendingGroup] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._largest_batch = 0
        self._timeouts = 0
        # optional obs.metrics.MetricsRegistry mirror; the latency histogram
        # *is* the registry series when one is attached (single recording,
        # both views — stats()["latency"] and the metrics snapshot).
        self._m_requests = self._m_batches = None
        self._m_timeouts = self._m_batch_width = None
        if metrics is not None:
            self._m_requests = metrics.counter(
                "engine_requests_total", "Solve requests entering coalescing")
            self._m_batches = metrics.counter(
                "engine_batches_total", "Fused sweeps executed")
            self._m_timeouts = metrics.counter(
                "engine_timeouts_total",
                "Requests expired before their sweep started")
            self._m_batch_width = metrics.histogram(
                "engine_batch_width", "Coalesced requests per fused sweep")
            self._latency = metrics.histogram(
                "engine_latency_seconds",
                "End-to-end coalesced solve latency").labelled()
        else:
            self._latency = LatencyHistogram()

    # ------------------------------------------------------------------ #
    async def solve(self, matrix, rhs, *, epsilon_l: float = 1e-2,
                    backend: str = "auto", kappa: float | None = None,
                    fingerprint: str | None = None,
                    deadline: float | None = None,
                    **backend_options) -> SingleSolveRecord:
        """Solve ``A x = rhs`` at accuracy ``ε_l``; awaits the coalesced sweep.

        Concurrent calls whose ``(matrix bytes, ε_l, backend, κ, options)``
        agree are answered by one batched application of the compiled
        synthesis; the returned record is identical to
        :meth:`repro.core.qsvt_solver.QSVTLinearSolver.solve` for the same
        inputs.  Failures of the shared sweep (singular matrix, bad
        dimensions) propagate to every member of the group.

        ``deadline`` (seconds from now) bounds how long the request may wait
        for its sweep: if the coalesced sweep would *start* past the
        deadline, the request fails with
        :class:`~repro.exceptions.SolveTimeoutError` instead of joining it —
        without delaying or poisoning the rest of its group.  A sweep that
        has already started always runs to completion (the work is shared,
        and abandoning it would penalise the on-time members).
        """
        if deadline is not None and deadline < 0.0:
            raise ValueError("deadline must be >= 0 seconds (or None)")
        key = CompiledSolverCache._key(matrix, epsilon_l, backend, kappa,
                                       backend_options, fingerprint=fingerprint)
        loop = asyncio.get_running_loop()
        start = loop.time()
        future = loop.create_future()
        group = self._pending.get(key)
        if group is None:
            from ..linalg.operators import is_structured_operator

            group = _PendingGroup(
                # private copy: the caller may mutate its array while the
                # group waits for the flush (StructuredOperator storage is
                # read-only by construction, so those are shared as-is).
                matrix=(matrix if is_structured_operator(matrix)
                        else np.array(matrix, dtype=float, copy=True)),
                epsilon_l=float(epsilon_l), backend=backend,
                kappa=kappa, fingerprint=key[0],
                backend_options=dict(backend_options),
                sealed=asyncio.Event())
            self._pending[key] = group
            loop.create_task(self._flush(key, group))
        group.rhs.append(np.array(rhs, dtype=float, copy=True))
        group.futures.append(future)
        group.deadlines.append(None if deadline is None
                               else start + float(deadline))
        group.traces.append(current_trace())
        group.joined.append(start)
        self._requests += 1
        if self._m_requests is not None:
            self._m_requests.inc()
        if (len(group.rhs) >= self.max_batch_size
                and self._pending.get(key) is group):
            # seal the group: its flush task still owns it (and fires
            # immediately instead of waiting out the window), but newcomers
            # open a fresh group (and a fresh sweep) behind it.
            del self._pending[key]
            group.sealed.set()
        record = await future
        self._latency.record(loop.time() - start)
        return record

    # ------------------------------------------------------------------ #
    async def _flush(self, key: tuple, group: _PendingGroup) -> None:
        """Answer one sealed group with a single fused ``solve_batch`` sweep."""
        try:
            if self.coalesce_window > 0.0:
                # wait for stragglers, but fire immediately once the group
                # fills up (solve() seals it and sets the event).
                try:
                    await asyncio.wait_for(group.sealed.wait(),
                                           timeout=self.coalesce_window)
                except asyncio.TimeoutError:  # builtin TimeoutError on 3.11+
                    pass
            else:
                await asyncio.sleep(0)  # one loop turn: drain the burst
            if self._pending.get(key) is group:
                del self._pending[key]
            loop = asyncio.get_running_loop()
            # the sweep is about to start: requests whose deadline already
            # passed are failed now, before any solve work is spent on them,
            # and the survivors run as a (smaller) batch.
            now = loop.time()
            live_rhs, live_futures, sampled_traces = [], [], []
            for rhs, future, expires, trace, joined in zip(
                    group.rhs, group.futures, group.deadlines,
                    group.traces, group.joined):
                if expires is not None and now > expires:
                    self._timeouts += 1
                    if self._m_timeouts is not None:
                        self._m_timeouts.inc()
                    if not future.done():
                        future.set_exception(SolveTimeoutError(
                            f"deadline expired {now - expires:.4f}s before "
                            "the coalesced sweep started",
                            late_by=now - expires))
                else:
                    live_rhs.append(rhs)
                    live_futures.append(future)
                    if trace is not None and trace.sampled:
                        sampled_traces.append(trace)
                        trace.add_span("coalesce", start=joined,
                                       duration=now - joined,
                                       batch=len(group.rhs))
            if not live_rhs:
                return
            # one sweep answers N member requests: record its spans once into
            # a collector context, then adopt them (by reference — shared
            # span_ids) into every sampled member trace.
            collector = (TraceContext(sampled_traces[0].trace_id,
                                      sampled=True, origin="sweep")
                         if sampled_traces else None)

            def run_group():
                if collector is None:
                    return self._solve_group(group, live_rhs)
                with activated(collector):
                    return self._solve_group(group, live_rhs)

            records = await loop.run_in_executor(self._ensure_executor(),
                                                 run_group)
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            for future in group.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        self._batches += 1
        self._largest_batch = max(self._largest_batch, len(records))
        if self._m_batches is not None:
            self._m_batches.inc()
        if self._m_batch_width is not None:
            self._m_batch_width.observe(float(len(records)))
        if collector is not None:
            shared = collector.spans
            for trace in sampled_traces:
                trace.adopt(shared)
        for future, record in zip(live_futures, records):
            if not future.done():
                future.set_result(record)

    def _solve_group(self, group: _PendingGroup,
                     rhs_list: list) -> list[SingleSolveRecord]:
        """Runs on the executor: one cache lookup, one batched sweep."""
        solver = self.cache.solver(
            group.matrix, epsilon_l=group.epsilon_l, backend=group.backend,
            kappa=group.kappa, fingerprint=group.fingerprint,
            **group.backend_options)
        return solver.solve_batch(np.stack(rhs_list))

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_concurrency,
                    thread_name_prefix="repro-aio")
            return self._executor

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Coalescing counters, the completed-solve latency histogram
        (p50/p90/p99 — the single source worker telemetry and the cluster
        benchmark read percentiles from) and the cache's snapshot."""
        total = self._requests
        return {
            "requests": total,
            "batches": self._batches,
            "coalesced_requests": total - self._batches,
            "largest_batch": self._largest_batch,
            "pending_groups": len(self._pending),
            "mean_batch_size": (total / self._batches) if self._batches else 0.0,
            "timeouts": self._timeouts,
            "latency": self._latency.summary(),
            "cache": self.cache.stats(),
        }

    def close(self) -> None:
        """Shut the executor down (idempotent; pending sweeps finish first)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncSolveEngine":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AsyncSolveEngine(requests={self._requests}, "
                f"batches={self._batches}, "
                f"max_batch_size={self.max_batch_size})")
