"""Persistent synthesis store: spill compiled solvers to disk, keyed by matrix.

The in-memory :class:`~repro.engine.cache.CompiledSolverCache` makes repeated
requests within one process free, but every *fresh process* — a new worker of
:class:`~repro.engine.runner.ScenarioRunner`, a restarted service, the next
benchmark run — still pays the full synthesis (block-encoding, Eq.-(4)
polynomial, QSP phases, plan fusion) from scratch.  :class:`SynthesisStore`
closes that gap: the compiled payload of a solver
(:meth:`repro.core.qsvt_solver.QSVTLinearSolver.export_payload` — phase
factors, polynomial, normalisation metadata and the fused plan gate bytes) is
written to an on-disk cache keyed by the same canonical tuple the in-memory
cache uses (matrix fingerprint + ``ε_l`` + backend + options), so a store hit
restores a ready-to-solve solver in milliseconds where a compile takes
hundreds.

Format and failure model
------------------------
* one ``<sha256(key)>.npz`` file per entry, containing the payload arrays
  plus a JSON ``__meta__`` record with a **format version** — entries written
  by an incompatible version of the code are treated as misses, never as
  errors;
* writes are **atomic**: the archive is serialised to a temporary file in the
  store directory and ``os.replace``-d into place, so readers (including
  concurrent worker processes) only ever observe complete entries;
* loads are **corruption-safe**: any failure to read, parse or restore an
  entry (truncated file, garbage bytes, fingerprint mismatch) **quarantines**
  the bad entry — it is renamed to ``<entry>.corrupt`` (kept for forensics,
  invisible to later lookups), counted in :meth:`stats` under
  ``corrupt_quarantined``, and the caller falls back to recompilation, whose
  result overwrites the slot with a fresh entry.  A poisoned store can cost
  time, never correctness — and never costs that time *twice* for one entry.

The default location is ``~/.cache/repro/synthesis`` (respecting
``XDG_CACHE_HOME``); set the ``REPRO_SYNTHESIS_STORE`` environment variable
to relocate it without touching code.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import threading

import numpy as np

from ..core.qsvt_solver import QSVTLinearSolver
from ..obs.trace import current_trace
from ..utils import atomic_write

__all__ = ["SynthesisStore", "TieredSynthesisStore", "default_store_path",
           "FORMAT_VERSION"]

#: bump when the payload layout changes; mismatched entries are plain misses.
FORMAT_VERSION = 1

#: environment variable overriding the default on-disk location.
STORE_ENV_VAR = "REPRO_SYNTHESIS_STORE"


def default_store_path() -> pathlib.Path:
    """Resolve the store directory: env override, then the user cache dir."""
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return pathlib.Path(env).expanduser()
    base = os.environ.get("XDG_CACHE_HOME")
    root = pathlib.Path(base).expanduser() if base else pathlib.Path.home() / ".cache"
    return root / "repro" / "synthesis"


class SynthesisStore:
    """On-disk cache of compiled :class:`~repro.core.qsvt_solver.QSVTLinearSolver` payloads.

    Parameters
    ----------
    path:
        Store directory (created lazily on the first write).  Defaults to
        :func:`default_store_path`, i.e. ``$REPRO_SYNTHESIS_STORE`` or
        ``~/.cache/repro/synthesis``.
    chaos:
        Optional fault injector (an object with a
        ``corrupt_payload(bytes) -> bytes | None`` method, normally a
        :class:`repro.serving.resilience.ChaosPolicy`) applied to entry
        bytes on :meth:`save` — the deterministic way to exercise the
        quarantine path.  ``None`` (the default) costs nothing.

    Examples
    --------
    >>> store = SynthesisStore(tmpdir)
    >>> cache = CompiledSolverCache(store=store)        # compile once...
    >>> cache.solver(matrix, epsilon_l=1e-2, backend="circuit")
    >>> fresh = CompiledSolverCache(store=store)        # ...restore forever
    >>> fresh.solver(matrix, epsilon_l=1e-2, backend="circuit")  # store hit
    >>> fresh.stats()["compiles"]
    0
    """

    def __init__(self, path: str | os.PathLike | None = None, *,
                 chaos=None, events=None) -> None:
        self.path = pathlib.Path(path) if path is not None else default_store_path()
        self.chaos = chaos
        #: optional :class:`repro.obs.events.EventLog`: quarantines are
        #: exactly the store incident a post-hoc timeline needs to explain.
        self.events = events
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._corrupt = 0
        self._corrupt_quarantined = 0
        self._errors = 0
        self._readonly = False

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    @staticmethod
    def entry_key(cache_key: tuple) -> str:
        """Filename-safe digest of a canonical cache key tuple.

        The tuple is the one :class:`~repro.engine.cache.CompiledSolverCache`
        builds (matrix fingerprint, ``ε_l``, backend name, κ, canonical
        options) — its ``repr`` is deterministic because every element is a
        primitive, so the digest is stable across processes and runs.
        """
        return hashlib.sha256(repr(cache_key).encode()).hexdigest()

    def key_for(self, matrix, *, epsilon_l: float = 1e-2, backend: str = "auto",
                kappa: float | None = None, **backend_options) -> str:
        """Entry key for a solver configuration (mirrors the cache signature)."""
        from .cache import CompiledSolverCache  # local: cache imports nothing from here

        return self.entry_key(CompiledSolverCache._key(
            matrix, epsilon_l, backend, kappa, backend_options))

    def _entry_path(self, entry_key: str) -> pathlib.Path:
        return self.path / f"{entry_key}.npz"

    # ------------------------------------------------------------------ #
    # load / save
    # ------------------------------------------------------------------ #
    def load(self, cache_key: tuple, **backend_options) -> QSVTLinearSolver | None:
        """Restore the solver stored under ``cache_key``; ``None`` on a miss.

        ``backend_options`` are forwarded to the restored backend's
        constructor (they are part of the key, so a stored entry always
        matches the options it was compiled with).  Failure handling is
        split by what the failure means for the entry: transient I/O errors
        (permissions, descriptor exhaustion, interrupted reads) are plain
        misses that *leave the entry alone*; only content that cannot be
        parsed — or whose recorded key fingerprint disagrees with the
        requested key — is deleted and counted as corrupt.  A format-version
        mismatch is a miss that leaves the entry in place (another
        interpreter may still read it).
        """
        entry_key = self.entry_key(cache_key)
        path = self._entry_path(entry_key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        except OSError:
            # transient filesystem trouble is not evidence against the entry
            with self._lock:
                self._errors += 1
                self._misses += 1
            return None
        try:
            with np.load(io.BytesIO(raw), allow_pickle=False) as npz:
                header = json.loads(str(npz["__meta__"][()]))
                if header.get("format_version") != FORMAT_VERSION:
                    with self._lock:
                        self._misses += 1
                    return None
                # the key fingerprint was recorded at save time: it guards
                # against digest collisions and tampered/renamed entries.
                # (It intentionally is the *caller's* matrix fingerprint —
                # for non-float64 inputs this differs from the restored
                # solver's own float64 fingerprint, exactly as it does on
                # the compile path.)
                if header.get("key_fingerprint") != cache_key[0]:
                    raise ValueError("stored entry belongs to a different key")
                payload = {
                    "meta": header["payload"],
                    "arrays": {name: npz[name] for name in npz.files
                               if name != "__meta__"},
                }
            solver = QSVTLinearSolver.from_payload(payload, **backend_options)
        except Exception:
            # truncated archive, garbage bytes, missing arrays, key
            # mismatch, ... — the bytes themselves are bad: quarantine the
            # entry (rename, don't delete: the evidence survives for
            # forensics while every later lookup is a plain miss instead of
            # a repeated parse-and-fail) and recompile.
            with self._lock:
                self._corrupt += 1
                self._misses += 1
            quarantined = False
            try:
                path.replace(path.with_name(path.name + ".corrupt"))
                quarantined = True
            except OSError:
                try:
                    path.unlink()
                except OSError:
                    pass
            if quarantined:
                with self._lock:
                    self._corrupt_quarantined += 1
            if self.events is not None:
                trace = current_trace()
                self.events.emit(
                    "store_quarantine",
                    trace_id=None if trace is None else trace.trace_id,
                    entry=entry_key, path=str(path),
                    quarantined=quarantined)
            return None
        with self._lock:
            self._hits += 1
        return solver

    def save(self, cache_key: tuple, solver: QSVTLinearSolver) -> bool:
        """Persist a compiled solver under ``cache_key``; returns success.

        Backends without payload export (the exact-inverse surrogate) and I/O
        failures both return ``False`` — persistence is an optimisation and
        must never fail a solve.  A ``PermissionError`` latches the store
        **read-only** (reported by :meth:`stats`): a store pointed at a
        read-only shared directory — the tiered-cache deployment where one
        warm directory is exported to a fleet — keeps serving reads while
        writes are skipped without paying a doomed serialisation each time.
        """
        if self._readonly:
            return False
        try:
            payload = solver.export_payload()
        except NotImplementedError:
            return False
        entry_key = self.entry_key(cache_key)
        try:
            buffer = io.BytesIO()
            np.savez(buffer,
                     __meta__=json.dumps({"format_version": FORMAT_VERSION,
                                          "key_fingerprint": cache_key[0],
                                          "payload": payload["meta"]}),
                     **payload["arrays"])
            data = buffer.getvalue()
            if self.chaos is not None:
                corrupted = self.chaos.corrupt_payload(data)
                if corrupted is not None:
                    data = corrupted
            atomic_write(self._entry_path(entry_key), data)
        except PermissionError:
            with self._lock:
                self._errors += 1
                self._readonly = True
            return False
        except Exception:
            with self._lock:
                self._errors += 1
            return False
        with self._lock:
            self._stores += 1
        return True

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Delete every entry; returns the number removed (counters kept)."""
        removed = 0
        if self.path.is_dir():
            for entry in self.path.glob("*.npz"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.path.is_dir():
            return 0
        return sum(1 for _ in self.path.glob("*.npz"))

    def disk_bytes(self) -> int:
        """Summed size of the stored entries on disk."""
        if not self.path.is_dir():
            return 0
        total = 0
        for entry in self.path.glob("*.npz"):
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def stats(self) -> dict:
        """Counter snapshot (hits, misses, stores, corrupt, errors).

        Deliberately counters-only: this is called on hot paths (per-job
        worker telemetry snapshots), so it must not touch the filesystem —
        use :meth:`__len__` / :meth:`disk_bytes` for on-disk size queries.
        """
        with self._lock:
            return {
                "path": str(self.path),
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "corrupt": self._corrupt,
                "corrupt_quarantined": self._corrupt_quarantined,
                "errors": self._errors,
                "readonly": self._readonly,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SynthesisStore(path={str(self.path)!r}, hits={self._hits}, "
                f"misses={self._misses}, stores={self._stores})")


class TieredSynthesisStore:
    """Two-level persistence: a node-local store backed by a shared directory.

    The serving tier's cache hierarchy is per-worker LRU → **node-local**
    :class:`SynthesisStore` → **shared** store directory (one warm directory
    exported to the whole fleet, possibly read-only).  This class is the
    disk half of that hierarchy and is a drop-in for the ``store=``
    parameter of :class:`~repro.engine.cache.CompiledSolverCache`:

    * :meth:`load` tries the local store first; on a local miss it consults
      the shared store and **promotes** a shared hit into the local store,
      so a cold worker warm-starts from whatever any node ever compiled and
      pays the shared-directory read once per entry;
    * :meth:`save` writes the local store always and the shared store
      best-effort — a read-only shared directory (``PermissionError``)
      degrades to local-only persistence instead of crashing, exactly the
      posture a fleet worker needs when only some nodes may publish.

    Both levels accept a path or a ready :class:`SynthesisStore`; ``shared``
    may be ``None`` (single-level, pure delegation).
    """

    def __init__(self, local: "SynthesisStore | str | os.PathLike",
                 shared: "SynthesisStore | str | os.PathLike | None" = None,
                 *, events=None) -> None:
        self.local = (local if isinstance(local, SynthesisStore)
                      else SynthesisStore(local))
        self.shared = (shared if isinstance(shared, SynthesisStore)
                       or shared is None else SynthesisStore(shared))
        if events is not None:
            self.local.events = events
            if self.shared is not None:
                self.shared.events = events
        self._lock = threading.Lock()
        self._local_hits = 0
        self._shared_hits = 0
        self._promotions = 0
        self._shared_denied = 0

    #: the cache hands ``str(store.path)`` to process workers; the local
    #: level is the per-node location that makes sense to inherit.
    @property
    def path(self) -> pathlib.Path:
        return self.local.path

    # ------------------------------------------------------------------ #
    def load(self, cache_key: tuple, **backend_options) -> QSVTLinearSolver | None:
        """Tiered lookup: local store, then shared store (with promotion)."""
        solver = self.local.load(cache_key, **backend_options)
        if solver is not None:
            with self._lock:
                self._local_hits += 1
            return solver
        if self.shared is None:
            return None
        try:
            solver = self.shared.load(cache_key, **backend_options)
        except PermissionError:
            # an unreadable shared directory must degrade to a local-only
            # store, never take the worker down (SynthesisStore.load already
            # absorbs most OSErrors; this guards pathological mounts).
            with self._lock:
                self._shared_denied += 1
            return None
        if solver is None:
            return None
        with self._lock:
            self._shared_hits += 1
        if self.local.save(cache_key, solver):
            with self._lock:
                self._promotions += 1
        return solver

    def save(self, cache_key: tuple, solver: QSVTLinearSolver) -> bool:
        """Persist locally (authoritative) and to the shared level best-effort."""
        saved = self.local.save(cache_key, solver)
        if self.shared is not None:
            try:
                self.shared.save(cache_key, solver)
            except PermissionError:  # pragma: no cover - save() already absorbs
                with self._lock:
                    self._shared_denied += 1
        return saved

    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Clear the local level only (the shared level is fleet property)."""
        return self.local.clear()

    def __len__(self) -> int:
        return len(self.local)

    def stats(self) -> dict:
        """Tier counters plus both levels' own snapshots."""
        with self._lock:
            tiered = {
                "local_hits": self._local_hits,
                "shared_hits": self._shared_hits,
                "promotions": self._promotions,
                "shared_denied": self._shared_denied,
            }
        tiered["local"] = self.local.stats()
        tiered["shared"] = None if self.shared is None else self.shared.stats()
        return tiered

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TieredSynthesisStore(local={str(self.local.path)!r}, "
                f"shared={None if self.shared is None else str(self.shared.path)!r})")
