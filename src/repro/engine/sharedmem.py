"""Zero-copy matrix hand-off to worker processes via shared memory.

``ScenarioRunner(mode="process")`` used to pickle every job's full ``N x N``
matrix through the executor pipe — once *per job*, even when a thousand jobs
share one matrix.  This module replaces the per-job copy with a per-*matrix*
copy: the parent publishes each distinct matrix (by content fingerprint) into
a :mod:`multiprocessing.shared_memory` segment exactly once, jobs carry a
tiny :class:`SharedMatrixHandle` instead of the array, and workers attach
read-only views backed by the same physical pages.

Lifecycle is deterministic rather than garbage-collector-driven:

* :class:`SharedMatrixRegistry` (parent side) owns the segments.  ``publish``
  is idempotent per fingerprint and refcounted; ``release`` drops one
  reference and unlinks at zero; ``close`` (also the context-manager exit and
  a ``__del__`` safety net) unlinks everything that is left.  After a normal
  exit, an error exit, or an explicit ``close()`` no segment survives.
* Workers keep a per-process attachment table so each segment is mapped once
  per worker regardless of how many jobs reference it; the views are marked
  read-only, so a buggy worker cannot corrupt the matrix under its siblings.
  The handle also carries the publish-time **fingerprint**, which the
  compiled-solver cache accepts directly — workers skip re-hashing the bytes
  on every job on top of skipping the copy.

POSIX note: the registry unlinks segment *names*; attached mappings stay
valid until each process drops them (exactly like unlinking an open file),
so ``close()`` never races a still-running worker.  The runner uses the
``fork`` start method, so worker processes share the parent's resource
tracker and the parent's unlink is the single point of cleanup (on
Python ≥ 3.13 attachments additionally opt out of tracking via
``track=False``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, replace
from multiprocessing import shared_memory

import numpy as np

from ..utils import is_linear_operator, matrix_fingerprint

__all__ = [
    "SharedMatrixHandle",
    "SharedMatrixRegistry",
    "attach_matrix",
    "detach_all",
]

#: byte alignment of packed component arrays inside a structured segment
#: (generous for any numeric dtype).
_PACK_ALIGN = 16


@dataclass(frozen=True)
class SharedMatrixHandle:
    """Picklable reference to a published matrix.

    This is what crosses the process boundary instead of the array: the
    shared-memory segment name plus everything needed to rebuild the ndarray
    view (dtype, shape) and to key caches (the content ``fingerprint``,
    computed from the published bytes, so workers never re-hash).

    **Structured operators** publish their component arrays packed into one
    segment; ``structure`` then carries the operator metadata plus per-array
    specs (dtype, shape, byte offset), ``nbytes`` is the structured payload
    size (``nnz_bytes``-ish, not ``N²·8``), and the worker-side attach
    rebuilds the operator over zero-copy read-only views.
    """

    segment: str
    fingerprint: str
    dtype: str
    shape: tuple[int, ...]
    nbytes: int
    creator_pid: int
    structure: dict | None = None


class SharedMatrixRegistry:
    """Fingerprint-keyed owner of shared-memory matrix segments.

    Thread-safe.  Use as a context manager (or call :meth:`close`) so the
    segments are unlinked deterministically:

    >>> with SharedMatrixRegistry() as registry:
    ...     handle = registry.publish(matrix)        # one copy, refcount 1
    ...     same = registry.publish(matrix)          # dedup: same segment
    ...     view = attach_matrix(handle)             # zero-copy read-only view
    ... # exiting unlinks every segment, even on error
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: fingerprint -> (segment, handle, refcount)
        self._segments: dict[str, tuple[shared_memory.SharedMemory,
                                        SharedMatrixHandle, int]] = {}
        self._closed = False
        self._publishes = 0
        self._copies = 0

    # ------------------------------------------------------------------ #
    def publish(self, matrix) -> SharedMatrixHandle:
        """Copy ``matrix`` into shared memory (once per distinct content).

        Re-publishing a matrix whose bytes are already live returns the
        existing handle and bumps its refcount — the copy happens exactly
        once per fingerprint, which is the whole point.  Structured
        operators publish their ``O(nnz)`` component arrays instead of a
        dense ``N²`` buffer.
        """
        if is_linear_operator(matrix):
            return self._publish_entry(matrix_fingerprint(matrix),
                                       lambda: self._pack_structured(matrix))
        array = np.ascontiguousarray(np.asarray(matrix))
        return self._publish_entry(matrix_fingerprint(array),
                                   lambda: self._pack_dense(array))

    def _publish_entry(self, fingerprint: str, pack) -> SharedMatrixHandle:
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot publish through a closed registry")
            entry = self._segments.get(fingerprint)
            self._publishes += 1
            if entry is not None:
                segment, handle, refcount = entry
                self._segments[fingerprint] = (segment, handle, refcount + 1)
                return handle
            segment, handle = pack()
            handle = replace(handle, fingerprint=fingerprint)
            self._segments[fingerprint] = (segment, handle, 1)
            self._copies += 1
            return handle

    @staticmethod
    def _pack_dense(array: np.ndarray):
        segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        del view
        handle = SharedMatrixHandle(
            segment=segment.name, fingerprint="",
            dtype=str(array.dtype), shape=tuple(array.shape),
            nbytes=int(array.nbytes), creator_pid=os.getpid())
        return segment, handle

    @staticmethod
    def _pack_structured(operator):
        """One segment holding every component array, aligned and indexed."""
        meta, arrays = operator.to_state()
        specs = []
        offset = 0
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            specs.append({"dtype": str(arr.dtype), "shape": list(arr.shape),
                          "offset": offset})
            offset += -(-arr.nbytes // _PACK_ALIGN) * _PACK_ALIGN
        total = max(offset, 1)
        segment = shared_memory.SharedMemory(create=True, size=total)
        for spec, arr in zip(specs, arrays):
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf,
                              offset=spec["offset"])
            view[...] = arr
            del view
        handle = SharedMatrixHandle(
            segment=segment.name, fingerprint="",
            dtype="structured", shape=tuple(operator.shape),
            nbytes=int(total), creator_pid=os.getpid(),
            structure={"meta": meta, "arrays": specs})
        return segment, handle

    def release(self, handle_or_fingerprint) -> bool:
        """Drop one reference; unlink the segment when the count reaches zero.

        Returns ``True`` when this call unlinked the segment.  Releasing an
        unknown fingerprint is a no-op (``False``) so teardown code can be
        unconditional.
        """
        fingerprint = getattr(handle_or_fingerprint, "fingerprint",
                              handle_or_fingerprint)
        with self._lock:
            entry = self._segments.get(fingerprint)
            if entry is None:
                return False
            segment, handle, refcount = entry
            if refcount > 1:
                self._segments[fingerprint] = (segment, handle, refcount - 1)
                return False
            del self._segments[fingerprint]
        _destroy_segment(segment)
        return True

    def close(self) -> None:
        """Unlink every live segment.  Idempotent; also the ``with`` exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = [entry[0] for entry in self._segments.values()]
            self._segments.clear()
        for segment in segments:
            _destroy_segment(segment)

    # ------------------------------------------------------------------ #
    def segment_names(self) -> list[str]:
        """Names of the currently live segments (test/diagnostic hook)."""
        with self._lock:
            return [entry[1].segment for entry in self._segments.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    def stats(self) -> dict:
        """Snapshot: live segments/bytes and how many copies publishing saved."""
        with self._lock:
            segments = len(self._segments)
            total_bytes = sum(entry[1].nbytes for entry in self._segments.values())
        return {
            "segments": segments,
            "segment_bytes": total_bytes,
            "publishes": self._publishes,
            "copies": self._copies,
            "copies_saved": self._publishes - self._copies,
        }

    def __enter__(self) -> "SharedMatrixRegistry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net only
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (f"SharedMatrixRegistry(segments={stats['segments']}, "
                f"bytes={stats['segment_bytes']}, closed={self._closed})")


def _destroy_segment(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except BufferError:  # a local view is still alive; the unlink still works
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


# ---------------------------------------------------------------------- #
# worker side: per-process attachment table
# ---------------------------------------------------------------------- #
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_ATTACH_LOCK = threading.Lock()


def attach_matrix(handle: SharedMatrixHandle):
    """Return a read-only zero-copy view of a published matrix.

    The segment is mapped once per process and memoised, so a worker
    executing many jobs against the same matrix attaches a single time; the
    view is zero-copy (backed by the shared pages) and write-protected.
    Dense handles return an ndarray; structured handles rebuild the
    :class:`~repro.linalg.operators.StructuredOperator` over read-only views
    of the packed component arrays (the operator constructors adopt frozen
    arrays without copying).
    """
    with _ATTACH_LOCK:
        entry = _ATTACHED.get(handle.segment)
        if entry is None:
            try:
                # Python >= 3.13: opt out of resource tracking for attachments
                # (the publishing process owns cleanup).
                segment = shared_memory.SharedMemory(name=handle.segment,
                                                     track=False)
            except TypeError:
                # <= 3.12 tracks attachments too; with the fork start method
                # the workers share the parent's tracker and registration is
                # set-deduplicated, so the parent's unlink stays the single
                # cleanup point.
                segment = shared_memory.SharedMemory(name=handle.segment)
            if handle.structure is not None:
                from ..linalg.operators import operator_from_state

                arrays = []
                for spec in handle.structure["arrays"]:
                    view = np.ndarray(tuple(spec["shape"]),
                                      dtype=np.dtype(spec["dtype"]),
                                      buffer=segment.buf,
                                      offset=int(spec["offset"]))
                    view.flags.writeable = False
                    arrays.append(view)
                view = operator_from_state(handle.structure["meta"], arrays)
            else:
                view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                                  buffer=segment.buf)
                view.flags.writeable = False
            entry = (segment, view)
            _ATTACHED[handle.segment] = entry
    return entry[1]


def detach_all() -> int:
    """Drop every memoised attachment in this process; returns the count.

    Called by tests and long-lived workers between runs; the arrays handed
    out by :func:`attach_matrix` must no longer be in use (a still-referenced
    buffer keeps its mapping alive until garbage collection, which is safe
    but delays the memory return).
    """
    with _ATTACH_LOCK:
        entries = list(_ATTACHED.values())
        _ATTACHED.clear()
    for segment, view in entries:
        del view
        try:
            segment.close()
        except BufferError:  # caller still holds the view; GC will finish it
            pass
    return len(entries)
