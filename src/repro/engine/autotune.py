"""Cost-model-driven configuration: pick ε_l, backend and refinement target.

Every job the engine runs has three free knobs — the inner accuracy ``ε_l``
(which sets the Eq.-(4) polynomial degree *and* the Theorem III.1 iteration
count), the simulation backend, and the refinement target — and PRs 1–3
simply inherited the paper's ``ε_l = 10⁻²`` default.  That default is wrong
for most of the problem suite: it diverges outright for ``κ > 100`` and
wastes block-encoding calls for small κ.  :class:`Autotuner` closes the loop:

* **cost model** (Table I): :func:`repro.core.cost_model.optimal_epsilon_l`
  minimises total block-encoding calls (number of solves × polynomial
  degree) over the admissible ``ε_l κ < 1`` grid;
* **backend selection**: circuit-level simulation when the predicted degree
  and the problem size allow it (the same thresholds the solver's ``"auto"``
  mode applies), the ideal-polynomial backend otherwise;
* **live telemetry**: :meth:`Autotuner.observe` folds a
  :class:`~repro.engine.runner.RunReport` back into a per-family profile —
  measured iteration counts tighten ε_l when the model was optimistic, and
  cache/store hit rates ride along for reporting;
* **persistence**: profiles live in a JSON file next to the synthesis store
  (``~/.cache/repro/autotune.json``, override via ``REPRO_AUTOTUNE_STORE``),
  so a restarted service starts from what previous runs learned.

>>> tuner = Autotuner(path=tmp)
>>> jobs = tuner.tune_scenario("poisson-2d", num_rhs=8).jobs
>>> report = ScenarioRunner(mode="serial").run(jobs)
>>> tuner.observe("poisson-2d", report, kappa=jobs[0].kappa)
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from dataclasses import asdict, dataclass, replace

import numpy as np

from ..core.convergence import iteration_bound
from ..core.cost_model import (
    epsilon_l_candidates,
    optimal_epsilon_l,
    refinement_block_encoding_calls,
)
from ..core.qsvt_solver import auto_backend_name
from ..utils import atomic_write, is_power_of_two
from .runner import SolveJob
from .store import default_store_path

__all__ = [
    "TunedConfig",
    "FamilyProfile",
    "ProfileStore",
    "Autotuner",
    "default_profile_path",
]

#: environment variable overriding the default profile-store location.
PROFILE_ENV_VAR = "REPRO_AUTOTUNE_STORE"

#: bump when the profile schema changes; mismatched files load as empty.
PROFILE_FORMAT_VERSION = 1


def default_profile_path() -> pathlib.Path:
    """Profile file next to the synthesis store (see module docstring)."""
    env = os.environ.get(PROFILE_ENV_VAR)
    if env:
        return pathlib.Path(env).expanduser()
    return default_store_path().parent / "autotune.json"


@dataclass(frozen=True)
class TunedConfig:
    """One tuned solver configuration for a ``(κ, ε)`` problem."""

    #: inner (single-solve) accuracy of the QSVT solver.
    epsilon_l: float
    #: backend name (``"circuit"`` or ``"ideal"``).
    backend: str
    #: refinement target ``ε`` on the scaled residual.
    target_accuracy: float
    #: condition number the choice was made for.
    kappa: float
    #: Theorem III.1 iteration bound at this ``(κ, ε, ε_l)``.
    predicted_iterations: int
    #: Table I total block-encoding calls of the refined solve.
    predicted_block_encoding_calls: float
    #: ``"cost-model"`` (fresh optimisation) or ``"profile"`` (replayed).
    source: str


@dataclass
class FamilyProfile:
    """What the autotuner knows about one problem family.

    The prediction fields come from the cost model; the ``observed_*`` /
    rate fields are telemetry folded in by :meth:`Autotuner.observe` over
    ``runs`` observations.
    """

    family: str
    kappa: float
    target_accuracy: float
    epsilon_l: float
    backend: str
    predicted_iterations: int = 0
    observed_iterations: float = float("nan")
    converged_fraction: float = float("nan")
    cache_hit_rate: float = float("nan")
    store_hit_rate: float = float("nan")
    total_block_encoding_calls: int = 0
    runs: int = 0
    #: cheapest configuration measured so far (the hill-climb's anchor).
    best_epsilon_l: float = float("nan")
    best_calls_per_job: float = float("nan")

    #: float fields whose NaN sentinel is serialised as JSON ``null`` (bare
    #: ``NaN`` tokens are not standard JSON; jq and strict parsers reject them).
    _NAN_FIELDS = ("observed_iterations", "converged_fraction",
                   "cache_hit_rate", "store_hit_rate", "best_epsilon_l",
                   "best_calls_per_job")

    def to_dict(self) -> dict:
        data = asdict(self)
        for field in self._NAN_FIELDS:
            if isinstance(data[field], float) and np.isnan(data[field]):
                data[field] = None
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FamilyProfile":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        for field in cls._NAN_FIELDS:
            if known.get(field) is None:
                known[field] = float("nan")
        return cls(**known)


class ProfileStore:
    """Atomic, corruption-safe JSON persistence for family profiles."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = (pathlib.Path(path) if path is not None
                     else default_profile_path())
        self._lock = threading.Lock()

    def load(self) -> dict[str, FamilyProfile]:
        """Read every stored profile; any failure loads as an empty store.

        A profile is a *hint*, never a correctness input — unreadable or
        version-mismatched files cost a re-tune, nothing more.
        """
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
            if raw.get("format_version") != PROFILE_FORMAT_VERSION:
                return {}
            return {name: FamilyProfile.from_dict(entry)
                    for name, entry in raw.get("profiles", {}).items()}
        except Exception:  # noqa: BLE001 - "any failure" is the contract
            return {}

    def save(self, profiles: dict[str, FamilyProfile]) -> bool:
        """Atomically merge ``profiles`` into the store; returns success.

        The on-disk contents are re-read and merged *per family* (the
        caller's entries win) before the atomic replace, so concurrent
        :class:`Autotuner` instances sharing one store path usually keep
        each other's families.  The read-merge-replace is serialised only
        within this process (``threading.Lock``); two *processes* saving in
        the same instant can still race, losing one writer's families for
        that save — an accepted trade-off for a hint store whose worst
        failure is a re-tune.
        """
        with self._lock:
            merged = {**self.load(), **profiles}
            document = {
                "format_version": PROFILE_FORMAT_VERSION,
                "profiles": {name: profile.to_dict()
                             for name, profile in merged.items()},
            }
            text = json.dumps(document, indent=2, allow_nan=False) + "\n"
            try:
                atomic_write(self.path, text)
            except OSError:
                return False
        return True


class Autotuner:
    """Choose per-problem solver configurations from cost model + telemetry.

    Parameters
    ----------
    path:
        Profile-store location (default: :func:`default_profile_path`).
    target_accuracy:
        Refinement target ``ε`` used when a job does not carry one.
    rho_max:
        Convergence margin: candidate ``ε_l`` satisfy ``ε_l κ <= rho_max``.
    objective:
        Cost-model objective passed to
        :func:`~repro.core.cost_model.optimal_epsilon_l`.
    use_profiles:
        Whether :meth:`choose` may replay a stored family profile instead of
        re-optimising (fresh optimisation is always used when no compatible
        profile exists).
    autosave:
        Persist profiles after every :meth:`observe` call.
    """

    def __init__(self, *, path: str | os.PathLike | None = None,
                 target_accuracy: float = 1e-8, rho_max: float = 0.5,
                 objective: str = "block-encoding-calls",
                 use_profiles: bool = True, autosave: bool = True) -> None:
        if not 0.0 < target_accuracy < 1.0:
            raise ValueError("target_accuracy must be in (0, 1)")
        if not 0.0 < rho_max < 1.0:
            raise ValueError("rho_max must be in (0, 1)")
        self.target_accuracy = float(target_accuracy)
        self.rho_max = float(rho_max)
        self.objective = objective
        self.use_profiles = bool(use_profiles)
        self.autosave = bool(autosave)
        self.store = ProfileStore(path)
        self.profiles: dict[str, FamilyProfile] = self.store.load()
        #: ε_l most recently handed out per family by :meth:`tune` /
        #: :meth:`tune_scenario` — what the next report presumably ran with.
        self._issued: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # configuration choice
    # ------------------------------------------------------------------ #
    def choose(self, *, kappa: float, target_accuracy: float | None = None,
               dimension: int | None = None,
               family: str | None = None) -> TunedConfig:
        """Tuned ``(ε_l, backend, ε)`` for a problem of condition number κ.

        A stored profile for ``family`` is replayed when it was learned for
        a compatible problem (same target, κ within a factor of two);
        otherwise the Table I optimisation runs fresh.
        """
        kappa = float(kappa)
        if not np.isfinite(kappa) or not 1.0 <= kappa < 1e15:
            raise ValueError(
                "kappa must be a finite value in [1, 1e15): a singular or "
                "numerically singular matrix cannot be tuned")
        epsilon = float(target_accuracy if target_accuracy is not None
                        else self.target_accuracy)
        profile = self.profiles.get(family) if (family and self.use_profiles) else None
        # replay only while the profile's ε_l still honours this tuner's
        # convergence margin *at the requested κ* — a profile learned at a
        # smaller κ may sit right at its own ceiling rho_max/κ_profile, and
        # replaying it against a larger κ would hand out ε_l κ >= 1.
        if (profile is not None and profile.target_accuracy == epsilon
                and 0.5 <= profile.kappa / kappa <= 2.0
                and profile.epsilon_l * kappa <= self.rho_max):
            return TunedConfig(
                epsilon_l=profile.epsilon_l,
                # the backend rule is deterministic in (κ, ε_l, N): re-derive
                # it at *this* problem's size — the profile may have been
                # learned at a circuit-eligible dimension this one is not.
                backend=(profile.backend if dimension is None
                         else self._pick_backend(kappa, profile.epsilon_l,
                                                 dimension)),
                target_accuracy=epsilon, kappa=kappa,
                # both predictions at the *requested* κ (the replay window
                # tolerates a 2x κ mismatch; the profile's own numbers
                # describe the κ it was learned at).
                predicted_iterations=iteration_bound(
                    epsilon, profile.epsilon_l, kappa),
                predicted_block_encoding_calls=refinement_block_encoding_calls(
                    kappa, epsilon, profile.epsilon_l),
                source="profile")
        epsilon_l = optimal_epsilon_l(
            kappa, epsilon, objective=self.objective,
            candidates=epsilon_l_candidates(kappa, epsilon,
                                            rho_max=self.rho_max))
        return TunedConfig(
            epsilon_l=epsilon_l,
            backend=self._pick_backend(kappa, epsilon_l, dimension),
            target_accuracy=epsilon, kappa=kappa,
            predicted_iterations=iteration_bound(epsilon, epsilon_l, kappa),
            predicted_block_encoding_calls=refinement_block_encoding_calls(
                kappa, epsilon, epsilon_l),
            source="cost-model")

    def _pick_backend(self, kappa: float, epsilon_l: float,
                      dimension: int | None) -> str:
        """Circuit simulation when degree and size permit, ideal otherwise.

        Delegates to the solver's own ``"auto"`` rule
        (:func:`repro.core.qsvt_solver.auto_backend_name`) but decides
        *before* synthesis — jobs carry an explicit backend name, which keeps
        cache keys stable across processes.  Non-power-of-two sizes cannot
        use the circuit encodings at all.
        """
        if dimension is None or not is_power_of_two(int(dimension)):
            return "ideal"
        return auto_backend_name(kappa, epsilon_l, int(dimension))

    # ------------------------------------------------------------------ #
    # job rewriting
    # ------------------------------------------------------------------ #
    def tune(self, jobs, *, family: str | None = None) -> list[SolveJob]:
        """Rewrite each job's ``(ε_l, backend, target)`` with a tuned choice.

        κ comes from the job (pinned by every problem family); jobs without
        one get it measured from the matrix here, once, instead of inside
        the solver on every worker.  Jobs with ``target_accuracy=None`` are
        *single-solve* requests whose ``ε_l`` is the caller's accuracy
        contract — those keep both fields and only have their backend tuned.
        """
        tuned = []
        measured: dict[object, float] = {}
        chosen: dict[tuple, TunedConfig] = {}
        issued: dict[str, set[float]] = {}
        for job in jobs:
            kappa = job.kappa
            if kappa is None:
                # resolve_matrix also attaches shared-memory handles, so
                # zero-copy process-mode jobs tune like in-line ones; the
                # O(N³) measurement is memoised per matrix object/handle so
                # a chain or multi-RHS stream pays for one SVD, not one per
                # job.
                memo_key = (job.shared.fingerprint if job.shared is not None
                            else id(job.matrix))
                kappa = measured.get(memo_key)
                if kappa is None:
                    matrix, _ = job.resolve_matrix()
                    from ..linalg import condition_number
                    from ..utils import is_linear_operator

                    # structured operators report exact bound-derived κ (or
                    # densify behind the operator's own size wall)
                    kappa = (float(condition_number(matrix))
                             if is_linear_operator(matrix)
                             else float(np.linalg.cond(matrix, 2)))
                    measured[memo_key] = kappa
            dimension = int(job.rhs.shape[-1])
            if job.target_accuracy is None:
                tuned.append(replace(
                    job, kappa=kappa,
                    backend=self._pick_backend(kappa, job.epsilon_l, dimension),
                    metadata={**job.metadata, "autotuned": "backend-only"}))
                continue
            job_family = family if family is not None else job.metadata.get("family")
            # a chain / multi-RHS stream repeats one (family, κ, ε, N)
            # combination job after job: optimise the candidate grid once
            choose_key = (job_family, kappa, job.target_accuracy, dimension)
            config = chosen.get(choose_key)
            if config is None:
                config = self.choose(
                    kappa=kappa, target_accuracy=job.target_accuracy,
                    dimension=dimension, family=job_family)
                chosen[choose_key] = config
            if job_family is not None:
                issued.setdefault(job_family, set()).add(config.epsilon_l)
            tuned.append(replace(
                job, epsilon_l=config.epsilon_l, backend=config.backend,
                target_accuracy=config.target_accuracy, kappa=kappa,
                metadata={**job.metadata, "autotuned": config.source}))
        # remember the hand-out only when it was uniform: a family tuned to
        # several ε_l (e.g. a κ sweep) has no single "configuration the run
        # executed" for observe() to attribute telemetry to.
        for name, values in issued.items():
            if len(values) == 1:
                self._issued[name] = next(iter(values))
            else:
                self._issued.pop(name, None)
        return tuned

    def tune_scenario(self, name: str, **params):
        """Build a registered scenario and tune its jobs in place."""
        from .registry import build_scenario

        scenario = build_scenario(name, **params)
        scenario.jobs = self.tune(scenario.jobs, family=name)
        return scenario

    # ------------------------------------------------------------------ #
    # telemetry feedback
    # ------------------------------------------------------------------ #
    def observe(self, family: str, report, *, kappa: float,
                target_accuracy: float | None = None,
                dimension: int | None = None,
                epsilon_l: float | None = None) -> FamilyProfile:
        """Fold a run's telemetry into the family's persisted profile.

        The cost-model choice seeds the profile; measured iteration counts
        then move ``ε_l`` in whichever direction the Theorem III.1 bound was
        wrong:

        * iterations *beyond* the bound, or non-converged jobs, mean the
          effective contraction is worse than ``ε_l κ`` (backend noise, a κ
          underestimate) — tighten ``ε_l``, quartering it per observation,
          down to the refinement target;
        * iterations strictly *under* the bound mean the backend overdelivers
          (the calibrated polynomials routinely beat their requested
          accuracy), so per-solve degree is being wasted — relax ``ε_l``
          halfway (in log space) towards the loosest guaranteed-convergent
          value ``rho_max/κ``.  Repeated observe/run rounds converge
          geometrically onto the cheapest safe configuration.

        ``dimension`` sizes the backend choice recorded in the profile; when
        omitted it is inferred from the reported solutions.  ``epsilon_l``
        is the inner accuracy the report's jobs actually ran with; when
        omitted it falls back to the value :meth:`tune` last handed out for
        this family, then to the decision rule :meth:`tune` would apply
        now — so telemetry is attributed to the configuration the run
        executed, not to a profile adapted since.
        """
        epsilon = float(target_accuracy if target_accuracy is not None
                        else self.target_accuracy)
        kappa = float(kappa)
        if not np.isfinite(kappa) or not 1.0 <= kappa < 1e15:
            raise ValueError(
                "kappa must be a finite value in [1, 1e15): a singular or "
                "numerically singular matrix cannot be profiled")
        previous = self.profiles.get(family)
        if epsilon_l is None:
            epsilon_l = self._issued.get(family)
        if epsilon_l is None:
            epsilon_l = self.choose(kappa=kappa, target_accuracy=epsilon,
                                    dimension=dimension,
                                    family=family).epsilon_l
        epsilon_l = float(epsilon_l)
        rho_ceiling = self.rho_max / kappa
        # ε_l outside the convergence region predicts nothing: treat every
        # observed iteration as excess, which tightens the profile.
        predicted = (iteration_bound(epsilon, epsilon_l, kappa)
                     if epsilon_l * kappa < 1.0 else 0)
        all_results = list(report)
        results = [result for result in all_results if result.ok]
        converged = [result for result in results if result.converged]
        # errored jobs count against convergence: a stream where some jobs
        # raised must tighten, not relax on the survivors' statistics.
        converged_fraction = (len(converged) / len(all_results)
                              if all_results else float("nan"))
        observed_iterations = (float(np.mean([r.iterations for r in converged]))
                               if converged else float("nan"))
        calls_per_job = (sum(r.block_encoding_calls for r in results)
                         / len(results)) if results else float("nan")
        best_epsilon_l = (previous.best_epsilon_l
                          if previous is not None else float("nan"))
        best_calls = (previous.best_calls_per_job
                      if previous is not None else float("nan"))
        excess = 0.0
        if np.isfinite(observed_iterations):
            excess = max(0.0, observed_iterations - predicted)
        if all_results and converged_fraction < 1.0:
            excess = max(excess, 1.0)
        if excess > 0:
            epsilon_l = max(epsilon_l * 0.25 ** excess, epsilon)
        elif np.isfinite(calls_per_job):
            if np.isfinite(best_calls) and calls_per_job > best_calls:
                # this round regressed: retreat halfway towards the cheapest
                # configuration measured so far.
                epsilon_l = float(np.sqrt(epsilon_l * best_epsilon_l))
            else:
                # new best (or first measurement): anchor the climb here...
                best_epsilon_l, best_calls = epsilon_l, calls_per_job
                if (np.isfinite(observed_iterations)
                        and observed_iterations < predicted
                        and epsilon_l < rho_ceiling):
                    # ...and keep relaxing while the bound stays pessimistic.
                    epsilon_l = float(np.sqrt(epsilon_l * rho_ceiling))
        summary = getattr(report, "summary", None) or {}
        cache = summary.get("cache") or {}
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        cache_hit_rate = (cache.get("hits", 0) / lookups) if lookups else float("nan")
        store_hit_rate = (cache.get("store_hits", 0) / lookups) if lookups else float("nan")
        # re-derive the backend for the adapted ε_l at the *problem's* size
        # (inferred from the solutions when not given) — inheriting the
        # dimension-less cost-model choice would pin every profile to the
        # ideal backend and silently disable circuit-backend selection.
        if dimension is None:
            for result in results:
                if result.x is not None:
                    dimension = int(np.asarray(result.x).shape[-1])
                    break
        profile = FamilyProfile(
            family=family, kappa=kappa, target_accuracy=epsilon,
            epsilon_l=float(epsilon_l),
            backend=self._pick_backend(kappa, float(epsilon_l), dimension),
            predicted_iterations=(iteration_bound(epsilon, epsilon_l, kappa)
                                  if epsilon_l * kappa < 1.0 else 0),
            observed_iterations=observed_iterations,
            converged_fraction=converged_fraction,
            cache_hit_rate=cache_hit_rate, store_hit_rate=store_hit_rate,
            total_block_encoding_calls=int(sum(
                r.block_encoding_calls for r in results)),
            runs=(previous.runs if previous is not None else 0) + 1,
            best_epsilon_l=best_epsilon_l, best_calls_per_job=best_calls)
        self.profiles[family] = profile
        if self.autosave:
            self.store.save(self.profiles)
        return profile

    def profile(self, family: str) -> FamilyProfile | None:
        """Stored profile for ``family`` (``None`` when never observed)."""
        return self.profiles.get(family)

    def stats(self) -> dict:
        """Snapshot: profile count, store path, per-family ε_l choices."""
        return {
            "path": str(self.store.path),
            "profiles": len(self.profiles),
            "epsilon_l": {name: profile.epsilon_l
                          for name, profile in sorted(self.profiles.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Autotuner(profiles={len(self.profiles)}, "
                f"path={str(self.store.path)!r})")
