"""Parallel scenario runner: fan independent solve jobs out across workers.

A production deployment of the paper's pipeline answers streams of
independent requests — different matrices, different right-hand sides,
different accuracy targets.  Each request is CPU-bound dense simulation with
no shared state beyond the compiled synthesis, which makes the workload
embarrassingly parallel.  :class:`ScenarioRunner` models it as a queue of
:class:`SolveJob` descriptions executed by a ``concurrent.futures`` pool:

* ``mode="serial"`` — run in the calling thread (the reference semantics the
  tests compare the parallel modes against);
* ``mode="thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`;
  numpy releases the GIL inside its kernels, so threads already overlap the
  heavy contractions and share one :class:`~repro.engine.cache.CompiledSolverCache`;
* ``mode="process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  (fork start method when available) for full CPU parallelism; each worker
  process keeps its own compiled-solver cache, so jobs hitting the same
  matrix still compile at most once *per worker*.

The process mode is built not to throw away the compile-once / solve-many
advantage at the process boundary:

* **shared-memory hand-off** (default) — each distinct matrix is published
  once into a :class:`~repro.engine.sharedmem.SharedMatrixRegistry` segment
  and jobs carry a fingerprint handle instead of the array, so ``N x N``
  payloads cross the boundary once per *matrix* instead of once per *job*
  (and workers skip re-hashing the bytes: the handle carries the
  fingerprint).  Segments are refcounted and unlinked deterministically —
  use the runner as a context manager to share them across several ``run``
  calls, or let each ``run`` clean up after itself;
* **persistent synthesis store** (``store=``) — worker caches spill and
  restore compiled payloads via :class:`~repro.engine.store.SynthesisStore`,
  so fresh worker processes (and fresh *runs*) skip synthesis for matrices
  any previous process already compiled;
* **thread pinning** (``threads_per_worker``, default 1) — worker BLAS /
  OpenMP pools are capped so ``max_workers`` processes times the BLAS thread
  count cannot oversubscribe the machine.

Jobs are plain data (numpy arrays + strings), hence picklable; results come
back as :class:`JobResult` records in submission order, with per-job failures
captured in ``error`` instead of aborting the whole run.  :meth:`ScenarioRunner.run`
returns a :class:`RunReport` — a plain ``list`` of results with an attached
``summary`` aggregating throughput and the per-worker cache/store telemetry
that previously died inside the worker processes.
"""

from __future__ import annotations

import contextlib
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.refinement import MixedPrecisionRefinement
from ..quantum.plan import plan_cache
from .cache import CompiledSolverCache
from .sharedmem import SharedMatrixHandle, SharedMatrixRegistry, attach_matrix

__all__ = ["SolveJob", "JobResult", "RunReport", "execute_job", "ScenarioRunner"]


@dataclass
class SolveJob:
    """One independent linear-system request.

    Attributes
    ----------
    name:
        Identifier echoed into the matching :class:`JobResult`.
    matrix / rhs:
        The system ``A x = b``.  ``matrix`` may be ``None`` when ``shared``
        carries a shared-memory handle instead (the zero-copy process-mode
        hand-off); :meth:`resolve_matrix` returns whichever is present.
    shared:
        Optional :class:`~repro.engine.sharedmem.SharedMatrixHandle`
        replacing the in-line matrix for process workers.
    epsilon_l:
        Inner (single-solve) accuracy of the QSVT solver.
    target_accuracy:
        When set, the job runs full mixed-precision refinement (Algorithm 2)
        down to this scaled residual; when ``None`` the job is a single QSVT
        solve at ``epsilon_l``.
    backend:
        Backend *name* (``"auto"``, ``"circuit"``, ``"ideal"``, ``"exact"``) —
        names keep the job picklable and cache-friendly.
    kappa:
        Optional pinned condition number.
    backend_options:
        Extra keyword arguments for the backend factory.
    metadata:
        Free-form labels (scenario parameters etc.), copied to the result.
    """

    name: str
    matrix: np.ndarray | None
    rhs: np.ndarray
    epsilon_l: float = 1e-2
    target_accuracy: float | None = None
    backend: str = "auto"
    kappa: float | None = None
    backend_options: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)
    shared: SharedMatrixHandle | None = None

    def resolve_matrix(self) -> tuple[np.ndarray, str | None]:
        """Return ``(matrix, fingerprint-or-None)`` for this job.

        An in-line matrix wins (its fingerprint is unknown and will be
        hashed by the cache); otherwise the shared segment is attached —
        zero-copy, with the publish-time fingerprint riding along.
        """
        if self.matrix is not None:
            return self.matrix, None
        if self.shared is not None:
            return attach_matrix(self.shared), self.shared.fingerprint
        raise ValueError(
            f"job {self.name!r} carries neither a matrix nor a shared handle")


@dataclass
class JobResult:
    """Outcome of one :class:`SolveJob`.

    ``error`` is ``None`` on success; on failure it holds the exception
    rendered as ``"TypeName: message"`` and the numeric fields are zeroed.
    ``worker`` is filled by process-mode execution with the executing
    worker's pid and a cache-stats snapshot (the raw material of
    :attr:`RunReport.summary`).
    """

    name: str
    x: np.ndarray | None
    scaled_residual: float
    converged: bool
    iterations: int
    block_encoding_calls: int
    wall_time: float
    error: str | None = None
    metadata: dict = field(default_factory=dict)
    worker: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the job completed without raising."""
        return self.error is None


class RunReport(list):
    """Results of one :meth:`ScenarioRunner.run` call.

    A plain ``list`` of :class:`JobResult` (so existing indexing/iteration
    code keeps working) with a :attr:`summary` dict aggregating the run:
    throughput (``jobs_per_sec``), per-worker compiled-solver cache stats,
    process-wide plan-cache stats, persistent-store hits and shared-memory
    segment accounting.
    """

    #: aggregate telemetry of the run; populated by :meth:`ScenarioRunner.run`.
    summary: dict

    def __init__(self, results=(), summary: dict | None = None) -> None:
        super().__init__(results)
        self.summary = summary if summary is not None else {}


#: per-process default cache used by :func:`execute_job` when the caller does
#: not supply one; worker processes each materialise their own copy on first
#: use, so repeated matrices compile at most once per worker.
_WORKER_CACHE: CompiledSolverCache | None = None

#: persistent-store directory the pool initializer propagates to workers
#: (``None`` = no store); consumed when the per-process cache is built.
_WORKER_STORE_PATH: str | None = None


def _default_cache() -> CompiledSolverCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        store = None
        if _WORKER_STORE_PATH is not None:
            from .store import SynthesisStore

            store = SynthesisStore(_WORKER_STORE_PATH)
        _WORKER_CACHE = CompiledSolverCache(store=store)
    return _WORKER_CACHE


#: environment variables that cap the BLAS/OpenMP pools of a worker process.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: keeps the optional threadpoolctl limiter alive for the worker's lifetime
#: (dropping it would restore the pre-cap pool sizes).
_THREADPOOL_LIMITER = None


def _limit_worker_threads(threads: int | None) -> None:
    """Pin this process's BLAS/OpenMP thread pools to ``threads``.

    Sets the standard environment knobs (authoritative for libraries loaded
    after this call — the spawn start method, lazily loaded backends) and,
    when ``threadpoolctl`` is importable, additionally caps the pools of
    already-loaded libraries, which is what matters under the fork start
    method where numpy's BLAS is live before the worker exists.
    """
    if threads is None:
        return
    for var in _THREAD_ENV_VARS:
        os.environ[var] = str(threads)
    try:  # runtime cap for already-initialised pools (optional dependency)
        import threadpoolctl

        global _THREADPOOL_LIMITER
        _THREADPOOL_LIMITER = threadpoolctl.threadpool_limits(limits=threads)
    except ImportError:
        pass


@contextlib.contextmanager
def _pinned_thread_env(threads: int | None):
    """Temporarily export the thread-cap variables in the *parent*.

    Worker processes inherit the parent environment at creation, so wrapping
    pool start-up in this context pins BLAS pools even for start methods
    that re-import numpy from scratch (spawn); the in-worker initializer
    covers the rest.
    """
    if threads is None:
        yield
        return
    saved = {var: os.environ.get(var) for var in _THREAD_ENV_VARS}
    os.environ.update({var: str(threads) for var in _THREAD_ENV_VARS})
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def _init_worker(threads_per_worker: int | None, store_path: str | None) -> None:
    """Process-pool initializer: thread caps + store wiring + fresh cache.

    The fork start method makes children inherit the parent's module globals,
    including a possibly populated ``_WORKER_CACHE``; resetting it here keeps
    worker telemetry honest (each worker reports only its own compiles) and
    attaches the persistent store to the cache the worker will actually use.
    """
    global _WORKER_CACHE, _WORKER_STORE_PATH
    _WORKER_CACHE = None
    _WORKER_STORE_PATH = store_path
    _limit_worker_threads(threads_per_worker)


def execute_job(job: SolveJob, cache: CompiledSolverCache | None = None) -> JobResult:
    """Run one job to completion (module-level so process pools can pickle it).

    The compiled solver is fetched through ``cache`` (default: the
    per-process cache), so a batch of jobs against one matrix pays for a
    single synthesis; jobs carrying a shared-memory handle resolve the
    matrix zero-copy and hand the cache the precomputed fingerprint.
    Exceptions are captured into ``JobResult.error``.
    """
    start = time.perf_counter()
    try:
        matrix, fingerprint = job.resolve_matrix()
        solver = (cache if cache is not None else _default_cache()).solver(
            matrix, epsilon_l=job.epsilon_l, backend=job.backend,
            kappa=job.kappa, fingerprint=fingerprint, **job.backend_options)
        if job.target_accuracy is not None:
            result = MixedPrecisionRefinement(
                solver, target_accuracy=job.target_accuracy).solve(job.rhs)
            return JobResult(
                name=job.name, x=result.x,
                scaled_residual=float(result.history[-1].scaled_residual),
                converged=bool(result.converged),
                iterations=int(result.iterations),
                block_encoding_calls=int(result.total_block_encoding_calls),
                wall_time=time.perf_counter() - start,
                metadata=dict(job.metadata))
        record = solver.solve(job.rhs)
        return JobResult(
            name=job.name, x=record.x,
            scaled_residual=float(record.scaled_residual),
            converged=bool(record.scaled_residual <= job.epsilon_l),
            iterations=0,
            block_encoding_calls=int(record.block_encoding_calls),
            wall_time=time.perf_counter() - start,
            metadata=dict(job.metadata))
    except Exception as exc:  # noqa: BLE001 - per-job fault isolation
        return JobResult(
            name=job.name, x=None, scaled_residual=float("nan"),
            converged=False, iterations=0, block_encoding_calls=0,
            wall_time=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            metadata=dict(job.metadata))


def _execute_job_traced(job: SolveJob) -> JobResult:
    """Process-worker entry point: run the job, attach worker telemetry.

    The snapshot rides home on the result because the worker's cache object
    itself never crosses the pickle boundary — aggregating the *last*
    snapshot per pid reconstructs the end-of-run state of every worker.
    """
    cache = _default_cache()
    result = execute_job(job, cache)
    result.worker = {"pid": os.getpid(), "cache": cache.stats()}
    return result


class ScenarioRunner:
    """Execute a list of :class:`SolveJob` across a worker pool.

    Parameters
    ----------
    mode:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docstring).
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8 (dense
        simulation saturates memory bandwidth before it saturates many cores).
    cache:
        Compiled-solver cache shared by the serial and thread modes (process
        workers keep per-process caches).  A fresh cache is created when
        omitted — wired to ``store`` if one is given.
    store:
        Optional :class:`~repro.engine.store.SynthesisStore`; process workers
        attach it to their per-process caches (spill + restore compiled
        payloads across processes and runs), and it backs the default cache
        of the serial/thread modes.
    use_shared_memory:
        Process mode only: hand matrices to workers through shared-memory
        segments (one copy per distinct matrix) instead of pickling them per
        job.  Default on; turn off to fall back to the pure-pickle path
        (platforms without ``/dev/shm``-style shared memory).
    threads_per_worker:
        BLAS/OpenMP thread cap applied to each worker process (default ``1`` —
        ``max_workers`` ≈ core count with multi-threaded BLAS oversubscribes
        badly).  ``None`` leaves the library defaults untouched.

    Use the runner as a context manager in process mode to keep published
    shared-memory segments alive across several :meth:`run` calls; otherwise
    each run publishes and unlinks its own segments.
    """

    _MODES = ("serial", "thread", "process")

    def __init__(self, *, mode: str = "thread", max_workers: int | None = None,
                 cache: CompiledSolverCache | None = None,
                 store=None, use_shared_memory: bool = True,
                 threads_per_worker: int | None = 1) -> None:
        if mode not in self._MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {self._MODES}")
        self.mode = mode
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if threads_per_worker is not None and threads_per_worker < 1:
            raise ValueError("threads_per_worker must be >= 1 (or None)")
        self.max_workers = int(max_workers)
        self.store = store
        self.use_shared_memory = bool(use_shared_memory)
        self.threads_per_worker = (None if threads_per_worker is None
                                   else int(threads_per_worker))
        self.cache = cache if cache is not None else CompiledSolverCache(store=store)
        self._registry: SharedMatrixRegistry | None = None

    # ------------------------------------------------------------------ #
    # shared-memory segment lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ScenarioRunner":
        if (self.mode == "process" and self.use_shared_memory
                and self._registry is None):
            self._registry = SharedMatrixRegistry()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Unlink any shared-memory segments this runner still owns."""
        if self._registry is not None:
            self._registry.close()
            self._registry = None

    # ------------------------------------------------------------------ #
    def run(self, jobs) -> RunReport:
        """Execute every job and return results in submission order.

        Individual failures are recorded in ``JobResult.error``; the run
        itself only raises for infrastructure problems (e.g. a worker process
        dying).  The returned :class:`RunReport` behaves as the familiar
        ``list[JobResult]`` and carries the aggregate telemetry in
        ``report.summary``.
        """
        jobs = list(jobs)
        start = time.perf_counter()
        registry_stats = None
        if not jobs:
            results = []
        elif self.mode == "serial":
            results = [execute_job(job, self.cache) for job in jobs]
        elif self.mode == "thread":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [pool.submit(execute_job, job, self.cache)
                           for job in jobs]
                results = [future.result() for future in futures]
        else:
            results, registry_stats = self._run_process(jobs)
        wall_time = time.perf_counter() - start
        return RunReport(results,
                         summary=self._summarise(results, wall_time,
                                                 registry_stats))

    def _run_process(self, jobs) -> tuple[list[JobResult], dict | None]:
        """Process-pool execution with the zero-copy matrix hand-off."""
        registry = self._registry
        ephemeral = None
        if self.use_shared_memory and registry is None:
            registry = ephemeral = SharedMatrixRegistry()
        try:
            if registry is not None:
                # one shared segment per distinct matrix; jobs now cross the
                # pickle boundary as fingerprints instead of N x N payloads.
                # The identity memo keeps the publish itself cheap: scenario
                # builders reuse one array object across jobs, which must not
                # cost one content hash per job (equal-bytes *copies* still
                # deduplicate inside the registry, at hashing price).
                handles: dict[int, SharedMatrixHandle] = {}

                def to_shared(job: SolveJob) -> SolveJob:
                    if job.matrix is None:
                        return job
                    handle = handles.get(id(job.matrix))
                    if handle is None:
                        handle = registry.publish(job.matrix)
                        handles[id(job.matrix)] = handle
                    return replace(job, matrix=None, shared=handle)

                jobs = [to_shared(job) for job in jobs]
            store_path = (None if self.store is None
                          else str(getattr(self.store, "path", self.store)))
            with _pinned_thread_env(self.threads_per_worker):
                with ProcessPoolExecutor(
                        max_workers=self.max_workers,
                        mp_context=_fork_context(),
                        initializer=_init_worker,
                        initargs=(self.threads_per_worker, store_path)) as pool:
                    results = list(pool.map(_execute_job_traced, jobs))
            registry_stats = registry.stats() if registry is not None else None
        finally:
            if ephemeral is not None:
                ephemeral.close()
        return results, registry_stats

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def _summarise(self, results, wall_time: float,
                   registry_stats: dict | None) -> dict:
        ok = sum(1 for result in results if result.ok)
        summary = {
            "mode": self.mode,
            "max_workers": self.max_workers,
            "threads_per_worker": self.threads_per_worker,
            "jobs": len(results),
            "ok": ok,
            "failed": len(results) - ok,
            "wall_time_s": wall_time,
            "jobs_per_sec": (len(results) / wall_time) if wall_time > 0 else 0.0,
            "plan_cache": plan_cache().stats(),
            "shared_memory": registry_stats,
        }
        if self.mode == "process":
            summary.update(self._aggregate_worker_stats(results))
        else:
            summary["cache"] = self.cache.stats()
            summary["workers"] = 1 if self.mode == "serial" else self.max_workers
        return summary

    @staticmethod
    def _aggregate_worker_stats(results) -> dict:
        """Fold per-job worker snapshots into end-of-run per-worker stats.

        Cache counters are monotonic within a worker and ``pool.map``
        preserves submission order per worker, so the *last* snapshot seen
        for a pid is that worker's final state; summing those yields the
        run-wide totals that previously died with the worker processes.
        """
        last_by_pid: dict[int, dict] = {}
        for result in results:
            if result.worker:
                last_by_pid[result.worker["pid"]] = result.worker["cache"]
        aggregated = {"hits": 0, "misses": 0, "compiles": 0, "store_hits": 0}
        store_totals: dict | None = None
        for snapshot in last_by_pid.values():
            for counter in aggregated:
                aggregated[counter] += snapshot.get(counter, 0)
            store_stats = snapshot.get("store")
            if store_stats is not None:
                if store_totals is None:
                    store_totals = {"hits": 0, "misses": 0, "stores": 0,
                                    "corrupt": 0, "errors": 0}
                for counter in store_totals:
                    store_totals[counter] += store_stats.get(counter, 0)
        if store_totals is not None:
            aggregated["store"] = store_totals
        return {
            "cache": aggregated,
            "workers": len(last_by_pid),
            "worker_cache_stats": last_by_pid,
        }

    def run_scenario(self, name: str, **params) -> RunReport:
        """Build a registered scenario (see :mod:`repro.engine.registry`) and run it."""
        from .registry import build_scenario

        return self.run(build_scenario(name, **params).jobs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ScenarioRunner(mode={self.mode!r}, "
                f"max_workers={self.max_workers}, "
                f"use_shared_memory={self.use_shared_memory})")


def _fork_context():
    """Fork start method when the platform offers it (workers inherit
    ``sys.path`` and the imported package), ``None`` → platform default."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
