"""Parallel scenario runner: fan independent solve jobs out across workers.

A production deployment of the paper's pipeline answers streams of
independent requests — different matrices, different right-hand sides,
different accuracy targets.  Each request is CPU-bound dense simulation with
no shared state beyond the compiled synthesis, which makes the workload
embarrassingly parallel.  :class:`ScenarioRunner` models it as a queue of
:class:`SolveJob` descriptions executed by a ``concurrent.futures`` pool:

* ``mode="serial"`` — run in the calling thread (the reference semantics the
  tests compare the parallel modes against);
* ``mode="thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`;
  numpy releases the GIL inside its kernels, so threads already overlap the
  heavy contractions and share one :class:`~repro.engine.cache.CompiledSolverCache`;
* ``mode="process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  (fork start method when available) for full CPU parallelism; each worker
  process keeps its own compiled-solver cache, so jobs hitting the same
  matrix still compile at most once *per worker*.

Jobs are plain data (numpy arrays + strings), hence picklable; results come
back as :class:`JobResult` records in submission order, with per-job failures
captured in ``error`` instead of aborting the whole run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.refinement import MixedPrecisionRefinement
from .cache import CompiledSolverCache

__all__ = ["SolveJob", "JobResult", "execute_job", "ScenarioRunner"]


@dataclass
class SolveJob:
    """One independent linear-system request.

    Attributes
    ----------
    name:
        Identifier echoed into the matching :class:`JobResult`.
    matrix / rhs:
        The system ``A x = b``.
    epsilon_l:
        Inner (single-solve) accuracy of the QSVT solver.
    target_accuracy:
        When set, the job runs full mixed-precision refinement (Algorithm 2)
        down to this scaled residual; when ``None`` the job is a single QSVT
        solve at ``epsilon_l``.
    backend:
        Backend *name* (``"auto"``, ``"circuit"``, ``"ideal"``, ``"exact"``) —
        names keep the job picklable and cache-friendly.
    kappa:
        Optional pinned condition number.
    backend_options:
        Extra keyword arguments for the backend factory.
    metadata:
        Free-form labels (scenario parameters etc.), copied to the result.
    """

    name: str
    matrix: np.ndarray
    rhs: np.ndarray
    epsilon_l: float = 1e-2
    target_accuracy: float | None = None
    backend: str = "auto"
    kappa: float | None = None
    backend_options: dict = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)


@dataclass
class JobResult:
    """Outcome of one :class:`SolveJob`.

    ``error`` is ``None`` on success; on failure it holds the exception
    rendered as ``"TypeName: message"`` and the numeric fields are zeroed.
    """

    name: str
    x: np.ndarray | None
    scaled_residual: float
    converged: bool
    iterations: int
    block_encoding_calls: int
    wall_time: float
    error: str | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the job completed without raising."""
        return self.error is None


#: per-process default cache used by :func:`execute_job` when the caller does
#: not supply one; worker processes each materialise their own copy on first
#: use, so repeated matrices compile at most once per worker.
_WORKER_CACHE: CompiledSolverCache | None = None


def _default_cache() -> CompiledSolverCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompiledSolverCache()
    return _WORKER_CACHE


def execute_job(job: SolveJob, cache: CompiledSolverCache | None = None) -> JobResult:
    """Run one job to completion (module-level so process pools can pickle it).

    The compiled solver is fetched through ``cache`` (default: the
    per-process cache), so a batch of jobs against one matrix pays for a
    single synthesis.  Exceptions are captured into ``JobResult.error``.
    """
    start = time.perf_counter()
    try:
        solver = (cache if cache is not None else _default_cache()).solver(
            job.matrix, epsilon_l=job.epsilon_l, backend=job.backend,
            kappa=job.kappa, **job.backend_options)
        if job.target_accuracy is not None:
            result = MixedPrecisionRefinement(
                solver, target_accuracy=job.target_accuracy).solve(job.rhs)
            return JobResult(
                name=job.name, x=result.x,
                scaled_residual=float(result.history[-1].scaled_residual),
                converged=bool(result.converged),
                iterations=int(result.iterations),
                block_encoding_calls=int(result.total_block_encoding_calls),
                wall_time=time.perf_counter() - start,
                metadata=dict(job.metadata))
        record = solver.solve(job.rhs)
        return JobResult(
            name=job.name, x=record.x,
            scaled_residual=float(record.scaled_residual),
            converged=bool(record.scaled_residual <= job.epsilon_l),
            iterations=0,
            block_encoding_calls=int(record.block_encoding_calls),
            wall_time=time.perf_counter() - start,
            metadata=dict(job.metadata))
    except Exception as exc:  # noqa: BLE001 - per-job fault isolation
        return JobResult(
            name=job.name, x=None, scaled_residual=float("nan"),
            converged=False, iterations=0, block_encoding_calls=0,
            wall_time=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            metadata=dict(job.metadata))


class ScenarioRunner:
    """Execute a list of :class:`SolveJob` across a worker pool.

    Parameters
    ----------
    mode:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docstring).
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at 8 (dense
        simulation saturates memory bandwidth before it saturates many cores).
    cache:
        Compiled-solver cache shared by the serial and thread modes (process
        workers keep per-process caches).  A fresh cache is created when
        omitted.
    """

    _MODES = ("serial", "thread", "process")

    def __init__(self, *, mode: str = "thread", max_workers: int | None = None,
                 cache: CompiledSolverCache | None = None) -> None:
        if mode not in self._MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {self._MODES}")
        self.mode = mode
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self.cache = cache if cache is not None else CompiledSolverCache()

    # ------------------------------------------------------------------ #
    def run(self, jobs) -> list[JobResult]:
        """Execute every job and return results in submission order.

        Individual failures are recorded in ``JobResult.error``; the run
        itself only raises for infrastructure problems (e.g. a worker process
        dying).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if self.mode == "serial":
            return [execute_job(job, self.cache) for job in jobs]
        if self.mode == "thread":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [pool.submit(execute_job, job, self.cache) for job in jobs]
                return [future.result() for future in futures]
        # process mode: jobs must cross a pickle boundary, so the shared cache
        # stays behind and each worker uses its per-process default cache.
        with ProcessPoolExecutor(max_workers=self.max_workers,
                                 mp_context=_fork_context()) as pool:
            return list(pool.map(execute_job, jobs))

    def run_scenario(self, name: str, **params) -> list[JobResult]:
        """Build a registered scenario (see :mod:`repro.engine.registry`) and run it."""
        from .registry import build_scenario

        return self.run(build_scenario(name, **params).jobs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScenarioRunner(mode={self.mode!r}, max_workers={self.max_workers})"


def _fork_context():
    """Fork start method when the platform offers it (workers inherit
    ``sys.path`` and the imported package), ``None`` → platform default."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
