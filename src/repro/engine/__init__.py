"""High-throughput solve engine: batching, caching, parallel scenario running.

The rest of :mod:`repro` reproduces the paper's algorithms for *one* solve at
a time; this sub-package is the service layer that turns them into a
high-throughput system, exploiting the compile-once / solve-many structure of
Algorithm 2 along three independent axes:

* **batching** — :class:`~repro.engine.batched.BatchedStatevector` simulates
  ``B`` states as one ``(B, 2**n)`` amplitude stack, so a multi-right-hand-side
  QSVT solve (:meth:`repro.core.qsvt_solver.QSVTLinearSolver.solve_batch`)
  costs one circuit sweep instead of ``B``;
* **caching** — :class:`~repro.engine.cache.CompiledSolverCache` keys compiled
  solvers (block-encoding + polynomial + QSP phases + fused execution plans)
  on the exact matrix bytes, so repeated requests against the same system
  skip synthesis *and* plan fusion entirely, with byte-accounted LRU
  eviction (``max_bytes``);
* **parallelism** — :class:`~repro.engine.runner.ScenarioRunner` fans
  independent :class:`~repro.engine.runner.SolveJob` requests out across a
  thread or process pool, with per-worker caches and per-job fault isolation.

On top of the three axes sits the **zero-copy serving layer**, which keeps
the compile-once / solve-many advantage intact across process and run
boundaries:

* **shared-memory hand-off** — :mod:`repro.engine.sharedmem` publishes each
  distinct matrix into a shared segment once; process-mode jobs carry a
  fingerprint handle instead of the ``N x N`` payload and workers attach
  zero-copy read-only views;
* **persistent synthesis store** — :class:`~repro.engine.store.SynthesisStore`
  spills compiled payloads (phases, polynomial, fused plan gate bytes) to
  disk keyed by matrix fingerprint, so fresh processes and repeated runs
  restore in milliseconds instead of re-synthesising;
* **coalescing async front end** — :class:`~repro.engine.aio.AsyncSolveEngine`
  groups concurrent same-fingerprint ``await engine.solve(A, b)`` requests
  into one fused ``solve_batch`` sweep.

:mod:`repro.engine.registry` binds everything together behind a discoverable
scenario API (``build_scenario("kappa-sweep", ...)``).  See
``benchmarks/bench_engine_throughput.py`` for the measured batched-vs-looped
speedup and cache behaviour, and ``benchmarks/bench_serving.py`` for the
serving-layer numbers (shared memory vs pickling, cold vs warm store,
coalesced vs sequential async).
"""

from .aio import AsyncSolveEngine
from .autotune import Autotuner, FamilyProfile, ProfileStore, TunedConfig
from .batched import (
    BatchedStatevector,
    apply_circuit_batch,
    apply_gate_batch,
    zero_batch,
)
from .cache import CompiledSolverCache
from .registry import (
    Scenario,
    build_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from .runner import JobResult, RunReport, ScenarioRunner, SolveJob, execute_job
from .sharedmem import (
    SharedMatrixHandle,
    SharedMatrixRegistry,
    attach_matrix,
    detach_all,
)
from .store import SynthesisStore, TieredSynthesisStore, default_store_path

__all__ = [
    "AsyncSolveEngine",
    "Autotuner",
    "TunedConfig",
    "FamilyProfile",
    "ProfileStore",
    "BatchedStatevector",
    "zero_batch",
    "apply_gate_batch",
    "apply_circuit_batch",
    "CompiledSolverCache",
    "SynthesisStore",
    "TieredSynthesisStore",
    "default_store_path",
    "SharedMatrixHandle",
    "SharedMatrixRegistry",
    "attach_matrix",
    "detach_all",
    "SolveJob",
    "JobResult",
    "RunReport",
    "execute_job",
    "ScenarioRunner",
    "Scenario",
    "register_scenario",
    "unregister_scenario",
    "build_scenario",
    "list_scenarios",
    "scenario_names",
]

# Importing the problem suite last registers its families (2-D/3-D Poisson,
# heat-equation chains, convection-diffusion, Helmholtz, graph Laplacians,
# prescribed-spectrum systems) in the scenario registry above, so
# ``list_scenarios()`` discovers them without an extra import.
from .. import problems as _problems  # noqa: E402,F401  (registration side effect)
