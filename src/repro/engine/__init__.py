"""High-throughput solve engine: batching, caching, parallel scenario running.

The rest of :mod:`repro` reproduces the paper's algorithms for *one* solve at
a time; this sub-package is the service layer that turns them into a
high-throughput system, exploiting the compile-once / solve-many structure of
Algorithm 2 along three independent axes:

* **batching** — :class:`~repro.engine.batched.BatchedStatevector` simulates
  ``B`` states as one ``(B, 2**n)`` amplitude stack, so a multi-right-hand-side
  QSVT solve (:meth:`repro.core.qsvt_solver.QSVTLinearSolver.solve_batch`)
  costs one circuit sweep instead of ``B``;
* **caching** — :class:`~repro.engine.cache.CompiledSolverCache` keys compiled
  solvers (block-encoding + polynomial + QSP phases + fused execution plans)
  on the exact matrix bytes, so repeated requests against the same system
  skip synthesis *and* plan fusion entirely, with byte-accounted LRU
  eviction (``max_bytes``);
* **parallelism** — :class:`~repro.engine.runner.ScenarioRunner` fans
  independent :class:`~repro.engine.runner.SolveJob` requests out across a
  thread or process pool, with per-worker caches and per-job fault isolation.

:mod:`repro.engine.registry` binds the three together behind a discoverable
scenario API (``build_scenario("kappa-sweep", ...)``).  See
``benchmarks/bench_engine_throughput.py`` for the measured batched-vs-looped
speedup and cache behaviour.
"""

from .batched import (
    BatchedStatevector,
    apply_circuit_batch,
    apply_gate_batch,
    zero_batch,
)
from .cache import CompiledSolverCache
from .registry import (
    Scenario,
    build_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from .runner import JobResult, ScenarioRunner, SolveJob, execute_job

__all__ = [
    "BatchedStatevector",
    "zero_batch",
    "apply_gate_batch",
    "apply_circuit_batch",
    "CompiledSolverCache",
    "SolveJob",
    "JobResult",
    "execute_job",
    "ScenarioRunner",
    "Scenario",
    "register_scenario",
    "build_scenario",
    "list_scenarios",
    "scenario_names",
]
