"""Batched dense state-vector simulation.

:class:`BatchedStatevector` stores a stack of ``B`` amplitude vectors as one
``(B, 2**n)`` array and applies a gate to *all* of them with a single
``numpy.tensordot`` contraction: the state is viewed as a tensor of shape
``(B,) + (2,) * n`` (batch axis first, then one axis per qubit, qubit 0 most
significant — the same big-endian convention as
:mod:`repro.quantum.statevector`) and the gate matrix is contracted over the
target axes.  Relative to a Python loop over ``B`` independent
:class:`~repro.quantum.Statevector` simulations this amortises every per-gate
cost — circuit iteration, gate-tensor reshaping, numpy dispatch — over the
whole batch, which is what makes the multi-right-hand-side QSVT solve of
:func:`repro.qsp.qsvt_circuit.apply_qsvt_to_vectors` cost one circuit sweep
instead of ``B``.

The raw array kernels live next to the single-state ones in
:func:`repro.quantum.statevector.apply_gate_batched` /
:func:`repro.quantum.measurement.postselect_batched`, so the lower layers
(``qsp``, ``core``) can batch without importing the engine; this module wraps
them in the engine-level batch object.  The design mirrors the vectorised
engines of the related simulator repos (qibo's backend dispatch, quantumsim's
tensor engine): the batch is an *engine-level* object — circuits and gates
stay simulator-agnostic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DimensionError
from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import Gate
from ..quantum.measurement import postselect_batched
from ..quantum.statevector import (
    Statevector,
    apply_circuit_batched,
    apply_gate_batched,
)
from ..utils import check_power_of_two

__all__ = [
    "BatchedStatevector",
    "zero_batch",
    "apply_gate_batch",
    "apply_circuit_batch",
]


class BatchedStatevector:
    """A stack of ``B`` states of an ``n``-qubit register.

    Parameters
    ----------
    data:
        Complex amplitudes of shape ``(B, 2**n)``.  As with
        :class:`~repro.quantum.Statevector` they are *not* renormalised:
        sub-normalised rows legitimately appear after post-selection.
    """

    def __init__(self, data) -> None:
        arr = np.asarray(data, dtype=complex)
        if arr.ndim != 2:
            raise DimensionError(
                f"batched statevector data must be 2-D (B, 2**n), got shape {arr.shape}")
        if arr.shape[0] < 1:
            raise DimensionError("a batch needs at least one state")
        check_power_of_two(arr.shape[1], name="statevector length")
        self._data = arr
        self.num_qubits = int(arr.shape[1]).bit_length() - 1

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_statevectors(cls, states: Sequence[Statevector]) -> "BatchedStatevector":
        """Stack individual :class:`~repro.quantum.Statevector` objects."""
        if not states:
            raise DimensionError("cannot build a batch from zero states")
        return cls(np.stack([state.data for state in states]))

    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """Amplitude stack of shape ``(batch_size, 2**num_qubits)``."""
        return self._data

    @property
    def batch_size(self) -> int:
        """Number of states ``B`` in the stack."""
        return self._data.shape[0]

    @property
    def dimension(self) -> int:
        """Hilbert-space dimension of each state."""
        return self._data.shape[1]

    def norms(self) -> np.ndarray:
        """Euclidean norm of every state (length ``B``)."""
        return np.linalg.norm(self._data, axis=1)

    def normalized(self) -> "BatchedStatevector":
        """Unit-norm copy of every state (raises if any row is zero)."""
        norms = self.norms()
        if np.any(norms == 0.0):
            raise ZeroDivisionError("cannot normalise a zero state in the batch")
        return BatchedStatevector(self._data / norms[:, None])

    def probabilities(self) -> np.ndarray:
        """Per-state measurement probabilities ``|amplitude|**2`` (``(B, 2**n)``)."""
        return np.abs(self._data) ** 2

    def copy(self) -> "BatchedStatevector":
        """Deep copy."""
        return BatchedStatevector(self._data.copy())

    def __len__(self) -> int:
        return self.batch_size

    def __getitem__(self, index: int) -> Statevector:
        """Extract one state of the batch as a :class:`~repro.quantum.Statevector`."""
        return Statevector(self._data[index].copy())

    def to_statevectors(self) -> list[Statevector]:
        """Unstack into individual :class:`~repro.quantum.Statevector` objects."""
        return [self[i] for i in range(self.batch_size)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BatchedStatevector(batch_size={self.batch_size}, "
                f"num_qubits={self.num_qubits})")

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def apply_gate(self, gate: Gate) -> "BatchedStatevector":
        """Apply one gate to every state and return the new batch."""
        return BatchedStatevector(apply_gate_batched(self._data, gate))

    def apply_circuit(self, circuit: QuantumCircuit, *,
                      fusion: str | None = None) -> "BatchedStatevector":
        """Run a circuit on every state of the batch.

        Execution goes through the circuit's compiled
        :class:`~repro.quantum.plan.ExecutionPlan` (``fusion="none"`` replays
        the per-gate reference loop), exactly like the single-state path.
        """
        if self.num_qubits != circuit.num_qubits:
            raise DimensionError(
                f"batch has {self.num_qubits} qubits but circuit expects "
                f"{circuit.num_qubits}")
        return BatchedStatevector(apply_circuit_batched(circuit, self._data,
                                                        fusion=fusion))

    def apply_plan(self, plan) -> "BatchedStatevector":
        """Replay an already-compiled :class:`~repro.quantum.plan.ExecutionPlan`."""
        return BatchedStatevector(plan.apply_batched(self._data))

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    def postselect(self, qubits: Sequence[int], outcome: int | Sequence[int], *,
                   renormalize: bool = True) -> tuple["BatchedStatevector", np.ndarray]:
        """Project ``qubits`` of every state onto ``outcome``.

        Batched analogue of :func:`repro.quantum.measurement.postselect`: the
        returned batch lives on the *remaining* qubits and the second element
        is the per-state outcome probability (length ``B``).  See
        :func:`repro.quantum.measurement.postselect_batched` for the kernel
        and parameter semantics.
        """
        reduced, probabilities = postselect_batched(self._data, qubits, outcome,
                                                    renormalize=renormalize)
        return BatchedStatevector(reduced), probabilities


def zero_batch(batch_size: int, num_qubits: int) -> BatchedStatevector:
    """A batch of ``batch_size`` copies of ``|0...0>`` on ``num_qubits`` qubits."""
    if batch_size < 1:
        raise DimensionError("batch_size must be >= 1")
    if num_qubits < 1:
        raise DimensionError("num_qubits must be >= 1")
    data = np.zeros((batch_size, 2**num_qubits), dtype=complex)
    data[:, 0] = 1.0
    return BatchedStatevector(data)


def apply_gate_batch(batch: BatchedStatevector, gate: Gate) -> BatchedStatevector:
    """Apply one gate to every state of the batch (input is not modified)."""
    return batch.apply_gate(gate)


def apply_circuit_batch(circuit: QuantumCircuit,
                        batch: BatchedStatevector | None = None, *,
                        batch_size: int | None = None) -> BatchedStatevector:
    """Run ``circuit`` on every state of ``batch`` and return the result.

    When ``batch`` is omitted, a batch of ``batch_size`` zero states is used
    (``batch_size`` is then required).
    """
    if batch is None:
        if batch_size is None:
            raise DimensionError("either a batch or a batch_size is required")
        batch = zero_batch(batch_size, circuit.num_qubits)
    return batch.apply_circuit(circuit)
