"""Admission control: token-bucket tenant quotas and queue-depth shedding.

A serving tier that accepts every request collapses under overload: queues
grow without bound, every admitted request sees the full queueing delay, and
the system does strictly worse than one that had said "no" early.  The
controls here implement the standard alternative — **bounded queues with
explicit, retriable rejection**:

* :class:`TokenBucket` — per-tenant rate limiting.  Each tenant's bucket
  refills at ``rate`` tokens/second up to ``burst``; a request costs one
  token, and an empty bucket rejects with
  :class:`~repro.exceptions.QuotaExceededError` carrying the exact
  ``retry_after`` until a token exists.  Buckets are lazy: a tenant that
  never sends costs nothing.
* :class:`AdmissionController` — the per-request gate the front end calls
  *before* dispatching to a worker.  It checks the tenant bucket, then the
  routed worker's in-flight depth against ``queue_limit``: a full queue
  rejects with :class:`~repro.exceptions.QueueFullError` instead of letting
  latency grow unboundedly.  Every decision is counted, so "how much did we
  shed and why" is a stats read, not a log dive.

Rejections deliberately raise (rather than return ``False``): the front end
maps them to explicit retriable errors on the API surface — HTTP 429 with
``Retry-After`` — and the caller can distinguish *rejected* (safe to retry)
from *failed* (a solve error) by type alone.
"""

from __future__ import annotations

import threading
import time

from ..exceptions import (
    QueueFullError,
    QuotaExceededError,
    WorkerUnavailableError,
)

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    ``clock`` is injectable (monotonic seconds) so tests can drive refills
    deterministically.  Thread-safe.

    Examples
    --------
    >>> bucket = TokenBucket(rate=2.0, burst=2.0)
    >>> bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()
    (True, True, False)
    """

    def __init__(self, rate: float, burst: float | None = None, *,
                 clock=time.monotonic) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be > 0 tokens/second")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        if self.burst <= 0.0:
            raise ValueError("burst must be > 0 tokens")
        self._clock = clock
        self._tokens = self.burst        # a fresh tenant starts with a full burst
        self._stamp = float(clock())
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill_locked(float(self._clock()))
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0.0 = right now)."""
        with self._lock:
            self._refill_locked(float(self._clock()))
            deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        """Currently available tokens (after refilling to now)."""
        with self._lock:
            self._refill_locked(float(self._clock()))
            return self._tokens

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TokenBucket(rate={self.rate}, burst={self.burst})"


class AdmissionController:
    """Per-request admission gate: tenant quota first, then queue depth.

    Parameters
    ----------
    queue_limit:
        Maximum in-flight requests per worker; at or above this watermark
        new requests for that worker are shed with
        :class:`~repro.exceptions.QueueFullError`.  ``None`` disables
        depth shedding.
    tenant_rate / tenant_burst:
        Per-tenant token-bucket parameters (tokens/second and bucket
        capacity).  ``tenant_rate=None`` disables quotas entirely; requests
        without a ``tenant`` label always bypass the quota check (quotas
        bound *identified* tenants, anonymous traffic is bounded by the
        queue watermark).
    clock:
        Injectable monotonic clock shared by every tenant bucket.

    The controller is pure policy — it never touches queues itself; the
    front end reports each worker's current depth at admission time.  This
    keeps it trivially testable and reusable (the HTTP front end and the
    in-process :class:`~repro.serving.frontend.ClusterEngine` share one).
    """

    def __init__(self, *, queue_limit: int | None = 64,
                 tenant_rate: float | None = None,
                 tenant_burst: float | None = None,
                 clock=time.monotonic, metrics=None) -> None:
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None)")
        self.queue_limit = queue_limit
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._admitted = 0
        self._shed_queue_full = 0
        self._shed_quota = 0
        self._shed_breaker_open = 0
        self._shed_draining = 0
        # the ad-hoc counters above stay authoritative for stats(); the
        # registry series mirrors them under an ``outcome`` label so the
        # Prometheus surface gets them for free.
        self._m_decisions = None if metrics is None else metrics.counter(
            "admission_decisions_total",
            "Admission gate decisions by outcome")

    def _count(self, outcome: str) -> None:
        if self._m_decisions is not None:
            self._m_decisions.inc(outcome=outcome)

    # ------------------------------------------------------------------ #
    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.tenant_rate, self.tenant_burst,
                                     clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, worker_id: str, depth: int, *,
              tenant: str | None = None, draining: bool = False) -> None:
        """Admit one request routed to ``worker_id`` at in-flight ``depth``.

        Raises :class:`~repro.exceptions.QuotaExceededError` or
        :class:`~repro.exceptions.QueueFullError` on rejection; returns
        silently on admission.  The quota is charged *before* the depth
        check — a tenant hammering a full queue still burns budget, so one
        noisy tenant cannot convert shed load into free retries forever.

        ``draining=True`` rejects unconditionally with a retriable
        :class:`~repro.exceptions.WorkerUnavailableError`: a draining
        worker takes no new primaries, and its depth never enters the
        watermark accounting (the ring already routes around it — this
        guard is defence in depth against racing drain transitions).
        """
        if draining:
            with self._lock:
                self._shed_draining += 1
            self._count("shed_draining")
            raise WorkerUnavailableError(
                f"worker {worker_id!r} is draining; retry for a replica")
        if self.tenant_rate is not None and tenant is not None:
            bucket = self._bucket(str(tenant))
            if not bucket.try_acquire():
                with self._lock:
                    self._shed_quota += 1
                self._count("shed_quota")
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded its quota "
                    f"({self.tenant_rate}/s)",
                    retry_after=bucket.retry_after())
        if self.queue_limit is not None and depth >= self.queue_limit:
            with self._lock:
                self._shed_queue_full += 1
            self._count("shed_queue_full")
            raise QueueFullError(
                f"worker {worker_id!r} queue is full "
                f"({depth}/{self.queue_limit} in flight); retry later",
                retry_after=None)
        with self._lock:
            self._admitted += 1
        self._count("admitted")

    def note_breaker_shed(self) -> None:
        """Count a front-door rejection made by an open circuit breaker.

        The breaker lives with the routing layer (it is per-worker state),
        but its rejections are admission decisions like any other shed —
        recording them here keeps "how much did we refuse and why" one
        stats read even when the refusing control is the resilience layer.
        """
        with self._lock:
            self._shed_breaker_open += 1
        self._count("shed_breaker_open")

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Decision counters (admitted / shed by reason / live buckets)."""
        with self._lock:
            total_shed = (self._shed_queue_full + self._shed_quota
                          + self._shed_breaker_open + self._shed_draining)
            return {
                "admitted": self._admitted,
                "shed_queue_full": self._shed_queue_full,
                "shed_quota": self._shed_quota,
                "shed_breaker_open": self._shed_breaker_open,
                "shed_draining": self._shed_draining,
                "shed_total": total_shed,
                "queue_limit": self.queue_limit,
                "tenant_rate": self.tenant_rate,
                "tenants": len(self._buckets),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (f"AdmissionController(admitted={stats['admitted']}, "
                f"shed={stats['shed_total']}, "
                f"queue_limit={self.queue_limit})")
