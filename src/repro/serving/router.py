"""Consistent-hash routing of matrix fingerprints onto workers.

The serving tier's whole performance story is cache heat: a worker that
repeatedly sees the *same* matrices answers from its compiled-solver LRU,
its node-local :class:`~repro.engine.store.SynthesisStore` and its attached
shared-memory segments, paying synthesis exactly once per matrix.  Routing
therefore must be **deterministic** (the same fingerprint always lands on
the same live worker, across processes and restarts) and **stable under
churn** (when a worker dies, only the fingerprints it owned move — the
survivors' caches stay hot).  Plain modulo hashing fails the second
property catastrophically: removing one of ``W`` workers remaps ``(W-1)/W``
of all keys.

:class:`HashRing` is the classic consistent-hashing construction: each
worker is hashed onto a ring at ``vnodes`` pseudo-random points (virtual
nodes, smoothing the arc sizes), a fingerprint routes to the first worker
point clockwise from its own hash, and removing a worker hands exactly its
own arcs to the clockwise successors.  Hashes are SHA-256-derived — *never*
Python's randomised ``hash()`` — so placement agrees across interpreter
runs, which is what lets a restarted front end route onto a warm fleet.
"""

from __future__ import annotations

import bisect
import hashlib
import threading

from ..exceptions import WorkerUnavailableError

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: virtual nodes per worker; 64 keeps the max/min arc ratio within ~2x for
#: small fleets while add/remove stay sub-millisecond.
DEFAULT_VNODES = 64


def _hash(token: str) -> int:
    """Stable 64-bit ring position of a string token (SHA-256 prefix)."""
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


class HashRing:
    """Deterministic fingerprint → worker placement with minimal churn.

    Parameters
    ----------
    workers:
        Initial worker identifiers (any strings; the serving tier uses
        ``"worker-0"``, ``"worker-1"``, ...).
    vnodes:
        Virtual nodes per worker.  More vnodes = smoother load split and
        finer-grained movement on removal, at ``O(W * vnodes)`` ring size.

    Thread-safe; ``route`` is ``O(log(W * vnodes))``.

    Examples
    --------
    >>> ring = HashRing(["worker-0", "worker-1", "worker-2"])
    >>> owner = ring.route(fingerprint)
    >>> ring.remove_worker(owner)        # only owner's keys move
    True
    >>> ring.route(fingerprint) in ring.workers
    True
    """

    def __init__(self, workers=(), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        #: sorted ring positions and the worker owning each position
        #: (parallel lists so ``bisect`` works on the positions directly).
        self._points: list[int] = []
        self._owners: list[str] = []
        self._workers: set[str] = set()
        #: workers still on the ring but excluded from new placement —
        #: the zero-downtime drain state.  Keeping the arcs in place means
        #: ``set_draining(w, False)`` restores the exact pre-drain split.
        self._draining: set[str] = set()
        for worker in workers:
            self.add_worker(worker)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def add_worker(self, worker_id: str) -> None:
        """Insert a worker's virtual nodes; duplicate ids are an error."""
        worker_id = str(worker_id)
        with self._lock:
            if worker_id in self._workers:
                raise ValueError(f"worker {worker_id!r} is already on the ring")
            self._workers.add(worker_id)
            for index in range(self.vnodes):
                point = _hash(f"{worker_id}#{index}")
                at = bisect.bisect_left(self._points, point)
                self._points.insert(at, point)
                self._owners.insert(at, worker_id)

    def ensure_worker(self, worker_id: str) -> bool:
        """Add a worker unless it is already on the ring; ``True`` = added.

        The supervisor's re-add after a respawn: the worker keeps its id,
        so its virtual nodes land on exactly the points it owned before —
        the ring re-converges to the pre-death placement, and every
        fingerprint it used to serve comes home to the warm node-local
        store.  Idempotent so respawn races are harmless.
        """
        try:
            self.add_worker(worker_id)
        except ValueError:
            return False
        return True

    def remove_worker(self, worker_id: str) -> bool:
        """Drop a worker's arcs (they fall to the clockwise successors).

        Returns whether the worker was on the ring — removal of an unknown
        id is a no-op so failure-detection paths can be unconditional.
        """
        worker_id = str(worker_id)
        with self._lock:
            if worker_id not in self._workers:
                return False
            self._workers.discard(worker_id)
            self._draining.discard(worker_id)
            keep = [(point, owner) for point, owner
                    in zip(self._points, self._owners) if owner != worker_id]
            self._points = [point for point, _ in keep]
            self._owners = [owner for _, owner in keep]
            return True

    # ------------------------------------------------------------------ #
    # drain state
    # ------------------------------------------------------------------ #
    def set_draining(self, worker_id: str, draining: bool = True) -> bool:
        """Mark/unmark a worker as draining; returns whether it changed.

        A draining worker keeps its arcs (so un-draining restores the
        exact pre-drain placement and its caches stay addressable for
        replica walks by *other* arcs) but ``route``/``route_replicas``
        skip it for new placement — its traffic hands over to the next
        live replicas clockwise.  Unknown ids are a no-op.
        """
        worker_id = str(worker_id)
        with self._lock:
            if worker_id not in self._workers:
                return False
            before = worker_id in self._draining
            if draining:
                self._draining.add(worker_id)
            else:
                self._draining.discard(worker_id)
            return before != bool(draining)

    def is_draining(self, worker_id: str) -> bool:
        with self._lock:
            return str(worker_id) in self._draining

    @property
    def draining(self) -> list[str]:
        """Worker ids currently marked draining, sorted."""
        with self._lock:
            return sorted(self._draining)

    @property
    def workers(self) -> list[str]:
        """Live worker ids, sorted."""
        with self._lock:
            return sorted(self._workers)

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        with self._lock:
            return str(worker_id) in self._workers

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def route(self, fingerprint: str) -> str:
        """The worker owning ``fingerprint`` (first ring point clockwise).

        Draining workers are skipped; raises
        :class:`~repro.exceptions.WorkerUnavailableError` when the ring is
        empty or every worker is draining.
        """
        return self.route_replicas(fingerprint, 1)[0]

    def route_replicas(self, fingerprint: str, n: int) -> list[str]:
        """The first ``n`` **distinct** workers clockwise from the key.

        Element 0 is the primary (identical to :meth:`route`); the rest
        are the failover/hedge replicas in ring order.  Draining workers
        are excluded.  When fewer than ``n`` eligible workers exist the
        list is simply shorter — a one-worker ring yields ``[worker]``
        for any ``n >= 1``.  Raises ``ValueError`` for ``n < 1`` and
        :class:`~repro.exceptions.WorkerUnavailableError` when no
        eligible worker remains.
        """
        if n < 1:
            raise ValueError("replica count must be >= 1")
        with self._lock:
            eligible = self._workers - self._draining
            if not self._points or not eligible:
                raise WorkerUnavailableError(
                    "hash ring is empty: no live worker can own the request"
                    if not self._points else
                    "all workers are draining: no eligible replica")
            replicas: list[str] = []
            start = bisect.bisect_right(self._points, _hash(str(fingerprint)))
            total = len(self._owners)
            for step in range(total):
                owner = self._owners[(start + step) % total]
                if owner in self._draining or owner in replicas:
                    continue
                replicas.append(owner)
                if len(replicas) == n:
                    break
            return replicas

    def arc_shares(self) -> dict[str, float]:
        """Fraction of the key space each worker owns (sums to 1.0).

        The exact expected load split under uniformly distributed
        fingerprints — the telemetry hook for spotting imbalanced rings
        (too few vnodes, pathological ids).
        """
        with self._lock:
            if not self._points:
                return {}
            if len(self._workers) == 1:
                # exact by construction; skips float accumulation error
                return {next(iter(self._workers)): 1.0}
            shares = dict.fromkeys(self._workers, 0.0)
            span = float(2 ** 64)
            for index, point in enumerate(self._points):
                previous = self._points[index - 1] if index else (
                    self._points[-1] - 2 ** 64)
                shares[self._owners[index]] += (point - previous) / span
            return shares

    def stats(self) -> dict:
        """Snapshot: membership, vnodes, drain state and arc-share split."""
        shares = self.arc_shares()
        with self._lock:
            points = len(self._points)
        return {
            "workers": self.workers,
            "draining": self.draining,
            "vnodes": self.vnodes,
            "points": points,
            "arc_shares": shares,
            "max_arc_share": max(shares.values()) if shares else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HashRing(workers={len(self._workers)}, "
                f"vnodes={self.vnodes})")
