"""Self-healing primitives for the serving tier.

PR 6's tier *contains* faults (a dead worker takes only its own arc, its
in-flight requests fail retriably) but never *repairs* them: the fleet only
shrinks, and "retriable" is an adjective the client has to act on by hand.
This module closes that loop with the same shape of argument the paper makes
for iterative refinement — a cheap outer loop that repairs imperfect inner
results:

* :class:`RetryPolicy` — client-side exponential backoff with decorrelated
  jitter (the AWS formula: ``sleep = min(cap, uniform(base, prev * 3))``),
  honouring the server-provided ``retry_after`` on admission rejections and
  bounding retries on :class:`~repro.exceptions.WorkerUnavailableError`.
  The RNG and the sleep function are injectable, so tests replay schedules
  deterministically and never actually sleep.
* :class:`CircuitBreaker` — per-worker failure isolation.  ``closed`` routes
  normally; ``failure_threshold`` *consecutive* failures trip it ``open``
  (requests shed instantly with a ``retry_after`` instead of queueing onto a
  doomed worker); after ``reset_timeout`` it goes ``half-open`` and admits
  one probe — success closes it, failure re-opens it for another window.
* :class:`ChaosSpec` / :class:`ChaosPolicy` — a deterministic
  fault-injection harness.  A seeded RNG (derived per worker *and* per
  incarnation, so a respawned worker replays a fresh but reproducible
  stream) scripts worker crashes, hangs, slow responses, queue stalls and
  corrupted store payloads.  The policy is injected into
  :func:`~repro.serving.worker.worker_main` via
  :class:`~repro.serving.worker.WorkerConfig` or the ``REPRO_CHAOS``
  environment variable (JSON), and costs **zero** overhead when disabled —
  the worker holds ``None`` and never calls in.
* :class:`Supervisor` — the respawn loop of
  :class:`~repro.serving.frontend.ClusterEngine`.  It watches for worker
  death (reaper signal) and heartbeat staleness (a worker with queued work
  that has gone silent is probed; a probe timeout means *hung*, and a hung
  worker is killed so the death path can heal it), then respawns the
  process under exponential backoff and re-adds it to the hash ring —
  the fleet re-converges to full capacity instead of shrinking forever.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field

from ..exceptions import (
    AdmissionError,
    CircuitOpenError,
    QueueFullError,
    QuotaExceededError,
    WorkerUnavailableError,
)
from ..obs.trace import current_trace

__all__ = ["RetryPolicy", "CircuitBreaker", "ChaosSpec", "ChaosPolicy",
           "Supervisor", "HedgePolicy", "select_replica", "CHAOS_ENV_VAR"]

#: environment variable carrying a JSON :class:`ChaosSpec` for worker
#: processes (the config field takes precedence when both are set).
CHAOS_ENV_VAR = "REPRO_CHAOS"


# ---------------------------------------------------------------------- #
# retry policy
# ---------------------------------------------------------------------- #
class RetryPolicy:
    """Bounded retries with exponential backoff and decorrelated jitter.

    Parameters
    ----------
    max_attempts:
        Total tries (the first attempt counts; ``max_attempts=4`` means up
        to three retries).
    base_delay / max_delay:
        Backoff bounds in seconds.  The decorrelated-jitter recurrence is
        ``delay = min(max_delay, uniform(base_delay, previous * 3))`` with
        ``previous`` starting at ``base_delay``; it spreads a thundering
        herd across the window far better than full jitter on a pure
        exponential.
    retry_admission:
        Retry :class:`~repro.exceptions.QuotaExceededError` /
        :class:`~repro.exceptions.QueueFullError` (honouring their
        ``retry_after`` as a floor on the delay).  Off by default policy
        consumers that want shedding to stay visible can disable it.
    retry_unavailable:
        Retry :class:`~repro.exceptions.WorkerUnavailableError` (including
        :class:`~repro.exceptions.CircuitOpenError`) — the fault the
        supervisor repairs in the background, so a short backoff usually
        lands on a healed fleet.
    rng:
        Seed or ``random.Random`` for the jitter draws; pass a seed for a
        reproducible schedule.
    sleep:
        Injectable sleep callable (tests pass a recorder).

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=4, rng=0, sleep=lambda s: None)
    >>> policy.execute(flaky_callable)           # retried up to 3 times
    """

    def __init__(self, *, max_attempts: int = 4, base_delay: float = 0.05,
                 max_delay: float = 2.0, retry_admission: bool = True,
                 retry_unavailable: bool = True, rng=None,
                 sleep=time.sleep) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay <= 0.0 or max_delay < base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.retry_admission = bool(retry_admission)
        self.retry_unavailable = bool(retry_unavailable)
        self._rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        self.sleep = sleep
        self._lock = threading.Lock()
        self._retries = 0

    # ------------------------------------------------------------------ #
    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether ``error`` on 0-based ``attempt`` warrants another try."""
        if attempt + 1 >= self.max_attempts:
            return False
        if not getattr(error, "retriable", False):
            return False
        if isinstance(error, (QuotaExceededError, QueueFullError)):
            return self.retry_admission
        if isinstance(error, WorkerUnavailableError):
            return self.retry_unavailable
        return isinstance(error, AdmissionError)

    def next_delay(self, previous: float | None = None, *,
                   retry_after: float | None = None) -> float:
        """Decorrelated-jitter successor of ``previous`` (``None`` = first).

        A server-provided ``retry_after`` floors the delay — backing off
        *less* than the server asked for just converts one rejection into
        two.
        """
        with self._lock:
            anchor = self.base_delay if previous is None else previous
            delay = self._rng.uniform(self.base_delay,
                                      max(self.base_delay, anchor * 3.0))
        delay = min(self.max_delay, delay)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    def execute(self, fn, *args, **kwargs):
        """Call ``fn`` under this policy; re-raises the final failure."""
        delay = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except AdmissionError as exc:
                if not self.should_retry(exc, attempt):
                    raise
                delay = self.next_delay(delay, retry_after=exc.retry_after)
                with self._lock:
                    self._retries += 1
                self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def stats(self) -> dict:
        with self._lock:
            return {"max_attempts": self.max_attempts,
                    "base_delay": self.base_delay,
                    "max_delay": self.max_delay,
                    "retries": self._retries}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base_delay={self.base_delay}, max_delay={self.max_delay})")


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #
class CircuitBreaker:
    """Per-worker trip switch: fail fast instead of queueing onto the doomed.

    States: ``closed`` (normal), ``open`` (shedding), ``half-open`` (one
    probe allowed).  ``failure_threshold`` *consecutive* failures trip the
    breaker; after ``reset_timeout`` seconds the next :meth:`allow` admits a
    single probe — a success closes the breaker, a failure re-opens it for
    another full window.  ``clock`` is injectable for deterministic tests.
    Thread-safe.
    """

    def __init__(self, *, failure_threshold: int = 3,
                 reset_timeout: float = 1.0, clock=time.monotonic,
                 listener=None) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0.0:
            raise ValueError("reset_timeout must be > 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        #: optional ``listener(transition, **fields)`` called (outside the
        #: lock) on open / half_open / reopen / close — the hook the serving
        #: tier uses to put breaker state changes on the event log.
        self.listener = listener
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self._trips = 0

    def _notify(self, transition: str, **fields) -> None:
        if self.listener is None:
            return
        try:
            self.listener(transition, **fields)
        except Exception:  # noqa: BLE001 - telemetry must not break routing
            pass

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked(float(self._clock()))

    def _state_locked(self, now: float) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing or now - self._opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a request pass right now?  (Claims the half-open probe slot.)"""
        now = float(self._clock())
        probing = False
        with self._lock:
            state = self._state_locked(now)
            if state == "closed":
                return True
            if state == "half-open" and not self._probing:
                self._probing = True
                probing = True
        if probing:
            self._notify("half_open")
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the breaker will next admit a probe (0 = now)."""
        now = float(self._clock())
        with self._lock:
            if self._opened_at is None:
                return 0.0
            return max(0.0, self.reset_timeout - (now - self._opened_at))

    def record_success(self) -> None:
        """A request attributed to this worker completed normally."""
        with self._lock:
            closed = self._opened_at is not None
            self._consecutive_failures = 0
            self._opened_at = None
            self._probing = False
        if closed:
            self._notify("close")

    def record_failure(self) -> None:
        """An infrastructure failure attributed to this worker."""
        now = float(self._clock())
        transition = None
        with self._lock:
            self._consecutive_failures += 1
            if self._probing:
                # the half-open probe failed: re-open for a fresh window.
                self._probing = False
                self._opened_at = now
                transition = "reopen"
            elif (self._opened_at is None
                  and self._consecutive_failures >= self.failure_threshold):
                self._opened_at = now
                self._trips += 1
                transition = "open"
        if transition is not None:
            self._notify(transition,
                         consecutive_failures=self._consecutive_failures,
                         trips=self._trips)

    def stats(self) -> dict:
        with self._lock:
            return {"state": self._state_locked(float(self._clock())),
                    "consecutive_failures": self._consecutive_failures,
                    "trips": self._trips,
                    "failure_threshold": self.failure_threshold,
                    "reset_timeout": self.reset_timeout}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r}, trips={self._trips})"


# ---------------------------------------------------------------------- #
# replica selection and hedging policy
# ---------------------------------------------------------------------- #
def select_replica(candidates, *, breakers=None, draining=None,
                   retired=None, exclude=()):
    """First candidate a request may be dispatched to, or ``None``.

    ``candidates`` is the ring-ordered replica list from
    :meth:`~repro.serving.router.HashRing.route_replicas` (primary first),
    so the return value is "the primary unless something disqualifies it,
    else the nearest live replica" — the instant-failover selection rule.

    A candidate is skipped when it is in ``exclude`` (e.g. the worker a
    hedge is doubling), in ``draining`` or ``retired``, or when its
    :class:`CircuitBreaker` in ``breakers`` refuses :meth:`~CircuitBreaker.allow`.
    ``allow()`` is only consulted after cheaper checks and only until the
    first eligible candidate, so at most one half-open probe slot is
    claimed per selection.
    """
    excluded = set(exclude)
    for worker_id in candidates:
        if worker_id in excluded:
            continue
        if draining is not None and worker_id in draining:
            continue
        if retired is not None and worker_id in retired:
            continue
        if breakers is not None:
            breaker = breakers.get(worker_id)
            if breaker is not None and not breaker.allow():
                continue
        return worker_id
    return None


class HedgePolicy:
    """When to speculatively double a request onto a replica.

    The hedge deadline is either an explicit ``hedge_after`` (seconds) or
    derived from live latency telemetry: ``p99_multiplier`` times the
    cluster p99 from the metrics registry's solve-latency histogram,
    floored at ``min_hedge`` so a microsecond-fast cache-hit workload does
    not hedge every request.  Derivation needs at least ``min_samples``
    recorded latencies — before the histogram warms up, :meth:`deadline`
    returns ``None`` and the tier does not hedge (so cold clusters, tests
    and smoke runs see pure primary dispatch).
    """

    def __init__(self, *, hedge_after: float | None = None,
                 p99_multiplier: float = 3.0, min_hedge: float = 0.02,
                 min_samples: int = 64) -> None:
        if hedge_after is not None and hedge_after <= 0.0:
            raise ValueError("hedge_after must be > 0 when set")
        if p99_multiplier <= 0.0:
            raise ValueError("p99_multiplier must be > 0")
        self.hedge_after = None if hedge_after is None else float(hedge_after)
        self.p99_multiplier = float(p99_multiplier)
        self.min_hedge = float(min_hedge)
        self.min_samples = int(min_samples)

    def deadline(self, summary: dict | None = None) -> float | None:
        """Seconds after dispatch at which to hedge, or ``None`` = never.

        ``summary`` is a latency-histogram summary dict with ``count`` and
        ``p99`` keys (:meth:`repro.utils.timing.LatencyHistogram.summary`);
        only consulted when no explicit ``hedge_after`` was configured.
        """
        if self.hedge_after is not None:
            return self.hedge_after
        if not summary or summary.get("count", 0) < self.min_samples:
            return None
        p99 = summary.get("p99")
        if not p99 or p99 <= 0.0:
            return None
        return max(self.min_hedge, float(p99) * self.p99_multiplier)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HedgePolicy(hedge_after={self.hedge_after}, "
                f"p99_multiplier={self.p99_multiplier})")


# ---------------------------------------------------------------------- #
# deterministic chaos injection
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChaosSpec:
    """Picklable, JSON-able script of faults for :class:`ChaosPolicy`.

    All probabilities are per-request (``stall_rate`` per queue drain,
    ``corrupt_store_rate`` per store write); ``crash_points`` is an explicit
    deterministic schedule of ``(incarnation, request_index)`` pairs — e.g.
    ``((0, 2),)`` crashes the worker's first incarnation while it handles
    its third request, and leaves every respawned incarnation healthy.
    ``workers`` restricts the spec to specific worker ids (empty = all).
    The default spec injects nothing and reports ``enabled == False``.
    """

    seed: int = 0
    crash_points: tuple = ()
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 3600.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.05
    stall_rate: float = 0.0
    stall_seconds: float = 0.05
    corrupt_store_rate: float = 0.0
    workers: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "crash_points",
                           tuple((int(inc), int(idx))
                                 for inc, idx in self.crash_points))
        object.__setattr__(self, "workers",
                           tuple(str(w) for w in self.workers))

    @property
    def enabled(self) -> bool:
        return bool(self.crash_points) or any(
            rate > 0.0 for rate in (self.crash_rate, self.hang_rate,
                                    self.slow_rate, self.stall_rate,
                                    self.corrupt_store_rate))

    @classmethod
    def from_dict(cls, spec: dict) -> "ChaosSpec":
        known = {name for name in cls.__dataclass_fields__}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown ChaosSpec field(s): {sorted(unknown)}")
        return cls(**spec)

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "crash_points": [list(point) for point in self.crash_points],
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "hang_seconds": self.hang_seconds,
            "slow_rate": self.slow_rate,
            "slow_seconds": self.slow_seconds,
            "stall_rate": self.stall_rate,
            "stall_seconds": self.stall_seconds,
            "corrupt_store_rate": self.corrupt_store_rate,
            "workers": list(self.workers),
        })


def _derive_rng(spec_seed: int, worker_id: str, incarnation: int,
                stream: str) -> random.Random:
    """Independent deterministic stream per (seed, worker, incarnation, use)."""
    token = f"{spec_seed}:{worker_id}:{incarnation}:{stream}"
    digest = hashlib.sha256(token.encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class ChaosPolicy:
    """Deterministic fault decisions for one worker incarnation.

    Each fault channel (request actions, drain stalls, store corruption)
    draws from its **own** seeded stream, so e.g. enabling store corruption
    never shifts the crash schedule.  Given the same spec, worker id,
    incarnation and request order, every decision replays identically —
    which is what makes recovery paths *testable*.

    The serving tier never pays for a disabled policy:
    :meth:`resolve` returns ``None`` (not an inert object) when the spec
    injects nothing, and callers hold ``if chaos is not None`` guards.
    """

    def __init__(self, spec: ChaosSpec | dict, *, worker_id: str = "",
                 incarnation: int = 0) -> None:
        self.spec = (spec if isinstance(spec, ChaosSpec)
                     else ChaosSpec.from_dict(spec))
        self.worker_id = str(worker_id)
        self.incarnation = int(incarnation)
        self._applies = (not self.spec.workers
                         or self.worker_id in self.spec.workers)
        self._crash_at = {idx for inc, idx in self.spec.crash_points
                          if inc == self.incarnation}
        #: optional :class:`repro.obs.events.EventLog`; every injected fault
        #: is recorded on it (and fsynced before a crash) so chaos drills
        #: leave an auditable timeline.  Set by the worker after resolve().
        self.events = None
        seed = self.spec.seed
        self._request_rng = _derive_rng(seed, self.worker_id,
                                        self.incarnation, "request")
        self._drain_rng = _derive_rng(seed, self.worker_id,
                                      self.incarnation, "drain")
        self._store_rng = _derive_rng(seed, self.worker_id,
                                      self.incarnation, "store")

    @property
    def enabled(self) -> bool:
        return self._applies and self.spec.enabled

    @classmethod
    def resolve(cls, spec, *, worker_id: str = "", incarnation: int = 0,
                environ=os.environ) -> "ChaosPolicy | None":
        """Active policy from a config spec or ``REPRO_CHAOS``; else ``None``."""
        if spec is None:
            raw = environ.get(CHAOS_ENV_VAR)
            if not raw:
                return None
            spec = ChaosSpec.from_dict(json.loads(raw))
        policy = cls(spec, worker_id=worker_id, incarnation=incarnation)
        return policy if policy.enabled else None

    # ------------------------------------------------------------------ #
    def on_request(self, index: int) -> str | None:
        """Fault for the ``index``-th request this incarnation handles.

        Returns ``"crash"`` / ``"hang"`` / ``"slow"`` / ``None``.  The
        random draw happens on **every** request (even when a crash point
        preempts it), keeping later decisions independent of the schedule.
        """
        spec = self.spec
        draw = self._request_rng.random()
        if index in self._crash_at or draw < spec.crash_rate:
            self._record_fault("crash", request_index=index,
                               scheduled=index in self._crash_at)
            return "crash"
        if draw < spec.crash_rate + spec.hang_rate:
            self._record_fault("hang", request_index=index,
                               seconds=spec.hang_seconds)
            return "hang"
        if draw < spec.crash_rate + spec.hang_rate + spec.slow_rate:
            self._record_fault("slow", request_index=index,
                               seconds=spec.slow_seconds)
            return "slow"
        return None

    def on_drain(self) -> float:
        """Queue-stall duration to inject before this drain pass (0 = none)."""
        if self.spec.stall_rate <= 0.0:
            return 0.0
        if self._drain_rng.random() < self.spec.stall_rate:
            self._record_fault("stall", seconds=self.spec.stall_seconds)
            return self.spec.stall_seconds
        return 0.0

    def corrupt_payload(self, data: bytes) -> bytes | None:
        """Corrupted replacement for a store payload, or ``None`` = intact.

        Corruption truncates the archive and appends garbage — exactly the
        torn-write / bad-sector shape the store's quarantine path handles.
        """
        if self.spec.corrupt_store_rate <= 0.0:
            return None
        if self._store_rng.random() >= self.spec.corrupt_store_rate:
            return None
        self._record_fault("corrupt_store", size=len(data))
        return data[: max(1, len(data) // 2)] + b"\x00chaos"

    def _record_fault(self, fault: str, **fields) -> None:
        """Stamp an injected fault on the event log (no-op without a sink).

        Crash faults are fsynced before returning: the very next thing the
        worker does is ``os._exit``, which would otherwise lose the line.
        """
        if self.events is None:
            return
        trace = current_trace()
        self.events.emit("chaos_fault", fault=fault,
                         trace_id=None if trace is None else trace.trace_id,
                         worker=self.worker_id,
                         incarnation=self.incarnation, **fields)
        if fault == "crash":
            self.events.sync()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ChaosPolicy(worker={self.worker_id!r}, "
                f"incarnation={self.incarnation}, enabled={self.enabled})")


# ---------------------------------------------------------------------- #
# supervisor
# ---------------------------------------------------------------------- #
class Supervisor:
    """Respawn loop: watch the fleet, heal deaths, unstick hangs.

    Owned by :class:`~repro.serving.frontend.ClusterEngine` (which passes
    itself in); the engine provides the mechanics (``_reap_dead_workers``,
    ``_respawn_worker``, ``_probe_worker``) and the supervisor provides the
    policy:

    * **death** — a worker process that is no longer alive is reaped (ring
      shrink + orphan redispatch) and then respawned under exponential
      backoff (``backoff_base`` doubling up to ``backoff_cap`` per
      consecutive short-lived incarnation; an incarnation that survives
      ``stable_after`` seconds resets the schedule), so a crash-looping
      worker cannot turn the supervisor into a fork bomb;
    * **hang** — a worker with queued work whose last response (its
      heartbeat) is older than ``hang_timeout`` is sent a stats probe with
      a short deadline.  Silence means the event loop is wedged — the
      process is terminated, which converts the hang into a death the next
      pass heals.  ``hang_timeout=None`` disables hang detection.
    * **planned recycling** — distinct from crash healing: when
      ``max_requests_per_incarnation`` is set, a worker whose current
      incarnation has dispatched that many requests is *drained* (ring
      hands its arcs to replicas, in-flight completes) and then respawned
      via :meth:`~repro.serving.frontend.ClusterEngine.recycle_worker`.
      One worker recycles at a time, and a worker mid-recycle is ignored
      by the death path — a planned exit must not be double-healed or
      counted as a crash.
    """

    def __init__(self, engine, *, interval: float = 0.2,
                 hang_timeout: float | None = 10.0,
                 probe_timeout: float = 2.0, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0, stable_after: float = 5.0,
                 max_restarts: int | None = None,
                 max_requests_per_incarnation: int | None = None) -> None:
        if interval <= 0.0:
            raise ValueError("interval must be > 0")
        if probe_timeout <= 0.0:
            raise ValueError("probe_timeout must be > 0")
        if (max_requests_per_incarnation is not None
                and max_requests_per_incarnation < 1):
            raise ValueError("max_requests_per_incarnation must be >= 1")
        self._engine = engine
        self.interval = float(interval)
        self.hang_timeout = None if hang_timeout is None else float(hang_timeout)
        self.probe_timeout = float(probe_timeout)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stable_after = float(stable_after)
        self.max_restarts = max_restarts
        self.max_requests_per_incarnation = max_requests_per_incarnation
        self._lock = threading.Lock()
        #: worker_id -> (consecutive short-lived incarnations, next allowed at)
        self._backoff: dict[str, tuple[int, float]] = {}
        self._respawns = 0
        self._hang_kills = 0
        self._recycles = 0
        self._recycling: threading.Thread | None = None
        self._exhausted: set[str] = set()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serving-supervisor",
                                        daemon=True)

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread.is_alive():
            self._thread.join(timeout)

    def _run(self) -> None:
        closing = self._engine._closing
        while not closing.wait(self.interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - supervision must outlive bugs
                pass

    # ------------------------------------------------------------------ #
    def tick(self) -> None:
        """One supervision pass (public so tests can drive it directly)."""
        engine = self._engine
        now = time.monotonic()
        planned = getattr(engine, "_planned", frozenset())
        for worker_id in list(engine._workers):
            if engine._closing.is_set():
                return
            info = engine._workers[worker_id]
            process = info["process"]
            if worker_id in planned:
                continue  # recycle_worker owns this worker's lifecycle
            if not process.is_alive():
                engine._reap_dead_workers()
                self._maybe_respawn(worker_id, info, now)
            elif (self.hang_timeout is not None
                  and engine._depth.get(worker_id, 0) > 0
                  and now - engine._last_heard.get(worker_id, now)
                  > self.hang_timeout):
                if not engine._probe_worker(worker_id,
                                            timeout=self.probe_timeout):
                    with self._lock:
                        self._hang_kills += 1
                    emit = getattr(engine, "_event", None)
                    if emit is not None:
                        emit("worker_hang_kill", worker=worker_id,
                             silent_s=now - engine._last_heard.get(worker_id,
                                                                   now))
                    process.terminate()  # next pass heals it as a death
        if self.max_requests_per_incarnation is not None:
            self._maybe_recycle()

    def _maybe_recycle(self) -> None:
        """Start a planned recycle for one over-quota worker, if any.

        Serialised: at most one recycle thread at a time, and none while
        any worker is still mid-recycle — a rolling restart effect rather
        than a simultaneous fleet bounce.
        """
        engine = self._engine
        with self._lock:
            if self._recycling is not None and self._recycling.is_alive():
                return
            self._recycling = None
        if getattr(engine, "_planned", None):
            return
        candidate = None
        for worker_id in sorted(engine._workers):
            served = engine._incarnation_dispatched.get(worker_id, 0)
            if served >= self.max_requests_per_incarnation:
                candidate = worker_id
                break
        if candidate is None:
            return
        thread = threading.Thread(target=self._recycle, args=(candidate,),
                                  name=f"repro-recycle-{candidate}",
                                  daemon=True)
        with self._lock:
            self._recycling = thread
            self._recycles += 1
        thread.start()

    def _recycle(self, worker_id: str) -> None:
        try:
            self._engine.recycle_worker(worker_id)
        except Exception:  # noqa: BLE001 - supervision must outlive bugs
            pass

    def _maybe_respawn(self, worker_id: str, info: dict, now: float) -> None:
        restarts = self._engine._restarts.get(worker_id, 0)
        if self.max_restarts is not None and restarts >= self.max_restarts:
            with self._lock:
                self._exhausted.add(worker_id)
            return
        with self._lock:
            consecutive, not_before = self._backoff.get(worker_id, (0, 0.0))
            if now < not_before:
                return
            lifetime = now - info.get("started_at", now)
            consecutive = 0 if lifetime >= self.stable_after else consecutive + 1
            delay = min(self.backoff_cap,
                        self.backoff_base * (2.0 ** max(0, consecutive - 1)))
            self._backoff[worker_id] = (consecutive, now + delay)
        self._engine._respawn_worker(worker_id)
        with self._lock:
            self._respawns += 1

    def stats(self) -> dict:
        with self._lock:
            return {"respawns": self._respawns,
                    "hang_kills": self._hang_kills,
                    "recycles": self._recycles,
                    "interval": self.interval,
                    "hang_timeout": self.hang_timeout,
                    "probe_timeout": self.probe_timeout,
                    "max_requests_per_incarnation":
                        self.max_requests_per_incarnation,
                    "exhausted": sorted(self._exhausted)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Supervisor(respawns={self._respawns}, "
                f"hang_kills={self._hang_kills})")
